"""Regression tests for the real concurrency defects found (and fixed)
by the PR 8 analyzer/detector pass."""

import threading

import pytest

from repro.algebra import DataType
from repro.catalog import Catalog, ColumnDef, TableDef
from repro.catalog.statistics import CorrectionStore
from repro.concurrency import race_detection
from repro.errors import TransactionConflict
from repro.feedback import FeedbackLoop
from repro.storage import Storage


def _table_def(name):
    return TableDef(name, [ColumnDef("id", DataType.INTEGER,
                                     nullable=False)],
                    primary_key=("id",))


def test_feedback_as_dict_respects_lock_hierarchy():
    """`FeedbackLoop.as_dict()` used to read `len(self.corrections)`
    (stats.corrections, level 55) while holding feedback.stats (92) —
    a descending acquisition the runtime detector caught during the
    soak suite.  With strict detection on, as_dict must be clean."""
    loop = FeedbackLoop(CorrectionStore(), row_count_of=lambda n: 0)
    with race_detection() as det:
        snapshot = loop.as_dict()
    assert det.violations == []
    assert snapshot["corrections_stored"] == 0


def test_catalog_tables_survives_concurrent_ddl():
    """`Catalog.tables()` used to hand out a live dict iterator that
    raised `RuntimeError: dictionary changed size during iteration`
    when DDL landed mid-iteration; it must copy under the lock."""
    catalog = Catalog()
    for i in range(5):
        catalog.create_table(_table_def(f"t{i}"))
    it = catalog.tables()
    next(it)
    catalog.create_table(_table_def("added_mid_iteration"))
    names = {t.name for t in it}  # live iterator would raise here
    assert "t4" in names
    assert "added_mid_iteration" not in names  # snapshot semantics


def test_catalog_tables_concurrent_ddl_hammer():
    catalog = Catalog()
    for i in range(20):
        catalog.create_table(_table_def(f"seed{i}"))
    errors = []
    stop = threading.Event()

    def ddl():
        i = 0
        while not stop.is_set():
            catalog.create_table(_table_def(f"new{i}"))
            i += 1

    def scan():
        try:
            for _ in range(200):
                sum(1 for _ in catalog.tables())
                sum(1 for _ in catalog.indexes())
                sum(1 for _ in catalog.views())
        except RuntimeError as exc:  # pragma: no cover - the regression
            errors.append(exc)

    writer = threading.Thread(target=ddl)
    readers = [threading.Thread(target=scan) for _ in range(4)]
    writer.start()
    for reader in readers:
        reader.start()
    for reader in readers:
        reader.join()
    stop.set()
    writer.join()
    assert errors == []


def test_apply_insert_timeout_becomes_transaction_conflict(monkeypatch):
    """Autocommit inserts used to block forever on the writer lock; a
    contended acquire must now surface as TransactionConflict within
    the bounded timeout."""
    import repro.storage.table as table_mod
    monkeypatch.setattr(table_mod, "AUTOCOMMIT_LOCK_TIMEOUT", 0.05)
    storage = Storage()
    storage.create(_table_def("t"))
    lock = storage.writer_lock("t")
    assert lock.acquire(timeout=1)  # simulate a stuck transaction
    try:
        with pytest.raises(TransactionConflict) as exc:
            storage.apply_insert("t", [(1,)])
        assert "writer lock" in str(exc.value)
    finally:
        lock.release()
    # and once the lock is free, the insert goes through
    assert storage.apply_insert("t", [(1,)]) == 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
