"""Acceptance soak: the concurrency bar the server subsystem must clear.

Eight concurrent sessions each run 200 mixed queries (all execution
engines, reads over shared tables plus writes to session-private tables)
with **zero errors**, and every per-query result is bit-identical to a
serial replay of the same per-session statement sequence.  At steady
state the plan cache must serve ≥90% of lookups, and with the queue
bound turned down the server must shed with ``ServerOverloaded`` rather
than deadlock.

Set ``REPRO_STRESS=1`` to multiply the rounds for CI stress sweeps.
"""

import os
import threading

import pytest

from repro import Database, DataType
from repro.errors import ServerOverloaded
from repro.server import QueryServer, ServerClient

SESSIONS = 8
QUERIES_PER_SESSION = 200
STRESS = int(os.environ.get("REPRO_STRESS", "0") or "0")
ROUNDS_SCALE = 3 if STRESS else 1

#: Read-only statements over the shared tables.  ``{p}`` is the
#: session-private table, so writes never collide across sessions and a
#: serial replay of one session's sequence is deterministic.
STATEMENTS = [
    ("shared", "select a from t where b = 1 order by a"),
    ("shared", "select b, count(*) from t group by b order by b"),
    ("shared", ("select a from t where exists "
                "(select * from u where ua = b) order by a")),
    ("shared", ("select a, (select count(*) from u where ua = b) "
                "from t where a < 40 order by a")),
    ("shared", "select max(a), min(b) from t"),
    ("private", "select count(*) from {p}"),
    ("insert", None),
    ("private", "select sum(k) from {p}"),
]
ENGINES = ("tuple", "vectorized")
MODES = ("full", "full", "full", "naive")  # mostly cached cost-based plans


def build_db() -> Database:
    db = Database(plan_cache_shards=4)
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.INTEGER, False)],
                    primary_key=("a",))
    db.create_table("u", [("uk", DataType.INTEGER, False),
                          ("ua", DataType.INTEGER, False)],
                    primary_key=("uk",))
    db.insert("t", [(i, i % 7) for i in range(80)])
    db.insert("u", [(i, i % 11) for i in range(60)])
    for n in range(SESSIONS):
        db.create_table(f"p{n}", [("k", DataType.INTEGER, False)],
                        primary_key=("k",))
    return db


def session_plan(seed: int) -> list:
    """The deterministic statement sequence for session ``seed``:
    (kind, sql, engine, mode) tuples, with inserts materialized."""
    plan = []
    insert_key = iter(range(100_000))
    for step in range(QUERIES_PER_SESSION * ROUNDS_SCALE):
        kind, sql = STATEMENTS[(seed + step) % len(STATEMENTS)]
        engine = ENGINES[(seed * 7 + step) % len(ENGINES)]
        mode = MODES[(seed * 3 + step) % len(MODES)]
        if kind == "insert":
            rows = [(next(insert_key),) for _ in range(2)]
            plan.append(("insert", rows, None, None))
        else:
            plan.append(("query", sql.format(p=f"p{seed}"), engine, mode))
    return plan


def run_plan(session, seed: int, sink) -> None:
    for entry in session_plan(seed):
        if entry[0] == "insert":
            session.insert(f"p{seed}", entry[1])
        else:
            _, sql, engine, mode = entry
            sink.append(session.execute(sql, engine=engine,
                                        mode=mode).rows)


def test_soak_eight_sessions_bit_identical_with_hot_cache():
    # Serial replay first: each session's sequence against a private
    # database gives the per-session expected results.
    expected: dict[int, list] = {}
    for seed in range(SESSIONS):
        db = build_db()
        with db.session() as session:
            sink: list = []
            run_plan(session, seed, sink)
            expected[seed] = sink

    # Now all eight concurrently against one shared database.
    db = build_db()
    warm = db.session()
    for seed in range(SESSIONS):  # warm the plan cache, then measure
        for entry in session_plan(seed)[:len(STATEMENTS)]:
            if entry[0] == "query":
                warm.execute(entry[1], engine=entry[2], mode=entry[3])
    warm.close()
    db.plan_cache.stats.reset()

    errors: list[str] = []
    barrier = threading.Barrier(SESSIONS)

    def drive(seed: int) -> None:
        try:
            barrier.wait()
            with db.session() as session:
                sink: list = []
                run_plan(session, seed, sink)
            if sink != expected[seed]:
                diverged = sum(a != b for a, b in zip(sink, expected[seed]))
                errors.append(
                    f"session {seed}: {diverged} results diverged "
                    f"from serial replay")
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(f"session {seed}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=drive, args=(seed,))
               for seed in range(SESSIONS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    assert not any(t.is_alive() for t in threads), "soak deadlocked"
    assert not errors, errors

    stats = db.plan_cache.stats
    assert stats.hits + stats.misses > 0
    assert stats.hit_rate >= 0.90, stats.as_dict()
    assert db.open_session_count == 0


def test_overload_sheds_instead_of_deadlocking():
    """With a tiny queue bound and one worker, a thundering herd gets a
    mix of served and shed requests — every client hears back, none
    hangs."""
    db = build_db()
    with QueryServer(db, max_workers=1, max_queue_depth=2) as server:
        host, port = server.address
        outcomes: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(10)

        def client_thread(n: int) -> None:
            try:
                barrier.wait()
                with ServerClient(host, port, timeout=120) as client:
                    for _ in range(5):
                        try:
                            client.query(
                                "select b, count(*) from t "
                                "group by b order by b")
                            with lock:
                                outcomes.append("ok")
                        except ServerOverloaded:
                            with lock:
                                outcomes.append("shed")
            except BaseException as exc:  # pragma: no cover
                with lock:
                    outcomes.append(f"unexpected: {exc!r}")

        threads = [threading.Thread(target=client_thread, args=(n,))
                   for n in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not any(t.is_alive() for t in threads), "clients hung"
        assert len(outcomes) == 50
        bad = [o for o in outcomes if o.startswith("unexpected")]
        assert not bad, bad
        assert outcomes.count("ok") >= 1  # the server kept serving
        metrics = server.metrics()
        assert metrics["shed"] == outcomes.count("shed")
