"""Unit tests for the normalization-time simplification pass."""

import pytest

from repro.algebra import (AggregateCall, AggregateFunction, Column,
                           ColumnRef, Comparison, DataType, Get, GroupBy,
                           Literal, Max1row, Project, Select, Sort,
                           collect_nodes, equals)
from repro.core.normalize import simplify

from .helpers import customer_scan, orders_scan


class TestMax1rowElision:
    def test_elided_for_key_lookup(self):
        cust, (ck, _, _) = customer_scan()
        tree = Max1row(Select(cust, equals(ck, Literal(5))))
        assert not collect_nodes(simplify(tree),
                                 lambda n: isinstance(n, Max1row))

    def test_kept_for_non_key_lookup(self):
        cust, (_, cn, _) = customer_scan()
        tree = Max1row(Select(cust, equals(cn, Literal("x"))))
        assert collect_nodes(simplify(tree),
                             lambda n: isinstance(n, Max1row))


class TestSelectSimplification:
    def test_true_select_removed(self):
        cust, _ = customer_scan()
        assert simplify(Select(cust, Literal(True))) is cust

    def test_false_select_kept(self):
        cust, _ = customer_scan()
        simplified = simplify(Select(cust, Literal(False)))
        assert isinstance(simplified, Select)

    def test_adjacent_selects_merge(self):
        cust, (ck, cn, _) = customer_scan()
        tree = Select(Select(cust, equals(ck, Literal(1))),
                      equals(cn, Literal("x")))
        simplified = simplify(tree)
        selects = collect_nodes(simplified, lambda n: isinstance(n, Select))
        assert len(selects) == 1

    def test_true_conjunct_dropped(self):
        from repro.algebra import And

        cust, (ck, _, _) = customer_scan()
        tree = Select(cust, And([Literal(True), equals(ck, Literal(1))]))
        simplified = simplify(tree)
        assert "true" not in simplified.predicate.sql().lower()


class TestProjectSimplification:
    def test_identity_project_removed(self):
        cust, _ = customer_scan()
        tree = Project.passthrough(cust, cust.output_columns())
        assert simplify(tree) is cust

    def test_reordering_project_kept(self):
        cust, (ck, cn, cnk) = customer_scan()
        tree = Project.passthrough(cust, [cn, ck, cnk])
        assert isinstance(simplify(tree), Project)

    def test_stacked_projects_collapse(self):
        from repro.algebra import Arithmetic

        cust, (ck, cn, cnk) = customer_scan()
        doubled = Column("doubled", DataType.INTEGER)
        lower = Project.extend(cust, [(doubled, Arithmetic(
            "*", ColumnRef(ck), Literal(2)))])
        upper = Project.passthrough(lower, [doubled, cn])
        simplified = simplify(upper)
        projects = collect_nodes(simplified,
                                 lambda n: isinstance(n, Project))
        assert len(projects) == 1
        # the surviving project computes `doubled` inline
        (proj,) = projects
        assert proj.child is cust


class TestDistinctOverKey:
    def test_groupby_no_aggs_over_unique_input_removed(self):
        cust, (ck, cn, _) = customer_scan()
        distinct = GroupBy(cust, [ck, cn], [])  # ck is a key
        simplified = simplify(distinct)
        assert not collect_nodes(simplified,
                                 lambda n: isinstance(n, GroupBy))

    def test_groupby_no_aggs_kept_when_needed(self):
        cust, (_, cn, _) = customer_scan()
        distinct = GroupBy(cust, [cn], [])  # cn is not a key
        assert collect_nodes(simplify(distinct),
                             lambda n: isinstance(n, GroupBy))

    def test_real_aggregation_never_removed(self):
        orders, (_, ock, price) = orders_scan()
        total = Column("t", DataType.FLOAT)
        gb = GroupBy(orders, [ock], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        assert collect_nodes(simplify(gb),
                             lambda n: isinstance(n, GroupBy))


class TestSortSimplification:
    def test_sort_over_sort_outer_wins(self):
        cust, (ck, cn, _) = customer_scan()
        inner = Sort(cust, [(ColumnRef(cn), True)])
        outer = Sort(inner, [(ColumnRef(ck), False)])
        simplified = simplify(outer)
        sorts = collect_nodes(simplified, lambda n: isinstance(n, Sort))
        assert len(sorts) == 1
        assert sorts[0].keys[0][1] is False  # the outer (desc) key
