"""Unit tests for the vectorized batch engine's building blocks.

The differential oracle (test_differential.py) establishes end-to-end
agreement; this module pins the engine's own contracts — batch helpers,
batch-boundary behavior, error paths, and the engine-specific execution
decisions that the oracle can only observe indirectly.
"""

import re

import pytest

from repro import Database, DataType, ExecutionError, ResourceExhausted
from repro.errors import SubqueryReturnedMultipleRows
from repro.executor import Batch, VectorizedExecutor
from repro.executor.vectorized import (batch_rows, columns_to_batches,
                                       rows_to_batches, take_batch)


def make_db(batch_size=4) -> Database:
    db = Database(batch_size=batch_size)
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.INTEGER, True)],
                    primary_key=("a",))
    db.insert("t", [(i, i % 3 if i % 4 else None) for i in range(1, 11)])
    return db


class TestBatchHelpers:
    def test_take_batch_full_selection_is_identity(self):
        batch = Batch([[1, 2, 3], [4, 5, 6]], 3)
        assert take_batch(batch, [0, 1, 2]) is batch

    def test_take_batch_selects_rows(self):
        batch = Batch([[1, 2, 3], [4, 5, 6]], 3)
        taken = take_batch(batch, [0, 2])
        assert taken.columns == [[1, 3], [4, 6]]
        assert taken.nrows == 2

    def test_batch_rows_zero_columns_keeps_cardinality(self):
        assert batch_rows(Batch([], 3)) == [(), (), ()]

    def test_rows_to_batches_chunks(self):
        batches = list(rows_to_batches(iter([(1,), (2,), (3,)]), 1, 2))
        assert [b.nrows for b in batches] == [2, 1]
        assert batches[0].columns == [[1, 2]]

    def test_rows_to_batches_zero_columns(self):
        batches = list(rows_to_batches(iter([(), (), ()]), 0, 2))
        assert [(b.columns, b.nrows) for b in batches] == [([], 2),
                                                           ([], 1)]

    def test_columns_to_batches_single_batch_shares_columns(self):
        cols = [[1, 2], [3, 4]]
        (only,) = columns_to_batches(cols, 2, 10)
        assert only.columns is cols

    def test_columns_to_batches_slices(self):
        batches = list(columns_to_batches([[1, 2, 3, 4, 5]], 5, 2))
        assert [b.columns[0] for b in batches] == [[1, 2], [3, 4], [5]]

    def test_columns_to_batches_empty(self):
        assert list(columns_to_batches([[]], 0, 4)) == []


class TestEngineContracts:
    def test_batch_size_must_be_positive(self):
        db = make_db()
        with pytest.raises(ExecutionError):
            VectorizedExecutor(db.storage, batch_size=0)

    def test_database_rejects_unknown_default_engine(self):
        with pytest.raises(ValueError):
            Database(default_engine="columnar")

    def test_execute_rejects_unknown_engine(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.execute("select a from t", engine="columnar")

    def test_default_engine_is_used(self):
        db = Database(default_engine="vectorized", batch_size=3)
        db.create_table("t", [("a", DataType.INTEGER, False)],
                        primary_key=("a",))
        db.insert("t", [(i,) for i in range(5)])
        assert sorted(db.execute("select a from t").rows) == \
            [(i,) for i in range(5)]

    def test_results_cross_batch_boundaries(self):
        # 10 rows, batch_size 4: scan yields 4+4+2.
        db = make_db(batch_size=4)
        rows = db.execute("select a from t where b is not null",
                          engine="vectorized").rows
        reference = db.execute("select a from t where b is not null",
                               engine="tuple").rows
        assert rows == reference

    def test_batch_size_one_degenerates_to_row_at_a_time(self):
        db = make_db(batch_size=1)
        sql = "select b, count(*) from t group by b"
        assert db.execute(sql, engine="vectorized").rows == \
            db.execute(sql, engine="tuple").rows

    def test_max1row_violation_raises(self):
        db = make_db()
        sql = "select (select b from t) from t"
        with pytest.raises(SubqueryReturnedMultipleRows):
            db.execute(sql, engine="vectorized")

    def test_governor_row_budget_enforced_per_batch(self):
        db = make_db(batch_size=2)
        with pytest.raises(ResourceExhausted):
            db.execute("select a from t", engine="vectorized",
                       row_budget=3)

    def test_parameters_bind_in_vector_expressions(self):
        db = make_db()
        stmt = db.prepare("select a from t where a > ?",
                          engine="vectorized")
        assert len(stmt.execute([8]).rows) == 2
        assert len(stmt.execute([0]).rows) == 10

    def test_prepared_statement_reports_engine(self):
        db = make_db()
        stmt = db.prepare("select a from t", engine="vectorized")
        assert "vectorized" in repr(stmt)

    def test_naive_mode_ignores_engine(self):
        db = make_db()
        rows = db.execute("select a from t", mode="naive",
                          engine="vectorized").rows
        assert sorted(rows) == [(i,) for i in range(1, 11)]


class TestOperatorPaths:
    """Shapes chosen to land on specific _prepare_* implementations."""

    def _db(self):
        db = Database(batch_size=3)
        db.create_table("l", [("id", DataType.INTEGER, False),
                              ("k", DataType.INTEGER, True),
                              ("v", DataType.INTEGER, True)],
                        primary_key=("id",))
        db.create_table("r", [("id", DataType.INTEGER, False),
                              ("k", DataType.INTEGER, True),
                              ("w", DataType.INTEGER, True)],
                        primary_key=("id",))
        db.insert("l", [(1, 1, 10), (2, 1, 20), (3, 2, 30), (4, None, 40),
                        (5, 3, None), (6, 2, 60), (7, 1, 70)])
        db.insert("r", [(1, 1, 100), (2, 2, 200), (3, 2, 201),
                        (4, None, 300), (5, 5, 500)])
        return db

    def _agree(self, db, sql):
        vec = db.execute(sql, engine="vectorized")
        ref = db.execute(sql, engine="tuple")
        assert vec.rows == ref.rows, sql
        return vec.rows

    def test_hash_join_null_keys_never_match(self):
        rows = self._agree(
            self._db(),
            "select l.id, r.id from l, r where l.k = r.k")
        assert all(pair[0] != 4 for pair in rows)  # l.k NULL row

    def test_left_outer_join_pads_unmatched(self):
        rows = self._agree(
            self._db(),
            "select l.id, r.w from l left outer join r on r.k = l.k")
        padded = [r for r in rows if r[1] is None and r[0] in (4, 5)]
        assert len(padded) == 2

    def test_distinct_aggregates(self):
        self._agree(self._db(),
                    "select l.k, count(distinct l.v), sum(l.v) from l"
                    " group by l.k")

    def test_union_all_and_except_all(self):
        db = self._db()
        self._agree(db, "select l.k from l union all select r.k from r")
        self._agree(db, "select l.k from l except all select r.k from r")

    def test_order_by_limit_offset(self):
        self._agree(self._db(),
                    "select l.v from l order by l.v limit 3")

    def test_in_list_and_case(self):
        self._agree(self._db(),
                    "select case when l.v > 20 then l.k else 0 end"
                    " from l where l.k in (1, 2)")

    def test_scalar_aggregate_on_empty_input(self):
        db = self._db()
        rows = self._agree(
            db, "select count(*), sum(l.v) from l where l.k = 99")
        assert rows == [(0, None)]

    def test_correlated_subquery_runs_row_engine_inner(self):
        self._agree(self._db(),
                    "select l.id, (select sum(r.w) from r where r.k = l.k)"
                    " from l")


class TestMorselDeterminism:
    """Parallel morsel scans must be invisible: 1 worker vs N workers
    produce identical rows AND identical EXPLAIN ANALYZE actuals (a
    skipped or parallel-decoded chunk is still charged to the scan)."""

    QUERIES = (
        "select t.a, t.b from t",
        "select t.b, count(*), sum(t.a) from t where t.a > 25"
        " group by t.b",
        "select t.a from t where t.b = 3 order by 1",
        "select count(*) from t where t.a is not null",
    )

    def loaded(self, morsel_workers) -> Database:
        db = Database(batch_size=7, chunk_rows=16,
                      morsel_workers=morsel_workers)
        db.create_table("t", [("a", DataType.INTEGER, False),
                              ("b", DataType.INTEGER, True)],
                        primary_key=("a",))
        db.insert("t", [(i, i % 5 if i % 7 else None)
                        for i in range(150)])
        return db

    @staticmethod
    def actuals(node, out):
        # Column ids are globally unique, so strip the #id suffixes to
        # compare plans across independent Database instances.
        op = re.sub(r"#\d+", "", node["op"])
        out.append((op, node["actual_rows"]))
        for child in node.get("children", ()):
            TestMorselDeterminism.actuals(child, out)
        return out

    def test_parallel_scan_matches_serial(self):
        from repro import FULL
        serial = self.loaded(1)
        parallel = self.loaded(8)
        for sql in self.QUERIES:
            assert parallel.execute(sql, FULL).rows \
                == serial.execute(sql, FULL).rows, sql
            serial_plan = serial.explain(
                sql, FULL, analyze=True, format="dict",
                engine="vectorized")
            parallel_plan = parallel.explain(
                sql, FULL, analyze=True, format="dict",
                engine="vectorized")
            assert self.actuals(parallel_plan["plan"], []) \
                == self.actuals(serial_plan["plan"], []), sql

    def test_worker_count_is_validated(self):
        with pytest.raises(ExecutionError):
            VectorizedExecutor(Database().storage, morsel_workers=0)
