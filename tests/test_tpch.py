"""TPC-H substrate tests: generator invariants and query correctness.

Query correctness is differential: every execution mode must agree with
the naive interpreter on a small scale factor.
"""

from collections import Counter

import pytest

from repro import CORRELATED, DECORRELATE_ONLY, FULL, NAIVE, Database
from repro.tpch import (PAPER_HIGHLIGHT, QUERIES, TABLES, create_tpch_schema,
                        generate_tpch, paper_example_formulations)


@pytest.fixture(scope="module")
def tpch_db():
    db = Database()
    create_tpch_schema(db)
    counts = generate_tpch(db, scale_factor=0.001, seed=7)
    return db, counts


@pytest.fixture(scope="module")
def tiny_tpch_db():
    """Minimum-size instance for naive-interpreter differential checks
    (the naive oracle is quadratic on correlated queries)."""
    db = Database()
    create_tpch_schema(db)
    counts = generate_tpch(db, scale_factor=0.0001, seed=11)
    return db, counts


class TestGenerator:
    def test_cardinalities_scale(self, tpch_db):
        db, counts = tpch_db
        assert counts.region == 5
        assert counts.nation == 25
        assert counts.orders == counts.customer * 10
        assert counts.partsupp == counts.part * 4
        # ~4 lineitems per order (uniform 1..7)
        assert 3.0 < counts.lineitem / counts.orders < 5.0

    def test_deterministic(self):
        def build(seed):
            db = Database()
            create_tpch_schema(db, with_indexes=False)
            generate_tpch(db, scale_factor=0.0005, seed=seed)
            return db.storage.get("lineitem").rows

        assert build(3) == build(3)
        assert build(3) != build(4)

    def test_keys_enforced(self, tpch_db):
        db, _ = tpch_db
        # inserting a duplicate primary key must fail
        from repro.errors import ExecutionError
        row = list(db.storage.get("region").rows[0])
        with pytest.raises(ExecutionError):
            db.insert("region", [tuple(row)])

    def test_value_domains(self, tpch_db):
        db, _ = tpch_db
        parts = db.storage.get("part").rows
        table = db.catalog.get_table("part")
        brand_at = table.column_index("p_brand")
        container_at = table.column_index("p_container")
        brands = {row[brand_at] for row in parts}
        assert all(b.startswith("Brand#") and len(b) == 8 for b in brands)
        containers = {row[container_at] for row in parts}
        sizes = {c.split()[0] for c in containers}
        assert sizes <= {"SM", "MED", "LG", "JUMBO", "WRAP"}

    def test_lineitem_references_partsupp_pairs(self, tpch_db):
        db, _ = tpch_db
        ps = {(r[0], r[1]) for r in db.storage.get("partsupp").rows}
        li_table = db.catalog.get_table("lineitem")
        pk_at = li_table.column_index("l_partkey")
        sk_at = li_table.column_index("l_suppkey")
        for row in db.storage.get("lineitem").rows[:200]:
            assert (row[pk_at], row[sk_at]) in ps

    def test_one_third_of_customers_orderless(self, tpch_db):
        db, counts = tpch_db
        custkeys = {r[1] for r in db.storage.get("orders").rows}
        orderless = counts.customer - len(custkeys)
        assert orderless >= counts.customer // 4  # ≈ one third

    def test_dates_in_range(self, tpch_db):
        import datetime
        db, _ = tpch_db
        table = db.catalog.get_table("orders")
        date_at = table.column_index("o_orderdate")
        for row in db.storage.get("orders").rows[:200]:
            assert datetime.date(1992, 1, 1) <= row[date_at] \
                <= datetime.date(1998, 8, 2)


class TestQueryCorrectness:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_physical_modes_agree(self, tpch_db, name):
        db, _ = tpch_db
        sql = QUERIES[name]
        reference = db.execute(sql, FULL)
        for mode in (DECORRELATE_ONLY, CORRELATED):
            result = db.execute(sql, mode)
            assert _rounded(result.rows) == _rounded(reference.rows), \
                f"{name} under {mode.name}"

    # Queries whose naive (cross-product + per-row subquery) evaluation is
    # tractable at the tiny scale.  The remaining queries (Q2, Q3, Q5,
    # Q10, Q18, Q20, Q21) have 3+-way cross products under naive
    # evaluation; their query *shapes* are differentially validated
    # against the naive oracle on small synthetic tables in
    # test_normalize_semantics/test_end_to_end.
    NAIVE_FEASIBLE = ("Q1", "Q4", "Q6", "Q11", "Q12", "Q13", "Q14", "Q15",
                      "Q16", "Q17", "Q19", "Q22")

    @pytest.mark.parametrize("name", NAIVE_FEASIBLE)
    def test_naive_oracle_agrees(self, tiny_tpch_db, name):
        """Differential against the naive interpreter (tiny instance: the
        oracle evaluates correlated subqueries quadratically)."""
        db, _ = tiny_tpch_db
        sql = QUERIES[name]
        reference = db.execute(sql, NAIVE)
        result = db.execute(sql, FULL)
        assert _rounded(result.rows) == _rounded(reference.rows)

    def test_q15_view_variant_matches_derived_table(self, tiny_tpch_db):
        """TPC-H defines Q15 with a view; the bundled text uses the
        sanctioned derived-table variant — both must agree."""
        db, _ = tiny_tpch_db
        try:
            db.create_view("revenue0", """
                select l_suppkey as supplier_no,
                       sum(l_extendedprice * (1 - l_discount))
                         as total_revenue
                from lineitem
                where l_shipdate >= date '1996-01-01'
                  and l_shipdate < date '1996-01-01' + interval '3' month
                group by l_suppkey""")
        except Exception:
            pass  # already created by a previous parametrization
        view_sql = """
            select s_suppkey, s_name, s_address, s_phone, total_revenue
            from supplier, revenue0
            where s_suppkey = supplier_no
              and total_revenue = (select max(total_revenue) from revenue0)
            order by s_suppkey"""
        assert db.execute(view_sql, FULL).rows == \
            db.execute(QUERIES["Q15"], FULL).rows

    def test_extract_year_semantics(self, tiny_tpch_db):
        db, _ = tiny_tpch_db
        sql = """select extract(year from o_orderdate) as y, count(*)
                 from orders group by extract(year from o_orderdate)
                 order by y"""
        reference = db.execute(sql, NAIVE)
        assert db.execute(sql, FULL).rows == reference.rows
        assert all(1992 <= y <= 1998 for y, _ in reference.rows)

    def test_paper_formulations_same_result(self, tpch_db):
        db, _ = tpch_db
        results = []
        for label, sql in paper_example_formulations(100000.0).items():
            results.append(Counter(db.execute(sql, FULL).rows))
        assert results[0] == results[1] == results[2]

    def test_highlighted_queries_listed(self):
        assert set(PAPER_HIGHLIGHT) <= set(QUERIES)

    def test_schema_covers_all_tables(self):
        assert set(TABLES) == {"region", "nation", "supplier", "customer",
                               "part", "partsupp", "orders", "lineitem"}


def _rounded(rows):
    """Compare rows with float tolerance (aggregation order differs across
    plans, and float addition is not associative)."""
    out = []
    for row in rows:
        out.append(tuple(round(v, 4) if isinstance(v, float) else v
                         for v in row))
    return Counter(out)
