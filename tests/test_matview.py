"""Materialized aggregate views: DDL, rewrite, maintenance, selection.

Covers the `repro.matview` subsystem end to end through the public
Database API: CREATE/DROP/REFRESH MATERIALIZED VIEW statements, the
transparent rewrite (exact-group, coarser-group, residual-predicate and
empty-group forms, all checked bit-identical against the base-table
plan), per-commit incremental maintenance, DDL invalidation, the
plan-cache-mining advisor, and the session-level gating rules.
"""

import warnings

import pytest

from repro import (FULL, NAIVE, CatalogError, Database, DataType,
                   MatViewError, TransactionError)
from repro.matview import (AggSpec, MatViewDef, auto_materialize,
                           canonicalize, local_aggregate, match_rewrite,
                           merge, recommend)
from repro.sql import parse, split_matview_ddl


def fresh_db(**kwargs):
    db = Database(**kwargs)
    db.create_table("t", [("g", DataType.INTEGER, False),
                          ("h", DataType.INTEGER, False),
                          ("c", DataType.INTEGER, True)])
    db.insert("t", [(i % 5, i % 10, None if i % 7 == 0 else i)
                    for i in range(100)])
    return db


def both_ways(db, sql, params=None):
    """(base-plan rows, possibly-rewritten rows) for the same query."""
    base = db.execute(sql, FULL, params=params, use_matviews=False)
    rewritten = db.execute(sql, FULL, params=params)
    return base.rows, rewritten.rows


# -- DDL surface ---------------------------------------------------------------


class TestMatViewDdl:
    def test_split_matview_ddl_detects_statements(self):
        create = split_matview_ddl(
            "CREATE MATERIALIZED VIEW mv AS SELECT g, count(*) AS n "
            "FROM t GROUP BY g")
        assert create is not None and create.kind == "create"
        assert create.name == "mv"
        assert split_matview_ddl("DROP MATERIALIZED VIEW mv").kind == "drop"
        assert (split_matview_ddl("REFRESH MATERIALIZED VIEW mv").kind
                == "refresh")
        assert split_matview_ddl("SELECT 1") is None
        assert split_matview_ddl("CREATE VIEW v AS SELECT 1") is None

    def test_create_drop_refresh_roundtrip(self):
        db = fresh_db()
        result = db.execute(
            "CREATE MATERIALIZED VIEW mv AS SELECT g, count(*) AS n, "
            "sum(c) AS s FROM t GROUP BY g")
        assert result.rows == [("created materialized view mv",)]
        assert db.catalog.has_matview("mv")
        assert db.execute("REFRESH MATERIALIZED VIEW mv").rows == \
            [("refreshed materialized view mv",)]
        assert db.matviews.status()["refreshes"] == 1
        assert db.execute("DROP MATERIALIZED VIEW mv").rows == \
            [("dropped materialized view mv",)]
        assert not db.catalog.has_matview("mv")

    def test_backing_table_stores_local_aggregate_form(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "avg(c) AS a FROM t GROUP BY g")
        backing = db.catalog.get_table("mv")
        names = [col.name for col in backing.columns]
        # AVG decomposes into carried SUM and COUNT columns (§3.3).
        assert names == ["g", "cnt_star", "sum_c", "cnt_c"]
        assert backing.primary_key == ("g",)

    def test_create_validates_definition(self):
        db = fresh_db()
        for bad in [
                "SELECT count(*) AS n FROM t",              # no GROUP BY
                "SELECT g FROM t GROUP BY g",               # no aggregate
                "SELECT g, count(distinct c) AS n FROM t GROUP BY g",
                "SELECT g, count(*) AS n FROM t GROUP BY g HAVING g > 1",
                "SELECT g, count(*) AS n FROM t WHERE c > ? GROUP BY g",
                "SELECT g, count(*) AS n FROM t GROUP BY g LIMIT 2",
        ]:
            with pytest.raises(MatViewError):
                db.matviews.create("mv", bad)
        with pytest.raises(MatViewError):
            db.matviews.create("mv", "SELECT g, sum(c + 1) AS s "
                               "FROM t GROUP BY g")

    def test_name_clashes_rejected_in_both_directions(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "count(*) AS n FROM t GROUP BY g")
        with pytest.raises(CatalogError):
            db.matviews.create("t", "SELECT g, count(*) AS n FROM t "
                               "GROUP BY g")
        with pytest.raises(CatalogError):
            db.create_table("mv", [("x", DataType.INTEGER, False)])
        with pytest.raises(CatalogError):
            db.create_view("mv", "SELECT g FROM t")

    def test_insert_into_matview_rejected(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "count(*) AS n FROM t GROUP BY g")
        with pytest.raises(CatalogError):
            db.insert("mv", [(1, 2, 3, 4)])
        with db.session() as session:
            session.begin()
            with pytest.raises(CatalogError):
                session.insert("mv", [(1, 2, 3, 4)])
            session.rollback()

    def test_drop_base_table_cascades(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "count(*) AS n FROM t GROUP BY g")
        db.drop_table("t")
        assert not db.catalog.has_matview("mv")
        assert not db.catalog.has_table("mv")

    def test_drop_table_refuses_matview_name(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "count(*) AS n FROM t GROUP BY g")
        with pytest.raises(CatalogError):
            db.drop_table("mv")

    def test_matview_ddl_rejected_inside_transaction(self):
        db = fresh_db()
        with db.session() as session:
            session.begin()
            with pytest.raises(TransactionError):
                session.execute("CREATE MATERIALIZED VIEW mv AS "
                                "SELECT g, count(*) AS n FROM t GROUP BY g")
            session.rollback()


# -- rewrite -------------------------------------------------------------------


REWRITE_QUERIES = [
    # exact grouping
    "SELECT g, h, count(*) AS n, sum(c) AS s, avg(c) AS a, "
    "min(c) AS lo, max(c) AS hi FROM t GROUP BY g, h ORDER BY g, h",
    # coarser grouping: re-aggregates stored partials
    "SELECT g, count(*) AS n, sum(c) AS s, avg(c) AS a FROM t "
    "GROUP BY g ORDER BY g",
    "SELECT h, count(c) AS nc, max(c) AS hi FROM t GROUP BY h ORDER BY h",
    # global aggregate over the view
    "SELECT count(*) AS n, sum(c) AS s, avg(c) AS a FROM t",
    # aggregate subset / reordered outputs
    "SELECT avg(c) AS a, g FROM t GROUP BY g ORDER BY g",
]


class TestRewrite:
    def view_db(self):
        db = fresh_db()
        db.execute(
            "CREATE MATERIALIZED VIEW mv AS SELECT g, h, count(*) AS n, "
            "count(c) AS nc, sum(c) AS s, avg(c) AS a, min(c) AS lo, "
            "max(c) AS hi FROM t GROUP BY g, h")
        return db

    @pytest.mark.parametrize("sql", REWRITE_QUERIES)
    def test_rewritten_results_bit_identical(self, sql):
        db = self.view_db()
        before = db.matviews.status()["rewrites"]
        base, rewritten = both_ways(db, sql)
        assert base == rewritten
        assert db.matviews.status()["rewrites"] > before

    def test_empty_group_counts_are_zero_not_null(self):
        db = self.view_db()
        sql = "SELECT count(*) AS n, count(c) AS nc, sum(c) AS s " \
              "FROM t WHERE g = 42"
        base, rewritten = both_ways(db, sql)
        assert base == rewritten == [(0, 0, None)]

    def test_residual_predicate_on_group_columns(self):
        db = self.view_db()
        sql = "SELECT g, sum(c) AS s FROM t WHERE h < 4 " \
              "GROUP BY g ORDER BY g"
        base, rewritten = both_ways(db, sql)
        assert base == rewritten

    def test_parameterized_residual(self):
        db = self.view_db()
        sql = "SELECT g, count(*) AS n FROM t WHERE h = ? " \
              "GROUP BY g ORDER BY g"
        for value in (0, 3, 99):
            base, rewritten = both_ways(db, sql, params=[value])
            assert base == rewritten

    def test_explain_surfaces_rewrite(self):
        db = self.view_db()
        sql = "SELECT g, sum(c) AS s FROM t GROUP BY g"
        rendered = db.explain(sql)
        assert "-- materialized view --" in rendered
        assert "rewritten to scan mv" in rendered
        payload = db.explain(sql, format="dict")
        assert payload["matview"]["view"] == "mv"
        assert "FROM \"mv\"" in payload["matview"]["sql"]
        analyzed = db.explain(sql, analyze=True)
        assert "-- materialized view --" in analyzed

    def test_explain_without_view_has_no_matview_section(self):
        db = fresh_db()
        rendered = db.explain("SELECT g, sum(c) AS s FROM t GROUP BY g")
        assert "-- materialized view --" not in rendered
        payload = db.explain("SELECT g, sum(c) AS s FROM t GROUP BY g",
                             format="dict")
        assert "matview" not in payload

    def test_non_matching_queries_untouched(self):
        db = self.view_db()
        before = db.matviews.status()["rewrites"]
        # filter on a non-group column: the view cannot answer it
        db.execute("SELECT g, sum(c) AS s FROM t WHERE c > 50 GROUP BY g")
        # grouping finer than anything stored
        db.execute("SELECT c, count(*) AS n FROM t GROUP BY c")
        assert db.matviews.status()["rewrites"] == before

    def test_rewrite_disabled_per_query_and_per_database(self):
        db = self.view_db()
        before = db.matviews.status()["rewrites"]
        db.execute("SELECT g, sum(c) AS s FROM t GROUP BY g",
                   use_matviews=False)
        assert db.matviews.status()["rewrites"] == before
        db.matview_rewrite = False
        db.execute("SELECT g, sum(c) AS s FROM t GROUP BY g")
        assert db.matviews.status()["rewrites"] == before
        off = Database(matview_rewrite=False)
        assert off.matview_rewrite is False

    def test_all_engines_and_modes_agree_through_the_view(self):
        db = self.view_db()
        sql = "SELECT g, count(*) AS n, avg(c) AS a FROM t " \
              "GROUP BY g ORDER BY g"
        expected = db.execute(sql, FULL, use_matviews=False).rows
        for engine in ("tuple", "vectorized"):
            assert db.execute(sql, FULL, engine=engine).rows == expected
        assert db.execute(sql, NAIVE).rows == expected

    def test_smallest_matching_view_wins(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv_fine AS SELECT g, h, "
                   "count(*) AS n FROM t GROUP BY g, h")
        db.execute("CREATE MATERIALIZED VIEW mv_coarse AS SELECT g, "
                   "count(*) AS n FROM t GROUP BY g")
        payload = db.explain("SELECT g, count(*) AS n FROM t GROUP BY g",
                             format="dict")
        assert payload["matview"]["view"] == "mv_coarse"


# -- incremental maintenance ---------------------------------------------------


class TestMaintenance:
    def test_commit_folds_delta_into_view(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "count(*) AS n, sum(c) AS s, min(c) AS lo, "
                   "max(c) AS hi FROM t GROUP BY g")
        with db.session() as session:
            session.begin()
            session.insert("t", [(2, 0, 1000), (9, 0, -5), (9, 0, None)])
            session.commit()
        assert db.matviews.status()["maintained_commits"] == 1
        incremental = sorted(
            db.execute("SELECT * FROM mv", use_matviews=False).rows)
        db.execute("REFRESH MATERIALIZED VIEW mv")
        recomputed = sorted(
            db.execute("SELECT * FROM mv", use_matviews=False).rows)
        assert incremental == recomputed

    def test_autocommit_insert_maintains_too(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "count(*) AS n FROM t GROUP BY g")
        db.insert("t", [(0, 0, 7)])
        rows = dict(db.execute("SELECT * FROM mv",
                               use_matviews=False).rows)
        assert rows[0] == 21  # 20 seed rows in group 0, plus this one

    def test_rolled_back_transaction_leaves_view_untouched(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "count(*) AS n FROM t GROUP BY g")
        before = sorted(db.execute("SELECT * FROM mv",
                                   use_matviews=False).rows)
        with db.session() as session:
            session.begin()
            session.insert("t", [(0, 0, 7)])
            session.rollback()
        after = sorted(db.execute("SELECT * FROM mv",
                                  use_matviews=False).rows)
        assert before == after
        assert db.matviews.status()["maintained_commits"] == 0

    def test_staged_writes_bypass_view_rewrites(self):
        db = fresh_db()
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "count(*) AS n FROM t GROUP BY g")
        sql = "SELECT g, count(*) AS n FROM t GROUP BY g ORDER BY g"
        with db.session() as session:
            session.begin()
            session.insert("t", [(0, 0, 7), (0, 1, 8)])
            staged = session.execute(sql).rows
            # Read-your-own-writes: the staged rows must be visible,
            # which the (not yet maintained) view could not provide.
            assert dict(staged)[0] == 22
            session.rollback()

    def test_create_sees_rows_committed_before_it(self):
        db = fresh_db()
        db.insert("t", [(4, 9, 123)])
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "count(*) AS n FROM t GROUP BY g")
        base = dict(db.execute("SELECT g, count(*) AS n FROM t GROUP BY g",
                               use_matviews=False).rows)
        view = dict((r[0], r[1]) for r in db.execute(
            "SELECT * FROM mv", use_matviews=False).rows)
        assert base == view


# -- library-level pieces ------------------------------------------------------


class TestLibraryApi:
    def test_canonicalize_fingerprint(self):
        query = parse("SELECT g, count(*) AS n, sum(c) AS s FROM t "
                          "WHERE h = 3 GROUP BY g")
        fingerprint = canonicalize(query)
        assert fingerprint.table == "t"
        assert fingerprint.group_cols == ("g",)
        assert AggSpec("count_star", None) in fingerprint.aggregates
        assert AggSpec("sum", "c") in fingerprint.aggregates
        assert len(fingerprint.conjuncts) == 1

    def test_match_rewrite_rejects_uncovered_shapes(self):
        view = MatViewDef.from_sql(
            "mv", "SELECT g, sum(c) AS s FROM t GROUP BY g")
        covered = canonicalize(parse(
            "SELECT g, sum(c) AS s FROM t GROUP BY g"))
        assert match_rewrite(covered, view) is not None
        for sql in [
                "SELECT g, sum(c) AS s FROM u GROUP BY g",   # other table
                "SELECT h, sum(c) AS s FROM t GROUP BY h",   # other group
                "SELECT g, min(c) AS m FROM t GROUP BY g",   # unsupported
                "SELECT g, sum(c) AS s FROM t WHERE c > 1 GROUP BY g",
        ]:
            fingerprint = canonicalize(parse(sql))
            assert match_rewrite(fingerprint, view) is None

    def test_local_aggregate_merge_matches_recompute(self):
        view = MatViewDef.from_sql(
            "mv", "SELECT g, count(*) AS n, sum(c) AS s, avg(c) AS a, "
            "min(c) AS lo, max(c) AS hi FROM t GROUP BY g")
        db = fresh_db()
        base = db.catalog.get_table("t")
        seed = list(db.storage.get("t").rows)
        delta = [(0, 0, 55), (7, 1, None), (7, 2, -3)]
        db.matviews.create("mv", view.sql)
        current = list(db.storage.get("mv").rows)
        merged = merge(view, view.backing_def(base), current,
                       local_aggregate(view, base, delta))
        db.insert("t", [row for row in delta])
        db.execute("REFRESH MATERIALIZED VIEW mv")
        assert sorted(merged) == sorted(db.storage.get("mv").rows)
        assert len(seed) + len(delta) == len(db.storage.get("t").rows)


# -- advisor -------------------------------------------------------------------


class TestAdvisor:
    def hot_db(self):
        db = fresh_db()
        for _ in range(4):
            db.execute("SELECT g, sum(c) AS s FROM t WHERE h = ? "
                       "GROUP BY g", params=[1])
        return db

    def test_recommend_generalizes_parameters_into_grouping(self):
        db = self.hot_db()
        recs = recommend(db)
        assert len(recs) == 1
        assert recs[0].table == "t"
        assert recs[0].hits >= 3
        # The parameterized h-predicate folds into the view's GROUP BY.
        assert 'GROUP BY "g", "h"' in recs[0].sql

    def test_min_hits_threshold(self):
        db = fresh_db()
        db.execute("SELECT g, sum(c) AS s FROM t GROUP BY g")
        assert recommend(db) == []  # one compile, no repeat traffic

    def test_auto_materialize_creates_and_serves(self):
        db = self.hot_db()
        created = auto_materialize(db)
        assert [r.name for r in created] == ["mv_auto_1"]
        assert db.matviews.status()["auto_created"] == 1
        sql = "SELECT g, sum(c) AS s FROM t WHERE h = ? GROUP BY g " \
              "ORDER BY g"
        base, rewritten = both_ways(db, sql, params=[1])
        assert base == rewritten
        # Satisfied workload: nothing further to recommend.
        assert recommend(db) == []

    def test_non_aggregate_traffic_ignored(self):
        db = fresh_db()
        for _ in range(5):
            db.execute("SELECT g, h FROM t WHERE g = 1")
        assert recommend(db) == []


# -- plan-cache interactions ---------------------------------------------------


class TestPlanCacheIntegration:
    def test_create_and_drop_invalidate_cached_plans(self):
        db = fresh_db()
        sql = "SELECT g, sum(c) AS s FROM t GROUP BY g ORDER BY g"
        expected = db.execute(sql).rows  # cached, no view yet
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "sum(c) AS s FROM t GROUP BY g")
        before = db.matviews.status()["rewrites"]
        assert db.execute(sql).rows == expected
        assert db.matviews.status()["rewrites"] == before + 1
        db.execute("DROP MATERIALIZED VIEW mv")
        assert db.execute(sql).rows == expected
        assert db.matviews.status()["rewrites"] == before + 1

    def test_snapshot_predating_view_recompiles_without_rewrite(self):
        db = fresh_db()
        sql = "SELECT g, sum(c) AS s FROM t GROUP BY g ORDER BY g"
        snapshot = db.storage.snapshot()  # pinned before the view exists
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT g, "
                   "sum(c) AS s FROM t GROUP BY g")
        db.execute(sql)  # caches the rewritten plan
        pinned = db.execute(sql, snapshot=snapshot)
        live = db.execute(sql)
        assert pinned.rows == live.rows

    def test_hits_counter_increments(self):
        db = fresh_db()
        sql = "SELECT g, sum(c) AS s FROM t GROUP BY g"
        for _ in range(3):
            db.execute(sql)
        entries = [e for e in db.plan_cache.entries()
                   if e.fingerprint is not None]
        assert entries and max(e.hits for e in entries) >= 2


# -- deprecation regression (positional costs) ---------------------------------


class TestPositionalCostsWarnOnce:
    def test_warns_exactly_once_per_process(self):
        import repro.database as database_module
        db = fresh_db()
        database_module._positional_costs_warned = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(4):
                db.explain("SELECT g FROM t", FULL, True)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
