"""Smoke tests: every bundled example must run end to end.

Examples are imported as modules (scale factors shrunk where they exist)
and their ``main`` executed; output goes to the captured stdout.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "big spenders" in out
        assert "carol" in out

    def test_decorrelation_tour(self, capsys):
        module = load_example("decorrelation_tour")
        module.main()
        out = capsys.readouterr().out
        assert "Stage 1" in out and "Stage 4" in out
        assert "Apply" in out
        assert "Join[inner]" in out  # the final simplified join

    def test_syntax_independence(self, capsys):
        module = load_example("syntax_independence")
        module.SCALE_FACTOR = 0.001
        module.main()
        out = capsys.readouterr().out
        assert "same result: True" in out

    def test_q17_segment_apply(self, capsys):
        module = load_example("q17_segment_apply")
        module.SCALE_FACTOR = 0.002
        module.main()
        out = capsys.readouterr().out
        assert "SegmentApply" in out
        assert "Strategy timings" in out

    def test_tpch_cli(self, capsys):
        module = load_example("tpch_cli")
        code = module.main(["--scale", "0.0005", "--query", "Q6",
                            "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Q6:" in out and "-- physical --" in out

    def test_tpch_cli_adhoc_sql(self, capsys):
        module = load_example("tpch_cli")
        code = module.main(["--scale", "0.0005",
                            "--sql", "select count(*) from region"])
        assert code == 0
        assert "ad-hoc: 1 rows" in capsys.readouterr().out

    def test_tpch_cli_requires_action(self, capsys):
        module = load_example("tpch_cli")
        assert module.main(["--scale", "0.0005"]) == 2
