"""Static concurrency analyzer: clean real tree, caught fixture,
fault-site registry lint, CLI exit codes."""

import os
import subprocess
import sys

import pytest

import repro
from repro.analysis.concurrency import (analyze_tree, check_fault_sites,
                                        extract_tree)
from repro.concurrency import HIERARCHY, spec_for
from repro.faultinject import INJECTION_SITES, sites

REPRO_ROOT = os.path.dirname(os.path.abspath(repro.__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(REPRO_ROOT))
FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "deadlock_fixture.py")


# -- the real tree ---------------------------------------------------------------


def test_real_tree_is_clean():
    issues, graph = analyze_tree(REPRO_ROOT)
    assert issues == [], "\n".join(i.render() for i in issues)
    assert graph.cycles == []


def test_real_tree_extracts_known_edges():
    """Sanity: the analyzer actually sees the engine's lock nesting —
    commit's writer->wal and the checkpoint paths, not a trivially
    empty graph."""
    issues, graph = analyze_tree(REPRO_ROOT)
    ordered = set(graph.edges)
    assert ("storage.writer", "wal.log") in ordered
    assert ("storage.writer", "storage.tables") in ordered
    for held, acquired in ordered:
        if held == acquired:
            continue
        assert spec_for(held).level < spec_for(acquired).level, \
            f"{held} -> {acquired} descends"


def test_hierarchy_levels_are_unique():
    levels = [spec.level for spec in HIERARCHY]
    assert len(levels) == len(set(levels))


# -- the seeded fixture ----------------------------------------------------------


def test_fixture_inversion_is_caught():
    extraction = extract_tree(FIXTURE)
    from repro.analysis.concurrency.graph import build_graph
    graph = build_graph(extraction)
    codes = {i.code for i in graph.issues}
    assert "order.descend" in codes
    assert "order.cycle" in codes
    assert ["fixture.alpha", "fixture.beta"] in graph.cycles


def test_fixture_blame_names_both_locks_and_sites():
    extraction = extract_tree(FIXTURE)
    from repro.analysis.concurrency.graph import build_graph
    graph = build_graph(extraction)
    text = graph.explain_cycle(graph.cycles[0])
    assert "fixture.alpha" in text and "fixture.beta" in text
    assert "deadlock_fixture.py:" in text  # acquisition sites


# -- CLI gate --------------------------------------------------------------------


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_RACE", None)
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.concurrency", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)


def test_cli_check_clean_tree_exits_zero():
    proc = _run_cli("check")
    assert proc.returncode == 0, proc.stderr
    assert "0 issues" in proc.stdout


def test_cli_check_fixture_exits_nonzero_without_expect():
    proc = _run_cli("check", FIXTURE)
    assert proc.returncode == 1
    assert "order.cycle" in proc.stderr


def test_cli_expect_violations_inverts_gate():
    proc = _run_cli("check", FIXTURE, "--expect-violations")
    assert proc.returncode == 0, proc.stderr
    proc = _run_cli("check", "--expect-violations")  # clean tree
    assert proc.returncode == 1


def test_cli_hierarchy_lists_all_locks():
    proc = _run_cli("hierarchy")
    assert proc.returncode == 0
    for spec in HIERARCHY:
        assert spec.name in proc.stdout


# -- fault-site registry ---------------------------------------------------------


def test_fault_sites_unique_and_enumerable():
    listed = sites()
    assert listed == INJECTION_SITES
    assert len(set(listed)) == len(listed)


def test_fault_registry_lint_clean():
    design = os.path.join(REPO_ROOT, "DESIGN.md")
    issues = check_fault_sites(REPRO_ROOT, design)
    assert issues == [], "\n".join(i.render() for i in issues)


def test_fault_lint_catches_unregistered_site(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import repro.faultinject as fi\n"
                   "fi.hit('nonexistent.site')\n")
    issues = check_fault_sites(str(tmp_path))
    codes = {i.code for i in issues}
    assert "faults.unregistered-site" in codes


def test_fault_lint_catches_duplicate_location(tmp_path):
    dup = tmp_path / "dup.py"
    dup.write_text("import repro.faultinject as fi\n"
                   "fi.hit('wal.append')\n"
                   "fi.hit('wal.append')\n")
    issues = check_fault_sites(str(tmp_path))
    assert any(i.code == "faults.duplicate-site" for i in issues)


# -- inline lints ----------------------------------------------------------------


def test_timeout_required_lint(tmp_path):
    src = tmp_path / "m.py"
    src.write_text(
        "from repro.concurrency import TrackedLock\n"
        "L = TrackedLock('storage.writer:x')\n"
        "def f():\n"
        "    with L:\n"
        "        pass\n")
    extraction = extract_tree(str(src))
    assert any(i.code == "lock.timeout-required"
               for i in extraction.issues)


def test_raw_lock_lint(tmp_path):
    src = tmp_path / "m.py"
    src.write_text("import threading\n"
                   "L = threading.Lock()\n")
    extraction = extract_tree(str(src))
    assert any(i.code == "lock.raw" for i in extraction.issues)


def test_undeclared_lock_lint(tmp_path):
    src = tmp_path / "m.py"
    src.write_text("from repro.concurrency import TrackedLock\n"
                   "L = TrackedLock('no.such.lock')\n")
    extraction = extract_tree(str(src))
    assert any(i.code == "lock.undeclared" for i in extraction.issues)


def test_blocking_under_hot_lock_lint(tmp_path):
    src = tmp_path / "m.py"
    src.write_text(
        "import os\n"
        "from repro.concurrency import TrackedLock\n"
        "L = TrackedLock('db.sessions')\n"  # hot
        "def f(handle):\n"
        "    with L:\n"
        "        os.fsync(handle)\n")
    from repro.analysis.concurrency import check_blocking
    extraction = extract_tree(str(src))
    issues = check_blocking(extraction)
    assert any(i.code == "blocking.hot-lock" for i in issues)


def test_guarded_field_lint(tmp_path):
    src = tmp_path / "m.py"
    src.write_text(
        "from repro.concurrency import TrackedLock\n"
        "class FeedbackLoop:\n"
        "    def __init__(self):\n"
        "        self._lock = TrackedLock('feedback.stats')\n"
        "        self.dropped = 0\n"
        "    def bump(self):\n"
        "        self.dropped += 1\n")  # no lock held
    extraction = extract_tree(str(src))
    assert any(i.code == "guard.unlocked-write"
               for i in extraction.issues)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
