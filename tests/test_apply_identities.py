"""The nine Apply-removal identities of paper Figure 4, one by one.

Each test builds the identity's left-hand side directly in the algebra,
runs one step of Apply removal, checks the rewritten shape, and verifies
semantic equivalence on data through the naive interpreter (including the
empty-input and NULL edge cases each identity is sensitive to).
"""

from collections import Counter

import pytest

from repro.algebra import (AggregateCall, AggregateFunction, Apply, Column,
                           ColumnRef, Comparison, DataType, Difference,
                           Get, GroupBy, Join, JoinKind, Literal,
                           Max1row, Project, ScalarGroupBy, Select,
                           UnionAll, collect_nodes, equals)
from repro.core.normalize import ApplyRemovalConfig, remove_applies
from repro.executor import NaiveInterpreter

R_ROWS = [(1, 10), (2, 20), (3, 30), (5, 50)]       # rk is the key
E_ROWS = [(1, 5.0), (1, 7.0), (2, None), (4, 9.0)]  # NULL value, no key 3/5


def run(tree, data=None):
    data = data or {"r": R_ROWS, "e": E_ROWS}
    return Counter(NaiveInterpreter(lambda name: data[name]).run(tree))


def make_r(with_key=True):
    rk = Column("rk", DataType.INTEGER, nullable=False)
    rv = Column("rv", DataType.INTEGER, nullable=False)
    keys = [[rk]] if with_key else []
    return Get("r", [rk, rv], keys), rk, rv


def make_e():
    ek = Column("ek", DataType.INTEGER, nullable=False)
    ev = Column("ev", DataType.FLOAT, nullable=True)
    return Get("e", [ek, ev], []), ek, ev


def decorrelate(tree, class2=False):
    return remove_applies(tree, ApplyRemovalConfig(class2_rewrites=class2))


def no_applies(tree):
    return not collect_nodes(tree, lambda n: isinstance(n, Apply))


class TestIdentity1And2:
    def test_identity1_uncorrelated_apply_is_join(self):
        """R A⊗ E = R ⊗true E when E has no parameters from R."""
        r, rk, rv = make_r()
        e, ek, ev = make_e()
        for kind in (JoinKind.INNER, JoinKind.LEFT_OUTER,
                     JoinKind.LEFT_SEMI, JoinKind.LEFT_ANTI):
            tree = Apply(kind, r, e)
            rewritten = decorrelate(tree)
            assert no_applies(rewritten)
            joins = collect_nodes(rewritten, lambda n: isinstance(n, Join))
            assert joins[0].kind is kind
            assert run(rewritten) == run(tree)

    def test_identity2_select_becomes_join_predicate(self):
        """R A⊗ (σp E) = R ⊗p E when only p is parameterized."""
        r, rk, rv = make_r()
        e, ek, ev = make_e()
        for kind in (JoinKind.INNER, JoinKind.LEFT_OUTER,
                     JoinKind.LEFT_SEMI, JoinKind.LEFT_ANTI):
            tree = Apply(kind, r, Select(e, equals(ek, rk)))
            rewritten = decorrelate(tree)
            assert no_applies(rewritten)
            (join,) = collect_nodes(rewritten, lambda n: isinstance(n, Join))
            assert join.kind is kind
            assert join.predicate is not None
            assert run(rewritten) == run(tree)


class TestIdentity3And4:
    def test_identity3_filter_above_apply(self):
        """A parameterized select folds through; a residual uncorrelated
        branch may stay above — semantics must hold either way."""
        r, rk, rv = make_r()
        e, ek, ev = make_e()
        pred = Comparison(">", ColumnRef(ev), Literal(5.0))
        inner = Select(Select(e, equals(ek, rk)), pred)
        tree = Apply(JoinKind.INNER, r, inner)
        rewritten = decorrelate(tree)
        assert no_applies(rewritten)
        assert run(rewritten) == run(tree)

    def test_identity4_project_pulled_above(self):
        """R A× (πv E) = π(v ∪ columns(R)) (R A× E)."""
        from repro.algebra import Arithmetic

        r, rk, rv = make_r()
        e, ek, ev = make_e()
        doubled = Column("doubled", DataType.FLOAT)
        projected = Project.extend(Select(e, equals(ek, rk)),
                                   [(doubled, Arithmetic(
                                       "*", ColumnRef(ev), Literal(2.0)))])
        tree = Apply(JoinKind.INNER, r, projected)
        rewritten = decorrelate(tree)
        assert no_applies(rewritten)
        assert isinstance(rewritten, Project) or collect_nodes(
            rewritten, lambda n: isinstance(n, Project))
        assert run(rewritten) == run(tree)

    def test_identity4_left_outer_literal_item_guarded(self):
        """Pushing a non-strict projection item (a literal) through an
        outer Apply must guard it so padding stays NULL."""
        r, rk, rv = make_r()
        e, ek, ev = make_e()
        marker = Column("marker", DataType.INTEGER)
        projected = Project.extend(Select(e, equals(ek, rk)),
                                   [(marker, Literal(1))])
        tree = Apply(JoinKind.LEFT_OUTER, r, projected)
        rewritten = decorrelate(tree)
        assert no_applies(rewritten)
        assert run(rewritten) == run(tree)
        # row rk=3 has no matches: its marker must be NULL, not 1
        marker_at = [c.cid for c in rewritten.output_columns()].index(
            marker.cid)
        interp = NaiveInterpreter(lambda n: {"r": R_ROWS, "e": E_ROWS}[n])
        rows = interp.run(rewritten)
        unmatched = [row for row in rows if row[0] == 3]
        assert unmatched and all(row[marker_at] is None
                                 for row in unmatched)


class TestIdentity5And6:
    def _union_tree(self):
        r, rk, rv = make_r()
        e1, ek1, ev1 = make_e()
        e2, ek2, ev2 = make_e()
        b1 = Project.passthrough(Select(e1, equals(ek1, rk)), [ev1])
        b2 = Project.passthrough(Select(e2, equals(ek2, rk)), [ev2])
        union = UnionAll.from_inputs([b1, b2])
        return Apply(JoinKind.INNER, r, union)

    def test_identity5_gated_by_default(self):
        tree = self._union_tree()
        assert not no_applies(decorrelate(tree, class2=False))

    def test_identity5_union_all(self):
        """R A× (E1 ∪ E2) = (R A× E1) ∪ (R A× E2), duplicating R."""
        tree = self._union_tree()
        rewritten = decorrelate(tree, class2=True)
        assert no_applies(rewritten)
        r_instances = collect_nodes(
            rewritten, lambda n: isinstance(n, Get) and n.table_name == "r")
        assert len(r_instances) == 2
        assert run(rewritten) == run(tree)

    def test_identity6_difference(self):
        """R A× (E1 − E2) = (R A× E1) − (R A× E2)."""
        r, rk, rv = make_r()
        e1, ek1, ev1 = make_e()
        e2, ek2, ev2 = make_e()
        b1 = Project.passthrough(Select(e1, equals(ek1, rk)), [ev1])
        b2 = Project.passthrough(
            Select(Select(e2, equals(ek2, rk)),
                   Comparison(">", ColumnRef(ev2), Literal(6.0))), [ev2])
        difference = Difference.from_inputs(b1, b2)
        tree = Apply(JoinKind.INNER, r, difference)
        rewritten = decorrelate(tree, class2=True)
        assert no_applies(rewritten)
        assert run(rewritten) == run(tree)


class TestIdentity7:
    def test_doubly_correlated_cross(self):
        """R A× (E1 × E2) = (R A× E1) ⋈_{R.key} (R A× E2)."""
        r, rk, rv = make_r()
        e1, ek1, ev1 = make_e()
        e2, ek2, ev2 = make_e()
        cross = Join.cross(Select(e1, equals(ek1, rk)),
                           Select(e2, equals(ek2, rk)))
        tree = Apply(JoinKind.INNER, r, cross)
        # both branches correlated: Class 2, default keeps the Apply
        assert not no_applies(decorrelate(tree, class2=False))
        rewritten = decorrelate(tree, class2=True)
        assert no_applies(rewritten)
        assert run(rewritten) == run(tree)

    def test_one_sided_correlation_avoids_duplication(self):
        """Correlation confined to one branch pushes Apply there — no
        common subexpression needed (stays Class 1)."""
        r, rk, rv = make_r()
        e1, ek1, ev1 = make_e()
        e2, ek2, ev2 = make_e()
        cross = Join.cross(Select(e1, equals(ek1, rk)), e2)
        tree = Apply(JoinKind.INNER, r, cross)
        rewritten = decorrelate(tree, class2=False)
        assert no_applies(rewritten)
        r_instances = collect_nodes(
            rewritten, lambda n: isinstance(n, Get) and n.table_name == "r")
        assert len(r_instances) == 1
        assert run(rewritten) == run(tree)


class TestIdentity8:
    def test_vector_groupby(self):
        """R A× (G_{A,F} E) = G_{A ∪ columns(R),F} (R A× E)."""
        r, rk, rv = make_r()
        e, ek, ev = make_e()
        agg = Column("m", DataType.FLOAT)
        grouped = GroupBy(Select(e, equals(ek, rk)), [ek],
                          [(agg, AggregateCall(AggregateFunction.MAX,
                                               ColumnRef(ev)))])
        tree = Apply(JoinKind.INNER, r, grouped)
        rewritten = decorrelate(tree)
        assert no_applies(rewritten)
        (gb,) = collect_nodes(rewritten, lambda n: isinstance(n, GroupBy))
        group_ids = {c.cid for c in gb.group_columns}
        assert {rk.cid, rv.cid, ek.cid} <= group_ids
        assert run(rewritten) == run(tree)

    def test_requires_key(self):
        r, rk, rv = make_r(with_key=False)
        e, ek, ev = make_e()
        agg = Column("m", DataType.FLOAT)
        grouped = GroupBy(Select(e, equals(ek, rk)), [ek],
                          [(agg, AggregateCall(AggregateFunction.MAX,
                                               ColumnRef(ev)))])
        tree = Apply(JoinKind.INNER, r, grouped)
        assert not no_applies(decorrelate(tree))  # Apply survives


class TestIdentity9:
    def _scalar_agg_tree(self, func, argument_col=None):
        r, rk, rv = make_r()
        e, ek, ev = make_e()
        out = Column("x", DataType.FLOAT)
        if func is AggregateFunction.COUNT_STAR:
            call = AggregateCall(func)
        else:
            call = AggregateCall(func, ColumnRef(argument_col or ev))
        sgb = ScalarGroupBy(Select(e, equals(ek, rk)), [(out, call)])
        return Apply(JoinKind.INNER, r, sgb), out

    def test_sum_becomes_outerjoin_groupby(self):
        tree, out = self._scalar_agg_tree(AggregateFunction.SUM)
        rewritten = decorrelate(tree)
        assert no_applies(rewritten)
        (gb,) = collect_nodes(rewritten, lambda n: isinstance(n, GroupBy))
        (join,) = collect_nodes(rewritten, lambda n: isinstance(n, Join))
        assert join.kind is JoinKind.LEFT_OUTER
        assert run(rewritten) == run(tree)
        # rows rk=3 and rk=5 have no matches: exactly one output row each,
        # with a NULL sum (scalar aggregation always yields a row).
        interp = NaiveInterpreter(lambda n: {"r": R_ROWS, "e": E_ROWS}[n])
        rows = interp.run(rewritten)
        x_at = [c.cid for c in rewritten.output_columns()].index(out.cid)
        unmatched = [row for row in rows if row[0] in (3, 5)]
        assert len(unmatched) == 2 and all(row[x_at] is None
                                           for row in unmatched)

    def test_count_star_probe_substitution(self):
        """The count bug: count(*) over an empty parameterized input must
        be 0, which identity (9) achieves via count(probe)."""
        tree, out = self._scalar_agg_tree(AggregateFunction.COUNT_STAR)
        rewritten = decorrelate(tree)
        assert no_applies(rewritten)
        (gb,) = collect_nodes(rewritten, lambda n: isinstance(n, GroupBy))
        ((_, call),) = [(c, a) for c, a in gb.aggregates]
        assert call.func is AggregateFunction.COUNT
        assert call.argument is not None  # probe column, not count(*)
        assert run(rewritten) == run(tree)
        interp = NaiveInterpreter(lambda n: {"r": R_ROWS, "e": E_ROWS}[n])
        rows = interp.run(rewritten)
        x_at = [c.cid for c in rewritten.output_columns()].index(out.cid)
        assert all(row[x_at] == 0 for row in rows if row[0] == 3)

    @pytest.mark.parametrize("func", [
        AggregateFunction.SUM, AggregateFunction.MIN, AggregateFunction.MAX,
        AggregateFunction.AVG, AggregateFunction.COUNT,
        AggregateFunction.COUNT_STAR])
    def test_all_aggregates_preserve_semantics(self, func):
        tree, _ = self._scalar_agg_tree(func)
        rewritten = decorrelate(tree)
        assert no_applies(rewritten)
        assert run(rewritten) == run(tree)

    def test_requires_key_on_outer(self):
        r, rk, rv = make_r(with_key=False)
        e, ek, ev = make_e()
        out = Column("x", DataType.FLOAT)
        sgb = ScalarGroupBy(Select(e, equals(ek, rk)),
                            [(out, AggregateCall(AggregateFunction.SUM,
                                                 ColumnRef(ev)))])
        tree = Apply(JoinKind.INNER, r, sgb)
        assert not no_applies(decorrelate(tree))


class TestClass3Boundaries:
    def test_max1row_blocks_pushdown(self):
        r, rk, rv = make_r()
        e, ek, ev = make_e()
        tree = Apply(JoinKind.LEFT_OUTER, r,
                     Max1row(Select(e, equals(ek, rk))))
        rewritten = decorrelate(tree)
        assert collect_nodes(rewritten, lambda n: isinstance(n, Apply))
        assert collect_nodes(rewritten, lambda n: isinstance(n, Max1row))

    def test_provably_single_row_elides_max1row(self):
        from repro.core.normalize import simplify

        r, rk, rv = make_r()
        e2, e2k, e2v = make_r()  # r has a key on rk
        tree = Apply(JoinKind.LEFT_OUTER, r,
                     Max1row(Select(e2, equals(e2k, rk))))
        rewritten = decorrelate(simplify(tree))
        assert no_applies(rewritten)
