"""Concurrency hammer for the lock-striped plan cache.

Regression for the unguarded-OrderedDict races the single-threaded cache
had: concurrent get (LRU ``move_to_end``) and put (insert + evict) used
to corrupt the dict or raise ``RuntimeError: OrderedDict mutated during
iteration``.  The striped cache must survive a sustained multi-thread
mix of hits, misses, inserts and invalidations with consistent counters
and the capacity invariant intact.
"""

import threading

import pytest

from repro import Database, DataType
from repro.plancache import CachedPlan, PlanCache
from repro.stats_version import StatsSnapshot

THREADS = 8
OPS_PER_THREAD = 400


def make_entry(i: int, catalog_version: int = 0) -> CachedPlan:
    return CachedPlan(
        sql_key=f"select-{i}", mode_name="full",
        catalog_version=catalog_version, names=["a"], types=[None],
        parameters=(), plan=None, rel=None, executable=None,
        snapshot=StatsSnapshot({}), table_names=frozenset({"t"}))


@pytest.mark.parametrize("shards", [1, 4])
def test_hammer_get_put_invalidate(shards):
    cache = PlanCache(capacity=32, shards=shards)
    errors: list[BaseException] = []
    barrier = threading.Barrier(THREADS)

    def worker(seed: int) -> None:
        try:
            barrier.wait()
            for step in range(OPS_PER_THREAD):
                i = (seed * OPS_PER_THREAD + step) % 64
                op = (seed + step) % 10
                if op < 4:
                    cache.get(f"select-{i}", "full", 0)
                elif op < 8:
                    cache.put(make_entry(i))
                elif op == 8:
                    len(cache)
                else:
                    cache.invalidate("t" if step % 2 else None)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,))
               for n in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors, errors
    assert len(cache) <= 32
    stats = cache.stats
    assert stats.hits + stats.misses > 0
    assert stats.hit_rate == stats.hits / (stats.hits + stats.misses)


def test_hammer_through_database_execute():
    """End-to-end: concurrent sessions running the same query set must
    share cached plans without corruption and converge to a high hit
    rate."""
    db = Database(plan_cache_shards=4)
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.INTEGER, False)],
                    primary_key=("a",))
    db.insert("t", [(i, i % 5) for i in range(100)])
    queries = [
        "select a from t where b = 1 order by a",
        "select b, count(*) from t group by b order by b",
        "select a from t where a < 10 order by a",
        "select max(a) from t",
    ]
    expected = {sql: db.execute(sql).rows for sql in queries}
    db.plan_cache.stats.reset()  # measure the hit rate after warm-up

    errors: list[BaseException] = []
    barrier = threading.Barrier(THREADS)

    def worker(seed: int) -> None:
        try:
            barrier.wait()
            session = db.session()
            for step in range(60):
                sql = queries[(seed + step) % len(queries)]
                result = session.execute(sql)
                assert result.rows == expected[sql]
            session.close()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,))
               for n in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    stats = db.plan_cache.stats
    assert stats.hit_rate >= 0.9


def test_hammer_feedback_invalidation_never_corrupts_execution():
    """Feedback staleness flags race against executions: workers hammer
    skewed queries on a feedback-enabled database (low threshold, so
    plans are flagged stale and replanned constantly) while a churn
    thread keeps dropping the corrections — which makes the fresh plans
    misestimate again and re-trips the invalidation.  Flagging must
    never evict a plan out from under an in-flight execution: every
    result stays correct, no thread ever errors."""
    db = Database(plan_cache_shards=4, feedback=True,
                  q_error_threshold=1.5)
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.INTEGER, True)],
                    primary_key=("a",))
    # Heavy skew: equality estimates are ~13x off, far past threshold.
    db.insert("t", [(i, 0 if i < 150 else i) for i in range(200)])
    queries = [
        "select a from t where b = 0 order by a",
        "select count(*) from t where b = 0",
        "select b, count(*) from t where b = 0 group by b",
        "select max(a) from t where b = 0",
    ]
    expected = {sql: db.execute(sql).rows for sql in queries}

    errors: list[BaseException] = []
    barrier = threading.Barrier(THREADS + 1)
    done = threading.Event()

    def worker(seed: int) -> None:
        try:
            barrier.wait()
            for step in range(60):
                sql = queries[(seed + step) % len(queries)]
                result = db.execute(sql)
                assert result.rows == expected[sql]
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def churn() -> None:
        try:
            barrier.wait()
            while not done.is_set():
                db.corrections.invalidate()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,))
               for n in range(THREADS)]
    churner = threading.Thread(target=churn)
    for t in threads:
        t.start()
    churner.start()
    for t in threads:
        t.join(timeout=60)
    done.set()
    churner.join(timeout=10)
    assert not errors, errors
    # The loop actually fired: plans were flagged stale and discarded.
    assert db.feedback.plans_invalidated > 0
    assert db.plan_cache.stats.feedback_stale > 0
