"""Resource governor: timeouts, row/memory budgets, optimizer budgets,
execution statistics and graceful plan degradation."""

from collections import Counter

import pytest

from repro import (CORRELATED, FULL, NAIVE, Database, DataType,
                   OptimizerBudget, OptimizerBudgetExceeded, QueryTimeout,
                   ReproError, ResourceError, ResourceExhausted,
                   ResourceGovernor)
from repro.core.optimizer import Optimizer


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("a", DataType.INTEGER, False),
                                ("b", DataType.INTEGER, False)],
                          primary_key=("a",))
    database.create_table("u", [("uk", DataType.INTEGER, False),
                                ("ua", DataType.INTEGER, False)],
                          primary_key=("uk",))
    database.insert("t", [(i, i % 17) for i in range(500)])
    database.insert("u", [(i, i % 23) for i in range(300)])
    return database


JOIN_AGG = """
    select b, count(*) from t
    where exists (select * from u where ua = b)
    group by b order by b
"""


class TestErrorHierarchy:
    def test_governor_errors_are_repro_errors(self):
        assert issubclass(QueryTimeout, ResourceError)
        assert issubclass(ResourceExhausted, ResourceError)
        assert issubclass(OptimizerBudgetExceeded, ResourceError)
        assert issubclass(ResourceError, ReproError)

    def test_governor_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            ResourceGovernor(timeout=-1.0)
        with pytest.raises(ValueError):
            ResourceGovernor(row_budget=0)
        with pytest.raises(ValueError):
            ResourceGovernor(memory_budget=-5)


class TestTimeout:
    @pytest.mark.parametrize("mode", [FULL, NAIVE, CORRELATED])
    def test_zero_timeout_raises_deterministically(self, db, mode):
        for _ in range(3):  # deterministic, not a race
            with pytest.raises(QueryTimeout):
                db.execute("select a from t where b >= 0", mode,
                           timeout=0.0)

    def test_timeout_reports_limit_and_elapsed(self, db):
        with pytest.raises(QueryTimeout) as info:
            db.execute("select a from t", timeout=0.0)
        assert info.value.timeout == 0.0
        assert info.value.elapsed >= 0.0

    def test_generous_timeout_passes(self, db):
        result = db.execute(JOIN_AGG, FULL, timeout=60.0)
        assert not result.degraded
        assert len(result) > 0


class TestRowBudget:
    def test_scan_exceeding_budget_raises(self, db):
        with pytest.raises(ResourceExhausted) as info:
            db.execute("select a from t", row_budget=10)
        assert info.value.resource == "row"
        assert info.value.limit == 10

    def test_budget_covers_correlated_rescans(self, db):
        # Correlated execution rescans the inner table per outer row, so
        # the budget trips long before the (small) result materializes.
        sql = "select a from t where b = (select min(uk) from u where ua = b)"
        with pytest.raises(ResourceExhausted):
            db.execute(sql, CORRELATED, row_budget=2000)

    def test_naive_mode_is_governed_too(self, db):
        with pytest.raises(ResourceExhausted):
            db.execute("select a from t", NAIVE, row_budget=10)

    def test_sufficient_budget_passes_and_reports(self, db):
        result = db.execute("select a from t", row_budget=10_000)
        assert len(result) == 500
        assert result.stats.governed
        assert 500 <= result.stats.rows_examined <= 10_000


class TestMemoryBudget:
    def test_sort_buffer_exceeds_budget(self, db):
        with pytest.raises(ResourceExhausted) as info:
            db.execute("select a from t order by b", memory_budget=100)
        assert info.value.resource == "memory"

    def test_hash_join_build_exceeds_budget(self, db):
        with pytest.raises(ResourceExhausted):
            db.execute("select t.a from t, u where t.a = u.uk",
                       memory_budget=50)

    def test_aggregation_groups_exceed_budget(self, db):
        # 500 distinct groups > 100-row budget.
        with pytest.raises(ResourceExhausted):
            db.execute("select a, count(*) from t group by a",
                       memory_budget=100)

    def test_peak_accounting_releases_buffers(self, db):
        result = db.execute("select a from t order by b",
                            memory_budget=10_000)
        assert len(result) == 500
        assert 500 <= result.stats.peak_rows_buffered <= 10_000

    def test_small_aggregate_fits_small_budget(self, db):
        # 17 groups fit comfortably although 500 rows flow through.
        result = db.execute("select b, count(*) from t group by b",
                            memory_budget=100)
        assert len(result) == 17


class TestOptimizerBudget:
    def test_optimizer_raises_budget_exceeded_directly(self, db):
        governor = ResourceGovernor(
            optimizer_budget=OptimizerBudget(max_rule_applications=1))
        governor.start()
        optimizer = Optimizer(db._stats_provider, db._index_provider,
                              governor=governor)
        from repro.core.normalize import normalize
        from repro.sql import parse
        bound = db._binder.bind(parse(JOIN_AGG))
        with pytest.raises(OptimizerBudgetExceeded):
            optimizer.optimize(normalize(bound.rel))

    def test_execute_degrades_instead_of_failing(self, db):
        reference = Counter(db.execute(JOIN_AGG, NAIVE).rows)
        result = db.execute(
            JOIN_AGG, FULL,
            optimizer_budget=OptimizerBudget(max_rule_applications=1))
        assert result.degraded
        assert "OptimizerBudgetExceeded" in result.stats.fallback_reason
        assert Counter(result.rows) == reference

    def test_memo_group_cap_degrades(self, db):
        reference = Counter(db.execute(JOIN_AGG, NAIVE).rows)
        result = db.execute(
            JOIN_AGG, FULL,
            optimizer_budget=OptimizerBudget(max_memo_groups=1))
        assert result.degraded
        assert Counter(result.rows) == reference

    def test_degraded_plan_never_enters_cache(self, db):
        db.plan_cache.invalidate()
        before = len(db.plan_cache)
        result = db.execute(
            JOIN_AGG, FULL,
            optimizer_budget=OptimizerBudget(max_rule_applications=1))
        assert result.degraded
        assert len(db.plan_cache) == before
        # Re-running without the handicap caches a fully optimized plan.
        clean = db.execute(JOIN_AGG, FULL)
        assert not clean.degraded
        assert len(db.plan_cache) == before + 1


class TestStats:
    def test_ungoverned_queries_still_report_elapsed(self, db):
        result = db.execute("select a from t limit 5")
        assert not result.stats.governed
        assert result.stats.elapsed_seconds >= 0.0
        assert not result.stats.degraded
        assert result.stats.fallback_reason is None

    def test_governed_stats_cover_optimizer_and_execution(self, db):
        db.plan_cache.invalidate()  # force a fresh, governed optimization
        result = db.execute(JOIN_AGG, FULL, timeout=60.0,
                            row_budget=10**9, memory_budget=10**9)
        stats = result.stats
        assert stats.governed
        assert stats.rule_applications > 0
        assert stats.memo_groups > 0
        assert stats.rows_examined > 0
        assert stats.timeout == 60.0

    def test_explicit_governor_is_honored(self, db):
        governor = ResourceGovernor(row_budget=10)
        with pytest.raises(ResourceExhausted):
            db.execute("select a from t", governor=governor)
        assert governor.rows_examined > 10


class TestPreparedStatements:
    def test_prepared_execute_accepts_limits(self, db):
        statement = db.prepare("select a from t where b = ?")
        result = statement.execute([3], timeout=60.0, row_budget=10_000)
        assert result.stats.governed
        with pytest.raises(QueryTimeout):
            statement.execute([3], timeout=0.0)

    def test_prepared_budget_violation_is_per_execution(self, db):
        statement = db.prepare("select a from t")
        with pytest.raises(ResourceExhausted):
            statement.execute(row_budget=10)
        assert len(statement.execute()) == 500  # unharmed afterwards
