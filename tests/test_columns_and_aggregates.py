"""Unit tests for the column identity model and aggregate descriptors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import (AggregateFunction, Column, ColumnSet, DataType,
                           descriptor)


class TestColumn:
    def test_identity_is_by_id_not_name(self):
        a = Column("x", DataType.INTEGER)
        b = Column("x", DataType.INTEGER)
        assert a != b
        assert a == a
        assert len({a, b}) == 2

    def test_fresh_copy_gets_new_id(self):
        a = Column("x", DataType.INTEGER, nullable=False)
        b = a.fresh_copy()
        assert b != a
        assert b.name == "x"
        assert b.dtype is DataType.INTEGER
        assert b.nullable is False

    def test_with_nullability_preserves_identity(self):
        a = Column("x", DataType.INTEGER, nullable=False)
        b = a.with_nullability(True)
        assert a == b
        assert b.nullable is True

    def test_ids_monotonically_increase(self):
        a = Column("a", DataType.INTEGER)
        b = Column("b", DataType.INTEGER)
        assert b.cid > a.cid


class TestColumnSet:
    def test_set_algebra(self):
        a, b, c = (Column(n, DataType.INTEGER) for n in "abc")
        s1 = ColumnSet.of(a, b)
        s2 = ColumnSet.of(b, c)
        assert a in s1 and c not in s1
        assert set(s1.union(s2).ids()) == {a.cid, b.cid, c.cid}
        assert set(s1.intersection(s2).ids()) == {b.cid}
        assert set(s1.difference(s2).ids()) == {a.cid}
        assert s1.issubset(s1.union(s2))
        assert not s1.isdisjoint(s2)
        assert ColumnSet.of(a).isdisjoint(ColumnSet.of(c))

    def test_equality_and_hash(self):
        a, b = Column("a", DataType.INTEGER), Column("b", DataType.INTEGER)
        assert ColumnSet.of(a, b) == ColumnSet.of(b, a)
        assert hash(ColumnSet.of(a, b)) == hash(ColumnSet.of(b, a))

    def test_empty_set_falsy(self):
        assert not ColumnSet()
        assert ColumnSet.of(Column("a", DataType.INTEGER))


class TestAggregateDescriptors:
    def test_values_on_empty(self):
        assert descriptor(AggregateFunction.SUM).value_on_empty is None
        assert descriptor(AggregateFunction.COUNT).value_on_empty == 0
        assert descriptor(AggregateFunction.COUNT_STAR).value_on_empty == 0
        assert descriptor(AggregateFunction.MIN).value_on_empty is None
        assert descriptor(AggregateFunction.AVG).value_on_empty is None

    def test_identity9_condition(self):
        """agg(empty) == agg({NULL}) holds for all SQL aggregates except
        count(*), which is exactly the paper's F -> F' substitution rule."""
        for func in AggregateFunction:
            d = descriptor(func)
            expected = func is not AggregateFunction.COUNT_STAR
            assert d.empty_equals_single_null is expected

    def test_fold_sum(self):
        d = descriptor(AggregateFunction.SUM)
        state = d.initial()
        assert d.final(state) is None  # empty input
        for v in (1, None, 2):
            state = d.step(state, v)
        assert d.final(state) == 3

    def test_fold_count_ignores_nulls(self):
        d = descriptor(AggregateFunction.COUNT)
        state = d.initial()
        for v in (1, None, 2, None):
            state = d.step(state, v)
        assert d.final(state) == 2

    def test_fold_count_star_counts_everything(self):
        d = descriptor(AggregateFunction.COUNT_STAR)
        state = d.initial()
        for v in (1, None, None):
            state = d.step(state, v)
        assert d.final(state) == 3

    def test_fold_avg(self):
        d = descriptor(AggregateFunction.AVG)
        state = d.initial()
        assert d.final(state) is None
        for v in (2, 4, None):
            state = d.step(state, v)
        assert d.final(state) == 3.0

    def test_fold_min_max_all_null(self):
        for func in (AggregateFunction.MIN, AggregateFunction.MAX):
            d = descriptor(func)
            state = d.initial()
            state = d.step(state, None)
            assert d.final(state) is None

    @given(st.lists(st.one_of(st.none(), st.integers(-100, 100)), max_size=30),
           st.integers(0, 30))
    def test_merge_equals_sequential(self, values, split_at):
        """Partial-state merge must agree with a single sequential fold for
        every aggregate — the property behind local/global splitting."""
        split_at = min(split_at, len(values))
        first, second = values[:split_at], values[split_at:]
        for func in AggregateFunction:
            d = descriptor(func)
            sequential = d.initial()
            for v in values:
                sequential = d.step(sequential, v)
            s1 = d.initial()
            for v in first:
                s1 = d.step(s1, v)
            s2 = d.initial()
            for v in second:
                s2 = d.step(s2, v)
            assert d.final(d.merge(s1, s2)) == d.final(sequential)

    @given(st.lists(st.one_of(st.none(), st.integers(-50, 50)),
                    min_size=1, max_size=30),
           st.integers(1, 5))
    def test_split_roundtrip(self, values, parts):
        """f(∪ Si) == f_g(∪ f_l(Si)) for every splittable aggregate —
        the defining equation of Section 3.3."""
        chunks = [values[i::parts] for i in range(parts)]
        chunks = [c for c in chunks if c]
        for func in AggregateFunction:
            d = descriptor(func)
            assert d.splittable
            split = d.split

            # Compute local aggregates per chunk.
            local_results = []
            for chunk in chunks:
                row = []
                for part in split.local:
                    ld = descriptor(part.func)
                    state = ld.initial()
                    for v in chunk:
                        state = ld.step(state, v)
                    row.append(ld.final(state))
                local_results.append(row)

            # Combine with global aggregates.
            finals = {}
            for position, part in enumerate(split.global_):
                gd = descriptor(part.func)
                state = gd.initial()
                for row in local_results:
                    state = gd.step(state, row[position])
                finals[part.role] = gd.final(state)

            if split.finalizer is None:
                combined = finals[split.global_[0].role]
            elif split.finalizer == "sum/count":
                combined = (None if not finals["count"]
                            else finals["sum"] / finals["count"])
            else:  # pragma: no cover - no other finalizers exist
                raise AssertionError(split.finalizer)

            direct_state = d.initial()
            for v in values:
                direct_state = d.step(direct_state, v)
            assert combined == d.final(direct_state)

    def test_unsplittable_distinct_handled_by_caller(self):
        # distinct is a property of the call, not the descriptor; descriptors
        # themselves are always splittable.
        d = descriptor(AggregateFunction.SUM)
        assert d.splittable
