"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse, tokenize
from repro.sql.lexer import TokenType


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("select a, b from t where a >= 1.5")
        kinds = [t.type for t in tokens]
        assert kinds[0] is TokenType.KEYWORD
        assert tokens[-1].type is TokenType.EOF
        values = [t.value for t in tokens[:-1]]
        assert values == ["select", "a", ",", "b", "from", "t",
                          "where", "a", ">=", "1.5"]

    def test_string_escaping(self):
        tokens = tokenize("select 'it''s'")
        assert tokens[1].value == "it's"

    def test_case_insensitive_keywords_and_idents(self):
        tokens = tokenize("SELECT Foo FROM Bar")
        assert tokens[0].value == "select"
        assert tokens[1].value == "foo"

    def test_line_comments(self):
        tokens = tokenize("select a -- comment\nfrom t")
        values = [t.value for t in tokens[:-1]]
        assert values == ["select", "a", "from", "t"]

    def test_not_equal_variants(self):
        assert tokenize("a <> b")[1].value == "<>"
        assert tokenize("a != b")[1].value == "<>"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select 'oops")

    def test_position_tracking(self):
        tokens = tokenize("select\n  a")
        a = tokens[1]
        assert a.line == 2 and a.column == 3

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @x")


class TestParserBasics:
    def test_simple_select(self):
        q = parse("select a, b as bee from t")
        assert isinstance(q, ast.SelectStatement)
        assert q.select_items[0].expr == ast.Identifier(("a",))
        assert q.select_items[1].alias == "bee"
        assert q.from_items == (ast.TableRef("t"),)

    def test_select_star_and_qualified_star(self):
        q = parse("select *, t.* from t")
        assert q.select_items[0].expr == ast.Star()
        assert q.select_items[1].expr == ast.Star("t")

    def test_aliases_with_and_without_as(self):
        q = parse("select a from t as x, u y")
        assert q.from_items[0].alias == "x"
        assert q.from_items[1].alias == "y"

    def test_where_group_having_order_limit(self):
        q = parse("select a, count(*) from t where b = 1 group by a "
                  "having count(*) > 2 order by a desc limit 7")
        assert q.where is not None
        assert q.group_by == (ast.Identifier(("a",)),)
        assert q.having is not None
        assert q.order_by[0].ascending is False
        assert q.limit == 7

    def test_distinct(self):
        assert parse("select distinct a from t").distinct

    def test_operator_precedence(self):
        q = parse("select a + b * c from t")
        expr = q.select_items[0].expr
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        q = parse("select 1 from t where a = 1 or b = 2 and c = 3")
        expr = q.where
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not_precedence(self):
        q = parse("select 1 from t where not a = 1 and b = 2")
        assert q.where.op == "and"
        assert isinstance(q.where.left, ast.UnaryOp)

    def test_parenthesized_expression(self):
        q = parse("select (a + b) * c from t")
        expr = q.select_items[0].expr
        assert expr.op == "*"

    def test_unary_minus(self):
        q = parse("select -a from t")
        assert isinstance(q.select_items[0].expr, ast.UnaryOp)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select a from t where a = 1 2")

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse("select a from t limit 1.5")


class TestJoins:
    def test_inner_join(self):
        q = parse("select 1 from a join b on a.x = b.y")
        join = q.from_items[0]
        assert isinstance(join, ast.JoinExpr) and join.kind == "inner"

    def test_left_outer_join(self):
        q = parse("select 1 from a left outer join b on a.x = b.y")
        assert q.from_items[0].kind == "left"
        q2 = parse("select 1 from a left join b on a.x = b.y")
        assert q2.from_items[0].kind == "left"

    def test_cross_join(self):
        q = parse("select 1 from a cross join b")
        assert q.from_items[0].kind == "cross"
        assert q.from_items[0].condition is None

    def test_right_join_rejected_with_hint(self):
        with pytest.raises(SqlSyntaxError, match="LEFT OUTER"):
            parse("select 1 from a right join b on a.x = b.y")

    def test_join_chains_left_associative(self):
        q = parse("select 1 from a join b on a.x = b.x join c on b.y = c.y")
        outer = q.from_items[0]
        assert isinstance(outer.left, ast.JoinExpr)
        assert isinstance(outer.right, ast.TableRef)

    def test_comma_separated_tables(self):
        q = parse("select 1 from a, b, c")
        assert len(q.from_items) == 3

    def test_derived_table(self):
        q = parse("select x from (select a as x from t) as d")
        derived = q.from_items[0]
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "d"

    def test_derived_table_with_column_aliases(self):
        q = parse("select x from (select a from t) as d (x)")
        assert q.from_items[0].column_aliases == ("x",)

    def test_derived_table_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse("select 1 from (select a from t)")


class TestSubqueries:
    def test_scalar_subquery(self):
        q = parse("select (select max(a) from t) from u")
        assert isinstance(q.select_items[0].expr, ast.SubqueryExpr)

    def test_exists(self):
        q = parse("select 1 from t where exists (select 1 from u)")
        assert isinstance(q.where, ast.ExistsExpr)

    def test_not_exists(self):
        q = parse("select 1 from t where not exists (select 1 from u)")
        assert isinstance(q.where, ast.UnaryOp)
        assert isinstance(q.where.operand, ast.ExistsExpr)

    def test_in_subquery_and_list(self):
        q = parse("select 1 from t where a in (select b from u)")
        assert q.where.subquery is not None
        q2 = parse("select 1 from t where a in (1, 2, 3)")
        assert len(q2.where.values) == 3

    def test_not_in(self):
        q = parse("select 1 from t where a not in (select b from u)")
        assert q.where.negated

    def test_quantified(self):
        q = parse("select 1 from t where a > all (select b from u)")
        assert isinstance(q.where, ast.QuantifiedExpr)
        assert q.where.quantifier == "ALL"
        q2 = parse("select 1 from t where a = some (select b from u)")
        assert q2.where.quantifier == "ANY"

    def test_in_subquery_wrapped_in_parens(self):
        q = parse("select 1 from t where a in ((select b from u))")
        assert q.where.subquery is not None


class TestLiteralsAndPredicates:
    def test_date_literal(self):
        q = parse("select 1 from t where d >= date '1994-01-01'")
        assert isinstance(q.where.right, ast.DateLiteral)

    def test_invalid_date_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select date '1994-13-40'")

    def test_interval_literal(self):
        q = parse("select date '1994-01-01' + interval '3' month")
        expr = q.select_items[0].expr
        assert expr.right == ast.IntervalLiteral(3, "month")

    def test_between(self):
        q = parse("select 1 from t where a between 1 and 10")
        assert isinstance(q.where, ast.BetweenExpr)
        q2 = parse("select 1 from t where a not between 1 and 10")
        assert q2.where.negated

    def test_like(self):
        q = parse("select 1 from t where name like 'x%'")
        assert isinstance(q.where, ast.LikeExpr)
        q2 = parse("select 1 from t where name not like 'x%'")
        assert q2.where.negated

    def test_is_null(self):
        q = parse("select 1 from t where a is null")
        assert isinstance(q.where, ast.IsNullExpr) and not q.where.negated
        q2 = parse("select 1 from t where a is not null")
        assert q2.where.negated

    def test_null_true_false(self):
        q = parse("select null, true, false")
        assert isinstance(q.select_items[0].expr, ast.NullLiteral)
        assert q.select_items[1].expr == ast.BooleanLiteral(True)

    def test_case_expression(self):
        q = parse("select case when a = 1 then 'x' when a = 2 then 'y' "
                  "else 'z' end from t")
        case = q.select_items[0].expr
        assert isinstance(case, ast.CaseExpr)
        assert len(case.whens) == 2
        assert case.otherwise == ast.StringLiteral("z")

    def test_simple_case_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select case a when 1 then 'x' end from t")

    def test_extract(self):
        q = parse("select extract(year from d) from t")
        expr = q.select_items[0].expr
        assert isinstance(expr, ast.ExtractExpr)
        assert expr.part == "year"
        for part in ("month", "day"):
            parse(f"select extract({part} from d) from t")

    def test_extract_invalid_part(self):
        with pytest.raises(SqlSyntaxError, match="YEAR"):
            parse("select extract(hour from d) from t")

    def test_extract_in_predicate_and_group(self):
        q = parse("select extract(year from d), count(*) from t "
                  "group by extract(year from d)")
        assert isinstance(q.group_by[0], ast.ExtractExpr)


class TestAggregates:
    def test_count_star(self):
        q = parse("select count(*) from t")
        call = q.select_items[0].expr
        assert call.name == "count"
        assert call.args == (ast.Star(),)

    def test_count_distinct(self):
        q = parse("select count(distinct a) from t")
        assert q.select_items[0].expr.distinct

    def test_all_five(self):
        q = parse("select count(a), sum(a), avg(a), min(a), max(a) from t")
        names = [item.expr.name for item in q.select_items]
        assert names == ["count", "sum", "avg", "min", "max"]


class TestUnion:
    def test_union_all(self):
        q = parse("select a from t union all select b from u")
        assert isinstance(q, ast.UnionStatement)

    def test_union_all_chain(self):
        q = parse("select 1 union all select 2 union all select 3")
        assert isinstance(q.left, ast.UnionStatement)

    def test_plain_union_rejected_with_hint(self):
        with pytest.raises(SqlSyntaxError, match="UNION ALL"):
            parse("select a from t union select b from u")

    def test_union_in_derived_table(self):
        q = parse("select x from (select a from t union all "
                  "select b from u) as v (x)")
        assert isinstance(q.from_items[0].subquery, ast.UnionStatement)
