"""Crash-recovery chaos: kill at every durability fault site and reopen.

The harness runs a fixed workload of numbered transactions against a
durable database while exactly one fault is armed, then "crashes" (closes
the handles without checkpointing) and recovers into a fresh ``Database``.
Every schedule must satisfy the committed-prefix contract:

    committed  ⊆  recovered  ⊆  committed ∪ maybe

where *committed* are the transactions that reported success, and
*maybe* are those that failed inside the commit-outcome-unknown window —
after their record reached the log (``wal.fsync``, ``snapshot.install``)
the commit is durable even though the caller saw an error, which is the
honest contract of any WAL (the fsync response was lost, not the write).
Transactions that failed before a complete record existed (``wal.append``,
plain or torn) must be absent.  In *every* case a transaction is
recovered atomically: all of its rows or none of them.
"""

from __future__ import annotations

import pytest

from repro import Database, DataType, InjectedFault
from repro import faultinject
from repro.durability import CHECKPOINT_FILENAME, WAL_FILENAME

#: Fault sites on the commit path and their recovery contract:
#: ``absent`` — the transaction must not survive; ``maybe`` — it may
#: legally resurrect (record durable, failure reported after the fact).
COMMIT_SITES = {
    "wal.append": "absent",
    "wal.fsync": "maybe",
    "snapshot.install": "maybe",
}

TXN_COUNT = 6


def txn_rows(i):
    """Two rows per transaction, so atomicity is observable."""
    return [(100 * i, f"txn-{i}-a"), (100 * i + 1, f"txn-{i}-b")]


def make_db(path, **kwargs):
    db = Database(path=str(path), **kwargs)
    if not db.catalog.has_table("t"):
        db.create_table("t", [("id", DataType.INTEGER),
                              ("name", DataType.VARCHAR)],
                        primary_key=["id"])
    return db


def run_workload(db):
    """TXN_COUNT transactions, alternating autocommit and session commit.

    Returns ``(committed, failed)`` transaction-number lists based purely
    on what the API reported.
    """
    committed, failed = [], []
    for i in range(1, TXN_COUNT + 1):
        try:
            if i % 2:
                db.insert("t", txn_rows(i))
            else:
                session = db.session()
                try:
                    session.begin()
                    session.insert("t", txn_rows(i))
                    session.commit()
                finally:
                    session.close()
        except InjectedFault:
            failed.append(i)
        else:
            committed.append(i)
    return committed, failed


def recovered_txns(db):
    """Transaction numbers present after recovery, asserting per-txn
    atomicity along the way."""
    ids = {r[0] for r in db.execute("select id from t").rows}
    present = []
    for i in range(1, TXN_COUNT + 1):
        wanted = {r[0] for r in txn_rows(i)}
        got = ids & wanted
        assert got in (set(), wanted), (
            f"transaction {i} recovered partially: {sorted(got)}")
        if got:
            present.append(i)
    return present


class TestCommitCrashSchedules:
    @pytest.mark.parametrize("site", sorted(COMMIT_SITES))
    @pytest.mark.parametrize("nth", range(1, TXN_COUNT + 1))
    def test_crash_at_every_commit(self, tmp_path, site, nth):
        db = make_db(tmp_path)
        with faultinject.fail_at(site, n=nth):
            committed, failed = run_workload(db)
        db.close()  # crash: no checkpoint, recovery does all the work

        reopened = make_db(tmp_path)
        recovered = recovered_txns(reopened)
        maybe = failed if COMMIT_SITES[site] == "maybe" else []
        assert set(committed) <= set(recovered), (
            f"{site}: committed transaction lost")
        assert set(recovered) <= set(committed) | set(maybe), (
            f"{site}: phantom transaction resurrected")
        # The database stays writable after recovery.
        reopened.insert("t", [(9999, "after")])
        reopened.close()

    @pytest.mark.parametrize("nth", range(1, TXN_COUNT + 1))
    def test_torn_write_at_every_commit(self, tmp_path, nth):
        """A torn ``wal.append`` persists half the record; recovery must
        truncate it and the transaction must be gone."""
        db = make_db(tmp_path)
        with faultinject.fail_at("wal.append", n=nth, torn=True):
            committed, failed = run_workload(db)
        db.close()
        assert len(failed) == 1

        reopened = make_db(tmp_path)
        recovered = recovered_txns(reopened)
        assert set(recovered) == set(committed)
        report = reopened.durability_status()["recovery"]
        if nth == TXN_COUNT:
            # The torn bytes were the last thing written: recovery
            # truncates them.
            assert report["truncated_bytes"] > 0
        else:
            # A later append already healed the file back to the good
            # boundary, so recovery finds a clean log.
            assert report["truncated_bytes"] == 0
        # The log is whole again: the next reopen truncates nothing.
        reopened.insert("t", [(9999, "after")])
        reopened.close()
        final = make_db(tmp_path)
        assert final.durability_status()[
            "recovery"]["truncated_bytes"] == 0
        final.close()


class TestDdlCrashSchedules:
    def test_ddl_fault_applies_nothing(self, tmp_path):
        db = make_db(tmp_path)
        with faultinject.fail_at("wal.append", n=1):
            with pytest.raises(InjectedFault):
                db.create_table("u", [("x", DataType.INTEGER)])
        # Validate-log-apply: the failed DDL left no in-memory trace.
        assert db.table_names() == ["t"]
        db.insert("t", txn_rows(1))
        db.close()
        reopened = make_db(tmp_path)
        assert reopened.table_names() == ["t"]
        assert recovered_txns(reopened) == [1]
        reopened.close()

    def test_torn_ddl_record_truncated(self, tmp_path):
        db = make_db(tmp_path)
        db.insert("t", txn_rows(1))
        with faultinject.fail_at("wal.append", n=1, torn=True):
            with pytest.raises(InjectedFault):
                db.create_view("v", "select id from t")
        db.close()
        reopened = make_db(tmp_path)
        assert not reopened.catalog.has_view("v")
        assert recovered_txns(reopened) == [1]
        reopened.close()


class TestCheckpointCrashSchedules:
    def test_checkpoint_fault_never_corrupts_existing_state(self, tmp_path):
        db = make_db(tmp_path)
        db.insert("t", txn_rows(1))
        assert db.checkpoint() is True  # a valid checkpoint exists
        db.insert("t", txn_rows(2))
        old_checkpoint = (tmp_path / CHECKPOINT_FILENAME).read_bytes()
        old_wal = (tmp_path / WAL_FILENAME).read_bytes()
        with faultinject.fail_at("wal.checkpoint", n=1):
            with pytest.raises(InjectedFault):
                db.checkpoint()
        # The fault fired before the atomic rename: the previous
        # checkpoint and the intact WAL are still the authoritative pair.
        assert (tmp_path / CHECKPOINT_FILENAME).read_bytes() == \
            old_checkpoint
        assert (tmp_path / WAL_FILENAME).read_bytes() == old_wal
        db.insert("t", txn_rows(3))  # still writable
        db.close()
        reopened = make_db(tmp_path)
        assert recovered_txns(reopened) == [1, 2, 3]
        reopened.close()

    def test_size_triggered_checkpoint_fault_never_fails_commits(
            self, tmp_path):
        """With the rotation permanently failing, every commit still
        succeeds and recovery still sees all of them (the WAL just
        keeps growing)."""
        db = make_db(tmp_path, checkpoint_bytes=128)
        baseline = db.durability_status()["last_checkpoint_lsn"]
        with faultinject.fail_always("wal.checkpoint"):
            committed, failed = run_workload(db)
        assert failed == []
        # No rotation landed while the fault was armed.
        assert db.durability_status()["last_checkpoint_lsn"] == baseline
        db.close()
        reopened = make_db(tmp_path)
        assert recovered_txns(reopened) == committed
        reopened.close()


class TestRecoveryCrashSchedules:
    @pytest.mark.parametrize("nth", range(1, TXN_COUNT + 1))
    def test_crash_during_replay_then_clean_retry(self, tmp_path, nth):
        db = make_db(tmp_path)
        committed, _failed = run_workload(db)
        db.close()
        with faultinject.fail_at("recovery.replay", n=nth):
            with pytest.raises(InjectedFault):
                Database(path=str(tmp_path))
        # Recovery is read-only until it succeeds: a clean retry sees
        # the complete committed state.
        reopened = make_db(tmp_path)
        assert recovered_txns(reopened) == committed
        reopened.close()

    def test_double_crash_torn_then_replay_fault(self, tmp_path):
        """Crash while recovering from a crash: the second recovery must
        still land on the committed prefix."""
        db = make_db(tmp_path)
        with faultinject.fail_at("wal.append", n=3, torn=True):
            committed, _failed = run_workload(db)
        db.close()
        with faultinject.fail_at("recovery.replay", n=1):
            with pytest.raises(InjectedFault):
                Database(path=str(tmp_path))
        reopened = make_db(tmp_path)
        assert recovered_txns(reopened) == committed
        reopened.close()


class TestMultiTableAtomicity:
    @pytest.mark.parametrize("site", sorted(COMMIT_SITES))
    def test_cross_table_commit_is_atomic(self, tmp_path, site):
        db = make_db(tmp_path)
        db.create_table("u", [("id", DataType.INTEGER)],
                        primary_key=["id"])
        session = db.session()
        with faultinject.fail_at(site, n=1):
            session.begin()
            session.insert("t", [(1, "a")])
            session.insert("u", [(1,)])
            failed = False
            try:
                session.commit()
            except InjectedFault:
                failed = True
        session.close()
        assert failed
        db.close()
        reopened = make_db(tmp_path)
        t_rows = len(reopened.execute("select id from t").rows)
        u_rows = len(reopened.execute("select id from u").rows)
        # One commit record covers both tables: both or neither.
        assert (t_rows, u_rows) in {(0, 0), (1, 1)}, (
            f"{site}: cross-table commit recovered partially")
        if COMMIT_SITES[site] == "absent":
            assert (t_rows, u_rows) == (0, 0)
        reopened.close()
