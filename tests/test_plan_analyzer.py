"""Static plan analyzer: invariants, rule legality checks, blame reports,
plan fingerprints, and the strictness-mode plumbing.

The property-style classes push randomized valid queries through the
paper's rewrite machinery — the Section 2.3 identities (1)–(9) via
``normalize``/``remove_applies``, the Section 3 GroupBy-reordering rules
via direct rule application — and assert the analyzer's invariants hold
on every output.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FULL, Database, DataType
from repro.algebra import (AggregateCall, AggregateFunction, Column,
                           ColumnRef, Comparison, GroupBy, Join, JoinKind,
                           Literal, Project, Select, SegmentRef, equals,
                           plan_fingerprint)
from repro.analysis import (PlanAnalysisWarning, PlanAnalyzer, RULE_CHECKS,
                            STRICT, WARN, verify_logical,
                            verify_oj_simplification, verify_physical)
from repro.core.normalize import normalize
from repro.core.normalize.oj_simplify import simplify_outerjoins
from repro.core.optimizer.rules import (GroupByPullAboveJoin,
                                        GroupByPushBelowJoin,
                                        SemiJoinGroupByReorder,
                                        SemiJoinToJoinDistinct)
from repro.errors import PlanInvariantError
from repro.physical.plan import PFilter, PIndexSeek, PTableScan
from repro.sql import parse

from .helpers import customer_scan, orders_scan

REORDER_RULES = [GroupByPushBelowJoin(), GroupByPullAboveJoin(),
                 SemiJoinGroupByReorder(), SemiJoinToJoinDistinct()]


def codes(issues):
    return {issue.code for issue in issues}


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("id", DataType.INTEGER, False),
                                ("a", DataType.INTEGER, True),
                                ("b", DataType.INTEGER, True)],
                          primary_key=("id",))
    database.create_table("u", [("id", DataType.INTEGER, False),
                                ("c", DataType.INTEGER, True),
                                ("d", DataType.INTEGER, True)],
                          primary_key=("id",))
    database.insert("t", [(i, i % 3, i % 5) for i in range(30)])
    database.insert("u", [(i, i % 4, i % 7) for i in range(20)])
    return database


# ---------------------------------------------------------------------------
# Logical invariants on constructed trees
# ---------------------------------------------------------------------------

class TestLogicalInvariants:
    def test_valid_tree_is_clean(self):
        cust, (ck, cn, cnk) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        tree = Select(Join(JoinKind.INNER, cust, orders, equals(ock, ck)),
                      Comparison("<", ColumnRef(price), Literal(10.0)))
        assert verify_logical(tree) == []

    def test_unresolved_column_reference(self):
        cust, _ = customer_scan()
        _, (_, _, price) = orders_scan()
        tree = Select(cust, Comparison("<", ColumnRef(price),
                                       Literal(10.0)))
        assert "columns.unresolved" in codes(verify_logical(tree))

    def test_duplicate_output_schema(self):
        cust, (ck, cn, _) = customer_scan()
        tree = Project(cust, [(ck, ColumnRef(ck)),
                              (cn, ColumnRef(ck)),
                              (cn, ColumnRef(ck))])
        assert "schema.duplicate" in codes(verify_logical(tree))

    def test_shadowed_column(self):
        cust, (ck, cn, _) = customer_scan()
        # Reuses the child's c_name identity for a computed value.
        tree = Project.extend(cust, [(cn, ColumnRef(ck))])
        assert "columns.shadowed" in codes(verify_logical(tree))

    def test_correlated_join_input_flagged(self):
        _, (ck, _, _) = customer_scan()
        orders, (ok, ock, _) = orders_scan()
        correlated_right = Select(orders, equals(ock, ck))
        bad = Join(JoinKind.INNER, orders_scan()[0], correlated_right,
                   None)
        assert "scope.correlated-join-input" in codes(verify_logical(bad))

    def test_unbound_segment_ref(self):
        _, (ck, cn, cnk) = customer_scan()
        mirrors = [c.fresh_copy() for c in (ck, cn, cnk)]
        assert "segment.unbound-ref" in codes(
            verify_logical(SegmentRef(mirrors)))

    def test_free_columns_allowed_through_env(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, _) = orders_scan()
        correlated = Select(orders, equals(ock, ck))
        assert verify_logical(correlated) != []
        assert verify_logical(correlated,
                              env=frozenset({ck.cid})) == []


class TestPipelineStages:
    def test_bound_tree_with_subqueries_is_clean(self, db):
        sql = ("select a from t where b < "
               "(select max(u.d) from u where u.c = t.a)")
        bound = db._binder.bind(parse(sql))
        assert verify_logical(bound.rel, allow_subqueries=True) == []
        assert "subquery.residual" in codes(verify_logical(bound.rel))

    def test_normalized_tree_is_clean_and_subquery_free(self, db):
        sql = ("select a from t where exists "
               "(select * from u where u.c = t.a)")
        bound = db._binder.bind(parse(sql))
        assert verify_logical(normalize(bound.rel)) == []


# ---------------------------------------------------------------------------
# Physical invariants
# ---------------------------------------------------------------------------

class TestPhysicalInvariants:
    def test_optimized_plan_is_clean(self, db):
        plan = db.plan("select a, count(*) from t, u where a = c group by a")
        assert verify_physical(
            plan, index_provider=db._index_provider) == []

    def test_filter_over_unknown_column_flagged(self):
        cust, (ck, cn, cnk) = customer_scan()
        _, (_, _, price) = orders_scan()
        scan = PTableScan("customer", [ck, cn, cnk])
        bad = PFilter(scan, Comparison("<", ColumnRef(price),
                                       Literal(10.0)))
        assert "columns.unresolved" in codes(verify_physical(bad))

    def test_index_seek_key_arity(self):
        _, (ck, cn, cnk) = customer_scan()
        seek = PIndexSeek("customer", [ck, cn, cnk], [ck],
                          [Literal(1), Literal(2)])
        assert "index.key-arity" in codes(verify_physical(seek))

    def test_index_seek_against_catalog(self):
        _, (ck, cn, cnk) = customer_scan()
        seek = PIndexSeek("customer", [ck, cn, cnk], [cnk], [Literal(1)])

        def provider(table_name):
            return [("c_custkey",)]

        assert "index.no-such-index" in codes(
            verify_physical(seek, index_provider=provider))
        assert "index.no-such-index" not in codes(verify_physical(seek))


# ---------------------------------------------------------------------------
# Outerjoin-simplification lockstep
# ---------------------------------------------------------------------------

class TestOjLockstep:
    def build(self, null_rejecting: bool):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        predicate = Comparison("<", ColumnRef(price), Literal(10.0)) \
            if null_rejecting else equals(ck, Literal(1))
        return Select(loj, predicate)

    def test_justified_simplification_is_clean(self):
        before = self.build(null_rejecting=True)
        after = simplify_outerjoins(before)
        joins = [n for n in [after.child] if isinstance(n, Join)]
        assert joins and joins[0].kind is JoinKind.INNER
        assert verify_oj_simplification(before, after) == []

    def test_unjustified_flip_is_flagged(self):
        before = self.build(null_rejecting=False)
        loj = before.child
        forged = Select(Join(JoinKind.INNER, loj.left, loj.right,
                             loj.predicate), before.predicate)
        assert "oj.unjustified-simplification" in codes(
            verify_oj_simplification(before, forged))

    def test_shape_change_is_flagged(self):
        before = self.build(null_rejecting=True)
        assert "oj.shape-changed" in codes(
            verify_oj_simplification(before, before.child))


# ---------------------------------------------------------------------------
# Rule-application validation and blame
# ---------------------------------------------------------------------------

def groupby_over_join():
    """GroupBy(Join(orders, customer)) grouping on the customer key —
    admissible for pushdown (c_custkey is a key of the preserved side)."""
    cust, (ck, cn, cnk) = customer_scan()
    orders, (ok, ock, price) = orders_scan()
    total = Column("total", DataType.FLOAT)
    join = Join(JoinKind.INNER, orders, cust, equals(ock, ck))
    gb = GroupBy(join, [ck], [(total, AggregateCall(
        AggregateFunction.SUM, ColumnRef(price)))])
    return gb


class TestRuleApplicationChecks:
    def test_clean_application_passes(self):
        gb = groupby_over_join()
        analyzer = PlanAnalyzer(STRICT)
        applied = GroupByPushBelowJoin().apply(gb, memo=None)
        assert applied
        for result in applied:
            assert analyzer.check_rule_application(
                "groupby_push_below_join", gb, result) == []

    def test_broken_result_raises_with_blame(self):
        gb = groupby_over_join()
        stray = Column("stray", DataType.INTEGER)
        broken = Select(gb, equals(stray, Literal(1)))
        analyzer = PlanAnalyzer(STRICT)
        with pytest.raises(PlanInvariantError) as excinfo:
            analyzer.check_rule_application("groupby_push_below_join",
                                            gb, broken)
        message = str(excinfo.value)
        assert "groupby_push_below_join" in message
        assert "turned valid tree" in message
        assert plan_fingerprint(gb) in message
        assert excinfo.value.blame is not None

    def test_schema_change_is_flagged(self):
        gb = groupby_over_join()
        truncated = Project(gb, [(gb.group_columns[0],
                                  ColumnRef(gb.group_columns[0]))])
        analyzer = PlanAnalyzer(WARN)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PlanAnalysisWarning)
            issues = analyzer.check_rule_application(
                "rule_under_test", gb, truncated)
        assert "rule.schema-changed" in codes(issues)

    def test_semantic_condition_reverified(self):
        # A forged "pushdown" grouping on a non-key column must trip the
        # Section 3 key-containment re-check even though the tree itself
        # is structurally sound.
        cust, (ck, cn, cnk) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        join = Join(JoinKind.INNER, orders, cust, equals(ock, cnk))
        gb = GroupBy(join, [cnk], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        inner = GroupBy(orders, [ock], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        forged = Join(JoinKind.INNER, inner, cust, equals(ock, cnk))
        issues = RULE_CHECKS["groupby_push_below_join"](gb, forged)
        assert "groupby.push-no-key" in codes(issues)

    def test_deliberately_broken_rule_caught_end_to_end(self, db,
                                                        monkeypatch):
        """A rule that drops the join predicate is caught at application
        time, with a blame report naming it."""
        from repro.core.optimizer import optimizer as optimizer_module
        from repro.core.optimizer.rules import Rule

        class BrokenRule(Rule):
            name = "test_broken_rule"

            def apply(self, op, memo):
                if isinstance(op, Join) and op.kind is JoinKind.INNER:
                    stray = Column("stray", DataType.INTEGER)
                    return [Join(op.kind, op.left, op.right,
                                 equals(stray, Literal(1)))]
                return []

        monkeypatch.setenv("REPRO_ANALYZE", "strict")
        monkeypatch.setattr(optimizer_module, "DEFAULT_RULES",
                            list(optimizer_module.DEFAULT_RULES)
                            + [BrokenRule()])
        sql = "select a from t, u where a = c"
        with pytest.raises(PlanInvariantError) as excinfo:
            db._optimizer(FULL).optimize(
                normalize(db._binder.bind(parse(sql)).rel))
        message = str(excinfo.value)
        assert "test_broken_rule" in message
        assert "columns.unresolved" in message
        assert "turned valid tree" in message


# ---------------------------------------------------------------------------
# Fingerprints (stable plan hashing)
# ---------------------------------------------------------------------------

class TestPlanFingerprint:
    def test_identical_shape_different_ids_same_fingerprint(self):
        first = groupby_over_join()
        second = groupby_over_join()  # same shape, fresh column ids
        assert first.output_columns()[0].cid != \
            second.output_columns()[0].cid
        assert plan_fingerprint(first) == plan_fingerprint(second)

    def test_different_plans_differ(self):
        gb = groupby_over_join()
        assert plan_fingerprint(gb) != plan_fingerprint(gb.child)

    def test_recompilation_is_deterministic(self, db):
        sql = ("select a, count(*) from t where exists "
               "(select * from u where u.c = t.a) group by a")
        first = plan_fingerprint(db.plan(sql))
        db.plan_cache.invalidate()
        second = plan_fingerprint(db.plan(sql))
        assert first == second

    def test_syntax_independent_golden_plan(self, db):
        spellings = [
            "select a from t where a in (select c from u)",
            "SELECT a FROM t WHERE a IN (SELECT c FROM u)",
        ]
        prints = {plan_fingerprint(db.plan(sql)) for sql in spellings}
        assert len(prints) == 1


# ---------------------------------------------------------------------------
# Regression: SegmentApply construction (found by the analyzer)
# ---------------------------------------------------------------------------

class TestSegmentApplyRegression:
    def test_inner_join_sides_are_disjoint(self, db):
        """_build_segment_apply used to hand the aggregated instance the
        same column identities the left SegmentRef delivers, duplicating
        them in the inner join's output."""
        db.create_index("u_c_idx", "u", ["c"])
        sql = ("select t.a from t, u where t.a = u.c and u.d < "
               "(select 2 * avg(u2.d) from u u2 where u2.c = u.c)")
        plan = db.plan(sql)
        assert verify_physical(
            plan, index_provider=db._index_provider) == []
        bound = db._binder.bind(parse(sql))
        from repro.core.optimizer import segment_alternatives
        for variant in segment_alternatives(normalize(bound.rel)):
            assert verify_logical(variant) == []


# ---------------------------------------------------------------------------
# Property-style: identities (1)-(9) and GroupBy reordering preserve the
# invariants on randomized valid inputs
# ---------------------------------------------------------------------------

op_strategy = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
agg_strategy = st.sampled_from(["sum", "min", "max", "count", "avg"])


@st.composite
def correlated_query(draw):
    """Queries covering the paper's subquery classes: their removal
    exercises every Apply identity the normalizer implements."""
    correlation = draw(st.sampled_from(
        ["u.c = t.a", "u.c < t.b", "u.d = t.b"]))
    inner_extra = draw(st.sampled_from(["", " and u.d > 1"]))
    shape = draw(st.integers(0, 4))
    if shape == 0:
        negated = "not " if draw(st.booleans()) else ""
        predicate = (f"{negated}exists (select * from u where "
                     f"{correlation}{inner_extra})")
    elif shape == 1:
        negated = "not " if draw(st.booleans()) else ""
        predicate = (f"t.a {negated}in (select u.c from u where "
                     f"{correlation}{inner_extra})")
    elif shape == 2:
        agg = draw(agg_strategy)
        arg = "*" if agg == "count" else "u.d"
        predicate = (f"t.b {draw(op_strategy)} (select {agg}({arg}) "
                     f"from u where {correlation}{inner_extra})")
    elif shape == 3:
        quantifier = draw(st.sampled_from(["any", "all"]))
        predicate = (f"t.a {draw(op_strategy)} {quantifier} "
                     f"(select u.c from u where {correlation})")
    else:
        predicate = (f"t.b {draw(op_strategy)} (select u.d from u "
                     f"where u.c = t.a and u.d > 2)")
    grouped = draw(st.booleans())
    if grouped:
        agg = draw(agg_strategy)
        arg = "*" if agg == "count" else "t.b"
        return (f"select t.a, {agg}({arg}) from t where {predicate} "
                f"group by t.a")
    return f"select t.a, t.b from t where {predicate}"


class TestIdentityProperties:
    @settings(max_examples=60, deadline=None)
    @given(sql=correlated_query())
    def test_normalization_preserves_invariants(self, sql):
        db = _shared_db()
        bound = db._binder.bind(parse(sql))
        assert verify_logical(bound.rel, allow_subqueries=True) == []
        normalized = normalize(bound.rel)
        assert verify_logical(normalized) == []

    @settings(max_examples=30, deadline=None)
    @given(sql=correlated_query())
    def test_optimized_plans_preserve_invariants(self, sql):
        db = _shared_db()
        normalized = normalize(db._binder.bind(parse(sql)).rel)
        plan = db._optimizer(FULL).optimize(normalized)
        assert verify_physical(
            plan, index_provider=db._index_provider) == []


@st.composite
def groupby_join_tree(draw):
    """Randomized GroupBy/Join stacks in both reorderable orientations."""
    cust, (ck, cn, cnk) = customer_scan()
    orders, (ok, ock, price) = orders_scan()
    kind = draw(st.sampled_from([JoinKind.INNER, JoinKind.LEFT_OUTER,
                                 JoinKind.LEFT_SEMI, JoinKind.LEFT_ANTI]))
    agg_func = draw(st.sampled_from([AggregateFunction.SUM,
                                     AggregateFunction.MIN,
                                     AggregateFunction.COUNT,
                                     AggregateFunction.AVG]))
    total = Column("total", DataType.FLOAT)
    aggregates = [(total, AggregateCall(agg_func, ColumnRef(price)))]
    if draw(st.booleans()):
        # GroupBy above a join of orders with customer.
        join = Join(kind if kind in (JoinKind.INNER, JoinKind.LEFT_SEMI,
                                     JoinKind.LEFT_ANTI)
                    else JoinKind.INNER, orders, cust, equals(ock, ck))
        group_cols = draw(st.sampled_from([[ock], [ok]])) \
            if join.kind.left_only_output else \
            draw(st.sampled_from([[ck], [ck, ock], [ock]]))
        return GroupBy(join, group_cols, aggregates)
    # Join with a GroupBy input (pull-above / push-semijoin shapes).
    gb = GroupBy(orders, [ock], aggregates)
    if kind.left_only_output:
        return Join(kind, gb, cust, equals(ock, ck))
    return Join(kind, cust, gb, equals(ock, ck))


class TestReorderRuleProperties:
    @settings(max_examples=80, deadline=None)
    @given(tree=groupby_join_tree())
    def test_reorder_rules_preserve_invariants(self, tree):
        analyzer = PlanAnalyzer(STRICT)
        for rule in REORDER_RULES:
            for result in rule.apply(tree, memo=None):
                # Raises PlanInvariantError on any violated invariant or
                # Section 3 side condition.
                assert analyzer.check_rule_application(
                    rule.name, tree, result) == []


_DB_SINGLETON = {}


def _shared_db():
    if "db" not in _DB_SINGLETON:
        database = Database()
        database.create_table("t", [("id", DataType.INTEGER, False),
                                    ("a", DataType.INTEGER, True),
                                    ("b", DataType.INTEGER, True)],
                              primary_key=("id",))
        database.create_table("u", [("id", DataType.INTEGER, False),
                                    ("c", DataType.INTEGER, True),
                                    ("d", DataType.INTEGER, True)],
                              primary_key=("id",))
        database.insert("t", [(i, i % 3, i % 5) for i in range(30)])
        database.insert("u", [(i, i % 4, i % 7) for i in range(20)])
        _DB_SINGLETON["db"] = database
    return _DB_SINGLETON["db"]


# ---------------------------------------------------------------------------
# Cache admission and mode plumbing
# ---------------------------------------------------------------------------

class TestAdmissionGate:
    def test_invalid_entry_is_refused(self, db):
        db.execute("select a from t where b > 1")
        entry = db.plan_cache.entries()[0]
        stray = Column("stray", DataType.INTEGER)
        bad_plan = PFilter(entry.plan, equals(stray, Literal(1)))
        from dataclasses import replace
        forged = replace(entry, sql_key="forged", plan=bad_plan)
        before = len(db.plan_cache)
        db.plan_cache.put(forged)
        assert len(db.plan_cache) == before
        assert db.plan_cache.stats.rejected == 1

    def test_mode_off_disables_checks(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "off")
        assert PlanAnalyzer.for_admission() is None
        assert PlanAnalyzer.for_rules() is None

    def test_warn_mode_does_not_raise(self):
        cust, _ = customer_scan()
        _, (_, _, price) = orders_scan()
        bad = Select(cust, Comparison("<", ColumnRef(price),
                                      Literal(10.0)))
        analyzer = PlanAnalyzer(WARN)
        with pytest.warns(PlanAnalysisWarning):
            issues = analyzer.check_logical(bad, stage="test")
        assert issues

    def test_bad_mode_falls_back_to_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "bananas")
        import repro.analysis.analyzer as mod
        monkeypatch.setattr(mod, "_warned_bad_mode", False)
        with pytest.warns(PlanAnalysisWarning):
            assert mod.analysis_mode() == WARN
