"""Shared fixtures/builders for tests: tiny schemas and operator trees."""

from repro.algebra import (Column, ColumnRef, Comparison, DataType, Get,
                           Literal, equals)


def customer_scan():
    """A Get over a customer(c_custkey PK, c_name, c_nationkey) table."""
    c_custkey = Column("c_custkey", DataType.INTEGER, nullable=False)
    c_name = Column("c_name", DataType.VARCHAR, nullable=False)
    c_nationkey = Column("c_nationkey", DataType.INTEGER, nullable=True)
    get = Get("customer", [c_custkey, c_name, c_nationkey], [[c_custkey]])
    return get, (c_custkey, c_name, c_nationkey)


def orders_scan():
    """A Get over orders(o_orderkey PK, o_custkey, o_totalprice)."""
    o_orderkey = Column("o_orderkey", DataType.INTEGER, nullable=False)
    o_custkey = Column("o_custkey", DataType.INTEGER, nullable=False)
    o_totalprice = Column("o_totalprice", DataType.FLOAT, nullable=False)
    get = Get("orders", [o_orderkey, o_custkey, o_totalprice], [[o_orderkey]])
    return get, (o_orderkey, o_custkey, o_totalprice)
