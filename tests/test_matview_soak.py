"""Concurrency soak for materialized-view maintenance.

Eight threads hammer one database: query threads run Q17-shaped
aggregates (both engines, rewritten through the view whenever it
exists), writer threads churn commits into the base table, and a DDL
thread drops and recreates the view throughout.  Invariants:

* **in-flight**: inside a read-only transaction, the rewritten answer
  must be bit-identical to the base-table answer over the *same pinned
  snapshot* — maintenance installs view versions in the same atomic
  install as their base tables, so no snapshot may ever see them
  disagree;
* **at rest**: after the churn, views-on results equal views-off
  results for every engine, and the incrementally maintained backing
  equals a full recompute.

Run under ``REPRO_RACE=1`` (the CI concurrency-stress job does) to
validate every lock acquisition against the declared hierarchy.
"""

import os
import threading

from repro import Database, DataType, TransactionConflict

THREADS_QUERY = 4
THREADS_WRITE = 3  # + 1 DDL thread = 8 total
STRESS = int(os.environ.get("REPRO_STRESS", "0") or "0")
ROUNDS = (60 if STRESS else 20)

VIEW_SQL = ("SELECT g, h, count(*) AS n, sum(v) AS s, avg(v) AS a "
            "FROM t GROUP BY g, h")

QUERIES = [
    "select g, count(*), sum(v), avg(v) from t group by g order by g",
    "select g, h, count(*), sum(v) from t group by g, h order by g, h",
    "select count(*), sum(v) from t",
    "select g, sum(v) from t where h = 1 group by g order by g",
]


def build_db() -> Database:
    db = Database(plan_cache_shards=4)
    db.create_table("t", [("pk", DataType.INTEGER, False),
                          ("g", DataType.INTEGER, False),
                          ("h", DataType.INTEGER, False),
                          ("v", DataType.INTEGER, True)],
                    primary_key=("pk",))
    db.insert("t", [(i, i % 5, i % 3, None if i % 11 == 0 else i)
                    for i in range(200)])
    db.matviews.create("mv", VIEW_SQL)
    return db


def test_concurrent_maintenance_soak():
    db = build_db()
    errors: list = []
    stop = threading.Event()

    def query_worker(worker_id):
        try:
            for round_no in range(ROUNDS * 2):
                sql = QUERIES[(worker_id + round_no) % len(QUERIES)]
                engine = ("tuple", "vectorized")[round_no % 2]
                # Pin one snapshot: rewritten and base plans must agree
                # exactly on it, mid-churn and mid-DDL alike.
                with db.session(default_engine=engine) as session:
                    session.begin()
                    rewritten = session.execute(sql).rows
                    base = session.execute(
                        sql, use_matviews=False).rows
                    session.rollback()
                assert rewritten == base, (
                    f"snapshot disagreement on {sql!r} ({engine}): "
                    f"{rewritten} != {base}")
        except BaseException as exc:  # noqa: BLE001 - report to main
            errors.append(exc)
            stop.set()

    def write_worker(worker_id):
        try:
            base = (worker_id + 1) * 1_000_000
            for round_no in range(ROUNDS):
                if stop.is_set():
                    return
                rows = [(base + 10 * round_no + j,
                         (worker_id + j) % 5, j % 3,
                         None if j == 2 else worker_id + j)
                        for j in range(4)]
                while True:  # first-committer-wins: retry conflicts
                    try:
                        with db.session() as session:
                            session.begin()
                            session.insert("t", rows)
                            session.commit()
                        break
                    except TransactionConflict:
                        continue
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
            stop.set()

    def ddl_worker():
        try:
            for _ in range(ROUNDS // 2):
                if stop.is_set():
                    return
                db.matviews.drop("mv")
                db.matviews.create("mv", VIEW_SQL)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
            stop.set()

    threads = ([threading.Thread(target=query_worker, args=(i,))
                for i in range(THREADS_QUERY)]
               + [threading.Thread(target=write_worker, args=(i,))
                  for i in range(THREADS_WRITE)]
               + [threading.Thread(target=ddl_worker)])
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "soak thread hung"
    assert not errors, f"soak raised: {errors[0]!r}"

    # At rest: views-on == views-off serially, on both engines, and the
    # maintained backing equals a fresh recompute.
    for sql in QUERIES:
        expected = db.execute(sql, use_matviews=False).rows
        for engine in ("tuple", "vectorized"):
            got = db.execute(sql, engine=engine).rows
            assert got == expected, f"at-rest disagreement on {sql!r}"
    maintained = sorted(db.storage.get("mv").rows)
    db.matviews.refresh("mv")
    assert sorted(db.storage.get("mv").rows) == maintained
    assert db.matviews.status()["maintained_commits"] > 0


def test_commit_blocked_by_concurrent_refresh_stays_correct():
    """REFRESH holds the view writer lock; a simultaneous commit must
    wait for it and still fold its delta in exactly once."""
    db = build_db()
    barrier = threading.Barrier(2)
    errors: list = []

    def refresher():
        try:
            barrier.wait()
            for _ in range(10):
                db.matviews.refresh("mv")
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def committer():
        try:
            barrier.wait()
            for i in range(10):
                db.insert("t", [(5_000_000 + i, i % 5, i % 3, i)])
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=refresher),
               threading.Thread(target=committer)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive()
    assert not errors, f"raised: {errors[0]!r}"
    maintained = sorted(db.storage.get("mv").rows)
    db.matviews.refresh("mv")
    assert sorted(db.storage.get("mv").rows) == maintained
