"""The DB-API 2.0 (PEP 249) adapter."""

import pytest

from repro import Database, DataType, dbapi


def make_connection():
    db = Database()
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.VARCHAR, False)],
                    primary_key=("a",))
    db.insert("t", [(1, "x"), (2, "y"), (3, "z")])
    return dbapi.connect(db)


class TestModuleGlobals:
    def test_pep249_module_attributes(self):
        assert dbapi.apilevel == "2.0"
        assert dbapi.paramstyle == "qmark"
        assert isinstance(dbapi.threadsafety, int)

    def test_exception_hierarchy(self):
        assert issubclass(dbapi.InterfaceError, dbapi.Error)
        assert issubclass(dbapi.DatabaseError, dbapi.Error)
        assert issubclass(dbapi.ProgrammingError, dbapi.DatabaseError)
        assert issubclass(dbapi.OperationalError, dbapi.DatabaseError)

    def test_connect_creates_fresh_engine(self):
        conn = dbapi.connect()
        assert isinstance(conn.database, Database)


class TestCursor:
    def test_execute_and_fetchall(self):
        cur = make_connection().cursor()
        cur.execute("select a, b from t order by a")
        assert cur.fetchall() == [(1, "x"), (2, "y"), (3, "z")]
        assert cur.fetchall() == []  # exhausted

    def test_qmark_parameters(self):
        cur = make_connection().cursor()
        cur.execute("select b from t where a = ?", (2,))
        assert cur.fetchall() == [("y",)]

    def test_fetchone_walks_rows(self):
        cur = make_connection().cursor()
        cur.execute("select a from t order by a")
        assert cur.fetchone() == (1,)
        assert cur.fetchone() == (2,)
        assert cur.fetchone() == (3,)
        assert cur.fetchone() is None

    def test_fetchmany_respects_size_and_arraysize(self):
        cur = make_connection().cursor()
        cur.execute("select a from t order by a")
        assert cur.fetchmany(2) == [(1,), (2,)]
        assert cur.fetchmany(2) == [(3,)]
        cur.execute("select a from t order by a")
        assert cur.fetchmany() == [(1,)]  # default arraysize = 1

    def test_description_and_rowcount(self):
        cur = make_connection().cursor()
        assert cur.description is None
        cur.execute("select a, b from t")
        assert [d[0] for d in cur.description] == ["a", "b"]
        assert [d[1] for d in cur.description] == [DataType.INTEGER,
                                                   DataType.VARCHAR]
        assert all(len(d) == 7 for d in cur.description)
        assert cur.rowcount == 3

    def test_iteration(self):
        cur = make_connection().cursor()
        cur.execute("select a from t order by a")
        assert [row for row in cur] == [(1,), (2,), (3,)]

    def test_executemany(self):
        cur = make_connection().cursor()
        cur.executemany("select a from t where a = ?", [(1,), (2,)])
        assert cur.fetchall() == [(2,)]  # last execution's result

    def test_bad_sql_raises_programming_error(self):
        cur = make_connection().cursor()
        with pytest.raises(dbapi.ProgrammingError):
            cur.execute("select from from t")
        with pytest.raises(dbapi.ProgrammingError):
            cur.execute("select nope from t")
        with pytest.raises(dbapi.ProgrammingError):
            cur.execute("select a from t where a = ?")  # unbound param


class TestLifecycle:
    def test_closed_cursor_rejects_use(self):
        cur = make_connection().cursor()
        cur.close()
        with pytest.raises(dbapi.InterfaceError):
            cur.execute("select 1 from t")

    def test_closed_connection_rejects_cursors(self):
        conn = make_connection()
        conn.close()
        with pytest.raises(dbapi.InterfaceError):
            conn.cursor()

    def test_fetch_before_execute_rejected(self):
        cur = make_connection().cursor()
        with pytest.raises(dbapi.InterfaceError):
            cur.fetchall()

    def test_commit_and_rollback_are_noops_in_autocommit(self):
        conn = make_connection()
        conn.commit()
        conn.rollback()  # no transaction open: both are harmless no-ops

    def test_context_manager_closes(self):
        with make_connection() as conn:
            conn.cursor().execute("select 1 from t")
        with pytest.raises(dbapi.InterfaceError):
            conn.cursor()
