"""Paper Section 2.5 — the three subquery classes, via the classifier."""

import pytest

from repro import Database, DataType
from repro.core.normalize import SubqueryClass, classify_query


@pytest.fixture
def db(mini_catalog):
    database = Database()
    database.catalog = mini_catalog
    from repro.binder import Binder
    database._binder = Binder(mini_catalog)
    return database


class TestClass1:
    """Simple select/project/join/aggregate blocks flatten completely."""

    CASES = [
        """select c_custkey from customer
           where 1000000 < (select sum(o_totalprice) from orders
                            where o_custkey = c_custkey)""",
        """select c_custkey from customer
           where exists (select * from orders
                         where o_custkey = c_custkey)""",
        """select p_partkey from part
           where p_partkey in (select l_partkey from lineitem)""",
        """select o_orderkey, (select c_name from customer
                               where c_custkey = o_custkey) from orders""",
        """select s_suppkey from supplier
           where s_acctbal > all (select c_acctbal from customer)""",
    ]

    @pytest.mark.parametrize("sql", CASES, ids=range(len(CASES)))
    def test_fully_flattened(self, db, sql):
        assert classify_query(db, sql) == []


class TestClass2:
    def test_union_all_under_apply(self, db):
        reports = classify_query(db, """
            select ps_partkey from partsupp
            where 100.0 > (select sum(s_acctbal) from
                           (select s_acctbal from supplier
                            where s_suppkey = ps_suppkey
                            union all
                            select p_retailprice from part
                            where p_partkey = ps_partkey) as u)""")
        assert len(reports) == 1
        assert reports[0].subquery_class is SubqueryClass.CLASS2
        assert "UNION ALL" in reports[0].reason

    def test_except_all_under_apply(self, db):
        reports = classify_query(db, """
            select ps_partkey from partsupp
            where 100.0 > (select sum(s_acctbal) from
                           (select s_acctbal from supplier
                            where s_suppkey = ps_suppkey
                            except all
                            select p_retailprice from part
                            where p_partkey = ps_partkey) as u)""")
        assert len(reports) == 1
        assert reports[0].subquery_class is SubqueryClass.CLASS2
        assert "EXCEPT" in reports[0].reason


class TestClass3:
    def test_max1row_subquery(self, db):
        """The paper's Q2: a scalar subquery that may return several rows."""
        reports = classify_query(db, """
            select c_name, (select o_orderkey from orders
                            where o_custkey = c_custkey)
            from customer""")
        assert len(reports) == 1
        assert reports[0].subquery_class is SubqueryClass.CLASS3
        assert "Max1row" in reports[0].reason

    def test_case_branch_subquery(self, db):
        reports = classify_query(db, """
            select case when c_acctbal > 0.0
                        then (select sum(o_totalprice) from orders
                              where o_custkey = c_custkey)
                        else 0.0 end
            from customer""")
        assert any(r.subquery_class is SubqueryClass.CLASS3
                   and "conditional" in r.reason for r in reports)

    def test_parameterized_limit(self, db):
        reports = classify_query(db, """
            select c_custkey,
                   (select o_orderkey from orders
                    where o_custkey = c_custkey
                    order by o_totalprice desc limit 1)
            from customer""")
        assert len(reports) == 1
        assert reports[0].subquery_class is SubqueryClass.CLASS3
