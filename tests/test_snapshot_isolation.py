"""Snapshot isolation, attacked two ways.

1. A hypothesis-driven interleaving test: random schedules of staged and
   autocommit inserts, DDL, begin/commit/rollback and reads across three
   sessions are replayed against a trivial Python shadow model.  The
   database's answer to every read must match the model exactly — the
   reader never sees uncommitted data, a pinned snapshot never moves,
   and read-your-own-writes holds inside a transaction.

2. A differential multi-thread TPC-H replay: eight concurrent sessions
   each run a query workload against a static database, and every single
   result must be bit-identical (values *and* row order) to the serial
   replay of the same workload.  Any torn read, stale cache entry or
   cross-engine race shows up as a diff.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DataType
from repro.tpch import QUERIES, create_tpch_schema, generate_tpch

# -- 1. model-checked interleavings ------------------------------------------------

OPS = st.lists(
    st.sampled_from(["w_insert", "o_insert", "begin", "commit", "rollback",
                     "read_r", "read_w", "ddl"]),
    min_size=4, max_size=24)


@given(ops=OPS)
@settings(max_examples=40, deadline=None)
def test_interleavings_match_shadow_model(ops):
    db = Database()
    db.create_table("t", [("k", DataType.INTEGER, False)],
                    primary_key=("k",))
    db.create_table("u", [("k", DataType.INTEGER, False)],
                    primary_key=("k",))
    writer = db.session()
    other = db.session()
    reader = db.session()

    committed = {"t": 0, "u": 0}      # shadow model: committed row counts
    snap = None                       # writer's pinned counts at begin()
    pending_t = 0                     # rows the writer has staged into t
    next_key = iter(range(10_000))
    ddl_seq = iter(range(10_000))

    try:
        for op in ops:
            if op == "w_insert":
                rows = [(next(next_key),) for _ in range(2)]
                writer.insert("t", rows)
                if writer.in_transaction:
                    pending_t += len(rows)
                else:
                    committed["t"] += len(rows)
            elif op == "o_insert":
                # Autocommit from a different session, different table —
                # visible to new snapshots immediately, invisible to the
                # writer's pinned one.
                rows = [(next(next_key),) for _ in range(3)]
                other.insert("u", rows)
                committed["u"] += len(rows)
            elif op == "begin":
                if not writer.in_transaction:
                    writer.begin()
                    snap = dict(committed)
                    pending_t = 0
            elif op == "commit":
                if writer.in_transaction:
                    writer.commit()
                    committed["t"] += pending_t
                    snap, pending_t = None, 0
            elif op == "rollback":
                if writer.in_transaction:
                    writer.rollback()
                    snap, pending_t = None, 0
            elif op == "read_r":
                # The reader autocommits: every statement pins a fresh
                # snapshot and must see exactly the committed state.
                for table in ("t", "u"):
                    got = reader.execute(
                        f"select count(*) from {table}").scalar()
                    assert got == committed[table], (op, table, ops)
            elif op == "read_w":
                base = snap if writer.in_transaction else committed
                got_t = writer.execute("select count(*) from t").scalar()
                got_u = writer.execute("select count(*) from u").scalar()
                extra = pending_t if writer.in_transaction else 0
                assert got_t == base["t"] + extra, (op, ops)
                assert got_u == base["u"], (op, ops)
            elif op == "ddl":
                # DDL autocommits (from a session with no open txn) and
                # must not disturb anyone's pinned snapshot or the data.
                if not writer.in_transaction:
                    other.create_index(f"ix_u_{next(ddl_seq)}", "u", ["k"])
    finally:
        writer.close(); other.close(); reader.close()


def test_pinned_snapshot_survives_concurrent_ddl_and_inserts():
    """A transaction's reads are frozen even while another session
    inserts into the same table (the txn holds no lock until it
    writes)."""
    db = Database()
    db.create_table("t", [("k", DataType.INTEGER, False)],
                    primary_key=("k",))
    db.insert("t", [(i,) for i in range(5)])
    txn = db.session()
    txn.begin()
    assert txn.execute("select count(*) from t").scalar() == 5
    with db.session() as background:
        background.insert("t", [(100,), (101,)])
        background.create_index("ix_t_k", "t", ["k"])
    # Still the world as of begin(), despite two installs since.
    assert txn.execute("select count(*) from t").scalar() == 5
    txn.commit()
    assert txn.execute("select count(*) from t").scalar() == 7
    txn.close()


# -- 2. differential multi-thread TPC-H replay -------------------------------------

REPLAY_QUERIES = ["Q1", "Q3", "Q4", "Q6", "Q12", "Q14"]
THREADS = 8
ROUNDS = 3


@pytest.fixture(scope="module")
def tpch_db():
    db = Database()
    create_tpch_schema(db)
    generate_tpch(db, scale_factor=0.0005, seed=13)
    return db


def test_concurrent_replay_bit_identical_to_serial(tpch_db):
    db = tpch_db
    engines = ("tuple", "vectorized")

    def workload(seed: int) -> list:
        """The exact statement sequence thread ``seed`` will run."""
        plan = []
        for round_no in range(ROUNDS):
            for i, name in enumerate(REPLAY_QUERIES):
                engine = engines[(seed + round_no + i) % len(engines)]
                plan.append((name, engine))
        return plan

    serial = {}
    for seed in range(THREADS):
        for name, engine in workload(seed):
            if (name, engine) not in serial:
                serial[(name, engine)] = db.execute(
                    QUERIES[name], engine=engine).rows

    failures: list[str] = []
    barrier = threading.Barrier(THREADS)

    def replay(seed: int) -> None:
        try:
            barrier.wait()
            with db.session() as session:
                for name, engine in workload(seed):
                    rows = session.execute(QUERIES[name],
                                           engine=engine).rows
                    if rows != serial[(name, engine)]:
                        failures.append(
                            f"thread {seed}: {name}/{engine} diverged")
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(f"thread {seed}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=replay, args=(seed,))
               for seed in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    assert not failures, failures
