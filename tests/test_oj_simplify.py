"""Unit tests for outerjoin simplification (paper Section 1.2 + the
null-rejection-through-GroupBy derivation that is new in the paper)."""

import pytest

from repro.algebra import (AggregateCall, AggregateFunction, Apply, Column,
                           ColumnRef, Comparison, DataType, GroupBy, IsNull,
                           Join, JoinKind, Literal, Project, Select,
                           collect_nodes, equals)
from repro.core.normalize import simplify_outerjoins

from .helpers import customer_scan, orders_scan


def loj_under_groupby(agg_func=AggregateFunction.SUM, extra_aggs=()):
    cust, (ck, cn, cnk) = customer_scan()
    orders, (ok, ock, price) = orders_scan()
    loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
    agg_out = Column("x", DataType.FLOAT)
    aggregates = [(agg_out, AggregateCall(agg_func, ColumnRef(price)))]
    aggregates.extend(extra_aggs)
    gb = GroupBy(loj, [ck, cn, cnk], aggregates)
    return gb, agg_out, price


def join_kinds(rel):
    return [j.kind for j in collect_nodes(rel,
                                          lambda n: isinstance(n, Join))]


class TestDirectSimplification:
    def test_filter_on_inner_column_simplifies(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        tree = Select(loj, Comparison(">", ColumnRef(price), Literal(5.0)))
        assert join_kinds(simplify_outerjoins(tree)) == [JoinKind.INNER]

    def test_filter_on_outer_column_does_not(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        tree = Select(loj, Comparison(">", ColumnRef(ck), Literal(5)))
        assert join_kinds(simplify_outerjoins(tree)) == [JoinKind.LEFT_OUTER]

    def test_is_null_filter_blocks(self):
        """IS NULL accepts the padded rows — no simplification."""
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        tree = Select(loj, IsNull(ColumnRef(ok)))
        assert join_kinds(simplify_outerjoins(tree)) == [JoinKind.LEFT_OUTER]

    def test_is_not_null_simplifies(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        tree = Select(loj, IsNull(ColumnRef(ok), negated=True))
        assert join_kinds(simplify_outerjoins(tree)) == [JoinKind.INNER]


class TestThroughGroupBy:
    def test_sum_filter_derives_through(self):
        """The paper's running example: HAVING 1000000 < sum(...)."""
        gb, agg_out, _ = loj_under_groupby()
        tree = Select(gb, Comparison("<", Literal(1000000.0),
                                     ColumnRef(agg_out)))
        assert join_kinds(simplify_outerjoins(tree)) == [JoinKind.INNER]

    def test_no_filter_no_simplification(self):
        gb, _, _ = loj_under_groupby()
        assert join_kinds(simplify_outerjoins(gb)) == [JoinKind.LEFT_OUTER]

    def test_count_filter_does_not_derive(self):
        """count never yields NULL — rejection on it derives nothing."""
        gb, agg_out, _ = loj_under_groupby(AggregateFunction.COUNT)
        tree = Select(gb, Comparison("<", Literal(0),
                                     ColumnRef(agg_out)))
        assert join_kinds(simplify_outerjoins(tree)) == [JoinKind.LEFT_OUTER]

    def test_count_star_guard_blocks(self):
        """A count(*) alongside the filtered sum counts padded rows; the
        guard machinery must block the conversion (coarser grouping could
        otherwise change the count)."""
        cnt = Column("cnt", DataType.INTEGER)
        gb, agg_out, _ = loj_under_groupby(
            extra_aggs=[(cnt, AggregateCall(AggregateFunction.COUNT_STAR))])
        tree = Select(gb, Comparison("<", Literal(1000000.0),
                                     ColumnRef(agg_out)))
        assert join_kinds(simplify_outerjoins(tree)) == [JoinKind.LEFT_OUTER]

    def test_companion_strict_aggregate_allows(self):
        """A second aggregate over another inner column is padded-row
        insensitive, so the conversion may proceed."""
        orders_cols = None
        cust, (ck, cn, cnk) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        x = Column("x", DataType.FLOAT)
        y = Column("y", DataType.INTEGER)
        gb = GroupBy(loj, [ck], [
            (x, AggregateCall(AggregateFunction.SUM, ColumnRef(price))),
            (y, AggregateCall(AggregateFunction.MAX, ColumnRef(ok)))])
        tree = Select(gb, Comparison("<", Literal(10.0), ColumnRef(x)))
        assert join_kinds(simplify_outerjoins(tree)) == [JoinKind.INNER]

    def test_derivation_through_project(self):
        """A computed projection between filter and GroupBy remaps the
        rejected column through strict expressions."""
        from repro.algebra import Arithmetic

        gb, agg_out, _ = loj_under_groupby()
        scaled = Column("scaled", DataType.FLOAT)
        project = Project.extend(gb, [(scaled, Arithmetic(
            "*", ColumnRef(agg_out), Literal(2.0)))])
        tree = Select(project, Comparison("<", Literal(100.0),
                                          ColumnRef(scaled)))
        assert join_kinds(simplify_outerjoins(tree)) == [JoinKind.INNER]


class TestApplyConversion:
    def test_apply_loj_converts_to_inner(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        apply_op = Apply(JoinKind.LEFT_OUTER, cust, orders,
                         equals(ock, ck))
        tree = Select(apply_op, Comparison(">", ColumnRef(price),
                                           Literal(0.0)))
        simplified = simplify_outerjoins(tree)
        applies = collect_nodes(simplified,
                                lambda n: isinstance(n, Apply))
        assert applies[0].kind is JoinKind.INNER

    def test_guarded_apply_never_converts(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        guard = Comparison(">", ColumnRef(ck), Literal(0))
        apply_op = Apply(JoinKind.LEFT_OUTER, cust, orders,
                         equals(ock, ck), guard=guard)
        tree = Select(apply_op, Comparison(">", ColumnRef(price),
                                           Literal(0.0)))
        simplified = simplify_outerjoins(tree)
        applies = collect_nodes(simplified,
                                lambda n: isinstance(n, Apply))
        assert applies[0].kind is JoinKind.LEFT_OUTER

    def test_top_blocks_propagation(self):
        from repro.algebra import Top

        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        tree = Select(Top(loj, 2), Comparison(">", ColumnRef(price),
                                              Literal(0.0)))
        assert JoinKind.LEFT_OUTER in join_kinds(simplify_outerjoins(tree))
