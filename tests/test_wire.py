"""Wire protocol: round-trips, error mapping, metrics, shedding."""

import datetime
import json
import socket

import pytest

from repro import Database, DataType
from repro.errors import ProtocolError, ServerOverloaded, TransactionError
from repro.server import QueryServer, ServerClient


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("a", DataType.INTEGER, False),
                                ("b", DataType.VARCHAR),
                                ("d", DataType.DATE)],
                          primary_key=("a",))
    database.insert("t", [
        (1, "one", datetime.date(2020, 1, 1)),
        (2, "two", datetime.date(2021, 2, 2)),
        (3, None, None)])
    return database


@pytest.fixture
def server(db):
    with QueryServer(db, max_workers=2) as srv:
        yield srv


@pytest.fixture
def client(server):
    host, port = server.address
    with ServerClient(host, port) as cli:
        yield cli


class TestRoundTrips:
    def test_query_with_schema(self, client):
        result = client.query("select a, b from t where a <= 2 order by a")
        assert result.rows == [(1, "one"), (2, "two")]
        assert result.names == ["a", "b"]
        assert [t.value for t in result.types] == ["integer", "varchar"]

    def test_dates_round_trip_bit_identical(self, client):
        result = client.query("select a, d from t order by a")
        assert result.rows == [(1, datetime.date(2020, 1, 1)),
                               (2, datetime.date(2021, 2, 2)),
                               (3, None)]

    def test_positional_and_named_params(self, client):
        assert client.query("select b from t where a = ?",
                            [2]).scalar() == "two"
        assert client.query("select b from t where a = :x",
                            {"x": 1}).scalar() == "one"

    def test_date_params_encoded(self, client):
        result = client.query("select a from t where d = ?",
                              [datetime.date(2020, 1, 1)])
        assert result.rows == [(1,)]

    def test_engines_and_modes(self, client):
        sql = "select count(*) from t"
        assert client.query(sql, engine="vectorized").scalar() == 3
        assert client.query(sql, mode="naive").scalar() == 3

    def test_explain(self, client):
        plan = client.explain("select a from t where a = 1")
        assert "t" in plan

    def test_insert_and_transaction(self, client, db):
        client.begin()
        client.insert("t", [[10, "ten", datetime.date(2022, 3, 3)]])
        # Staged write: invisible outside the wire session until commit.
        assert db.execute("select count(*) from t").scalar() == 3
        client.commit()
        assert db.execute("select count(*) from t").scalar() == 4

    def test_rollback(self, client, db):
        client.begin()
        client.insert("t", [{"a": 11, "b": None, "d": None}])
        client.rollback()
        assert db.execute("select count(*) from t").scalar() == 3

    def test_ddl_over_wire(self, client, db):
        client.create_table("w", [["k", "integer", False],
                                  ["v", "varchar"]], primary_key=["k"])
        client.insert("w", [[1, "x"]])
        client.create_index("ix_w_v", "w", ["v"])
        assert client.query("select v from w").scalar() == "x"
        client.drop_table("w")
        assert not db.catalog.has_table("w")

    def test_two_clients_are_independent_sessions(self, server, db):
        host, port = server.address
        with ServerClient(host, port) as one, \
                ServerClient(host, port) as two:
            one.begin()
            one.insert("t", [[20, None, None]])
            assert one.query("select count(*) from t").scalar() == 4
            assert two.query("select count(*) from t").scalar() == 3
            one.commit()
            assert two.query("select count(*) from t").scalar() == 4


class TestErrors:
    def test_sql_error_fails_request_not_connection(self, client):
        with pytest.raises(Exception) as excinfo:
            client.query("select nope from t")
        assert "nope" in str(excinfo.value)
        assert client.ping()

    def test_unknown_op_is_protocol_error(self, client):
        with pytest.raises(ProtocolError):
            client.request({"op": "teleport"})
        assert client.ping()

    def test_transaction_errors_map_back(self, client):
        client.begin()
        with pytest.raises(TransactionError):
            client.request({"op": "begin"})
        client.rollback()

    def test_garbage_line_fails_that_request_only(self, server):
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(b"this is not json\n")
            reader = sock.makefile("rb")
            response = json.loads(reader.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            sock.sendall(json.dumps({"op": "ping"}).encode() + b"\n")
            assert json.loads(reader.readline())["ok"] is True
        finally:
            sock.close()

    def test_overload_shedding_over_wire(self, db):
        # One worker, a queue of one: concurrent clients beyond that are
        # rejected with ServerOverloaded, carrying the retry detail.
        import threading

        with QueryServer(db, max_workers=1, max_queue_depth=1) as srv:
            host, port = srv.address
            gate_sql = ("select count(*) from t t1, t t2, t t3, t t4, "
                        "t t5, t t6, t t7")
            results: list[str] = []

            def hammer() -> None:
                try:
                    with ServerClient(host, port, timeout=60) as cli:
                        cli.query(gate_sql)
                    results.append("ok")
                except ServerOverloaded:
                    results.append("shed")
                except Exception as exc:  # pragma: no cover
                    results.append(f"unexpected: {exc!r}")

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert len(results) == 6
            assert not [r for r in results if r.startswith("unexpected")]
            if "shed" in results:
                assert srv.metrics()["shed"] >= 1
            # Shedding must reject, not deadlock: everyone got an answer.
            assert set(results) <= {"ok", "shed"}


class TestMetrics:
    def test_metrics_shape(self, client, server):
        client.query("select count(*) from t")
        metrics = client.metrics()
        assert metrics["open_sessions"] >= 1
        assert metrics["admission"]["completed"] >= 1
        assert 0.0 <= metrics["plan_cache_hit_rate"] <= 1.0
        assert "data_version" in metrics
        assert set(server.metrics()) == set(metrics)  # same shape locally

    def test_session_closed_when_connection_drops(self, server, db):
        host, port = server.address
        before = db.open_session_count
        cli = ServerClient(host, port)
        cli.ping()
        assert db.open_session_count == before + 1
        cli.close()
        deadline = 50
        import time
        for _ in range(deadline):
            if db.open_session_count == before:
                break
            time.sleep(0.05)
        assert db.open_session_count == before
