"""Additional cardinality-estimation coverage: Apply correlation, segment
estimation, set operations, and limit operators."""

import pytest

from repro.algebra import (AggregateCall, AggregateFunction, Apply, Column,
                           ColumnRef, Comparison, ConstantScan, DataType,
                           Difference, Get, GroupBy, Join, JoinKind,
                           Literal, Max1row, ScalarGroupBy, SegmentApply,
                           SegmentRef, Select, Top, UnionAll, equals)
from repro.catalog.statistics import ColumnStats, TableStats
from repro.core.optimizer import Estimator


def stats_provider(name):
    if name == "orders":
        return TableStats(10000, {
            "o_orderkey": ColumnStats(10000, 0, 1, 10000),
            "o_custkey": ColumnStats(1000, 0, 1, 1000)})
    if name == "customer":
        return TableStats(1000, {
            "c_custkey": ColumnStats(1000, 0, 1, 1000)})
    return None


def orders_get():
    ok = Column("o_orderkey", DataType.INTEGER, False)
    ock = Column("o_custkey", DataType.INTEGER, False)
    return Get("orders", [ok, ock], [[ok]]), ok, ock


def customer_get():
    ck = Column("c_custkey", DataType.INTEGER, False)
    return Get("customer", [ck], [[ck]]), ck


class TestApplyEstimates:
    def test_correlated_apply_like_join(self):
        cust, ck = customer_get()
        orders, ok, ock = orders_get()
        inner = Select(orders, equals(ock, ck))
        apply_op = Apply(JoinKind.INNER, cust, inner)
        est = Estimator(stats_provider).estimate(apply_op)
        # 1000 customers × (10000/1000) orders each ≈ 10000
        assert est.rows == pytest.approx(10000, rel=0.3)

    def test_semi_apply_bounded_by_left(self):
        cust, ck = customer_get()
        orders, ok, ock = orders_get()
        inner = Select(orders, equals(ock, ck))
        apply_op = Apply(JoinKind.LEFT_SEMI, cust, inner)
        est = Estimator(stats_provider).estimate(apply_op)
        assert est.rows <= 1000


class TestSegmentEstimates:
    def test_segment_apply_rows(self):
        orders, ok, ock = orders_get()
        mirrors = [c.fresh_copy() for c in orders.output_columns()]
        total = Column("cnt", DataType.INTEGER)
        inner = ScalarGroupBy(SegmentRef(mirrors), [
            (total, AggregateCall(AggregateFunction.COUNT_STAR))])
        sa = SegmentApply(orders, inner, [ock], mirrors)
        est = Estimator(stats_provider).estimate(sa)
        # one scalar-agg row per segment; segments ≈ ndv(o_custkey)
        assert est.rows == pytest.approx(1000, rel=0.1)

    def test_segment_ref_uses_per_segment_rows(self):
        orders, ok, ock = orders_get()
        mirrors = [c.fresh_copy() for c in orders.output_columns()]
        inner = SegmentRef(mirrors)
        sa = SegmentApply(orders, inner, [ock], mirrors)
        est = Estimator(stats_provider).estimate(sa)
        # each row of each segment is emitted: total ≈ |orders|
        assert est.rows == pytest.approx(10000, rel=0.1)


class TestSetAndLimitEstimates:
    def test_union_sums(self):
        a = ConstantScan([Column("x", DataType.INTEGER)],
                         [(1,), (2,), (3,)])
        b = ConstantScan([Column("y", DataType.INTEGER)], [(4,)])
        est = Estimator(stats_provider).estimate(UnionAll.from_inputs([a, b]))
        assert est.rows == 4

    def test_difference_keeps_left(self):
        a = ConstantScan([Column("x", DataType.INTEGER)], [(1,), (2,)])
        b = ConstantScan([Column("y", DataType.INTEGER)], [(1,)])
        est = Estimator(stats_provider).estimate(Difference.from_inputs(a, b))
        assert est.rows == 2

    def test_top_and_offset(self):
        orders, *_ = orders_get()
        est = Estimator(stats_provider).estimate(Top(orders, 10, offset=5))
        assert est.rows == 10
        nearly_all = Estimator(stats_provider).estimate(
            Top(orders, 10_000_000, offset=9995))
        assert nearly_all.rows == pytest.approx(5)

    def test_max1row(self):
        orders, *_ = orders_get()
        est = Estimator(stats_provider).estimate(Max1row(orders))
        assert est.rows == 1.0

    def test_missing_stats_fall_back(self):
        unknown = Get("mystery", [Column("z", DataType.INTEGER)], [])
        est = Estimator(stats_provider).estimate(unknown)
        assert est.rows > 0
