"""Chaos tests: deterministic fault injection at every registered site.

For each site the contract is differential — the query must either
return exactly the rows the naive interpreter produces (possibly
flagged ``degraded``) or raise a governor/``ReproError`` error; it must
never silently return wrong rows.  Degraded plans must never enter the
plan cache.
"""

import os
from collections import Counter

import pytest

from repro import (FULL, Database, DataType, InjectedFault, NAIVE,
                   ReproError)
from repro.faultinject import (INJECTION_SITES, fail_always, fail_at,
                               fail_randomly, is_active)

QUERIES = [
    "select a from t where b > 3 order by a",
    "select b, count(*) from t group by b order by b",
    ("select a from t where exists "
     "(select * from u where ua = b) order by a"),
    ("select a, (select count(*) from u where ua = b) from t "
     "where a < 40 order by a"),
]

#: Sites on the server path (sessions, admission, wire); they never fire
#: during a plain ``db.execute`` and are exercised in TestServerChaos.
SERVER_SITES = {"admission.enqueue", "snapshot.install", "wire.decode"}

#: Sites on the durability path (WAL, checkpoint, recovery); they never
#: fire on an in-memory database and are exercised by the crash-recovery
#: harness in tests/test_durability_chaos.py.
DURABILITY_SITES = {"wal.append", "wal.fsync", "wal.checkpoint",
                    "recovery.replay"}

#: Sites whose failure is survivable — execute() degrades or shrugs and
#: still returns correct rows.  ``executor.naive`` is the last rung of
#: the ladder, so a fault there is allowed to surface as an error.
RECOVERABLE_SITES = sorted(INJECTION_SITES - {"executor.naive"}
                           - SERVER_SITES - DURABILITY_SITES)

#: Sites where recovery must mark the result degraded (the cost-based
#: plan was abandoned).  Plan-cache faults are absorbed silently.
DEGRADING_SITES = {"optimizer.explore", "optimizer.memo",
                   "optimizer.implement", "executor.open"}


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("a", DataType.INTEGER, False),
                                ("b", DataType.INTEGER, False)],
                          primary_key=("a",))
    database.create_table("u", [("uk", DataType.INTEGER, False),
                                ("ua", DataType.INTEGER, False)],
                          primary_key=("uk",))
    database.insert("t", [(i, i % 7) for i in range(80)])
    database.insert("u", [(i, i % 11) for i in range(60)])
    return database


def reference_rows(db, sql):
    """Naive-interpreter reference, computed before any fault is armed."""
    return Counter(db.execute(sql, NAIVE).rows)


class TestSiteRegistry:
    def test_expected_sites_registered(self):
        assert INJECTION_SITES == {
            "optimizer.explore", "optimizer.memo", "optimizer.implement",
            "plancache.get", "plancache.put", "executor.open",
            "executor.open.vectorized", "columnar.decode",
            "executor.naive", "analyzer.check", "admission.enqueue",
            "snapshot.install", "wire.decode", "feedback.record",
            "wal.append", "wal.fsync", "wal.checkpoint",
            "recovery.replay", "matview.refresh"}

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            fail_at("no.such.site")

    def test_inactive_by_default(self):
        assert not is_active()


class TestSingleFaultRecovery:
    @pytest.mark.parametrize("site", RECOVERABLE_SITES)
    @pytest.mark.parametrize("sql", QUERIES)
    def test_one_shot_fault_recovers_with_correct_rows(self, db, site,
                                                       sql):
        expected = reference_rows(db, sql)
        db.plan_cache.invalidate()
        with fail_at(site, n=1) as (trigger,):
            result = db.execute(sql, FULL)
        assert not is_active()
        assert Counter(result.rows) == expected
        if trigger.fired and site in DEGRADING_SITES:
            assert result.degraded
            assert result.stats.fallback_reason
        if site.startswith("plancache."):
            assert not result.degraded  # cache faults are invisible

    @pytest.mark.parametrize("site", ["optimizer.explore",
                                      "optimizer.memo",
                                      "optimizer.implement"])
    def test_persistent_optimizer_fault_falls_to_naive_tier(self, db,
                                                            site):
        sql = QUERIES[1]
        expected = reference_rows(db, sql)
        db.plan_cache.invalidate()
        with fail_always(site):
            # Both the cost-based and the heuristic tier keep faulting,
            # so execution lands on the naive interpreter — still right.
            result = db.execute(sql, FULL)
        assert result.degraded
        assert Counter(result.rows) == expected

    def test_naive_tier_fault_surfaces(self, db):
        with fail_always("executor.naive"):
            with pytest.raises(InjectedFault):
                db.execute(QUERIES[0], NAIVE)

    def test_execution_fault_reruns_naively(self, db):
        sql = QUERIES[2]
        expected = reference_rows(db, sql)
        with fail_at("executor.open", n=1) as (trigger,):
            result = db.execute(sql, FULL)
        assert trigger.fired
        assert result.degraded
        assert "fault" in result.stats.fallback_reason
        assert Counter(result.rows) == expected


class TestCacheHygiene:
    @pytest.mark.parametrize("site", ["optimizer.explore",
                                      "optimizer.memo",
                                      "optimizer.implement"])
    def test_degraded_plans_never_cached(self, db, site):
        sql = QUERIES[3]
        db.plan_cache.invalidate()
        with fail_always(site):
            result = db.execute(sql, FULL)
        assert result.degraded
        assert len(db.plan_cache) == 0
        # The next clean run optimizes from scratch and does cache.
        clean = db.execute(sql, FULL)
        assert not clean.degraded
        assert len(db.plan_cache) == 1

    def test_execution_fault_keeps_the_healthy_plan_cached(self, db):
        # executor.open strikes after optimization succeeded: the result
        # degrades (naive rerun) but the cached plan is the good one.
        sql = QUERIES[3]
        db.plan_cache.invalidate()
        with fail_at("executor.open", n=1):
            result = db.execute(sql, FULL)
        assert result.degraded
        assert len(db.plan_cache) == 1
        clean = db.execute(sql, FULL)  # served from cache, healthy
        assert not clean.degraded

    def test_cache_put_fault_skips_admission(self, db):
        sql = QUERIES[0]
        db.plan_cache.invalidate()
        with fail_at("plancache.put", n=1):
            result = db.execute(sql, FULL)
        assert not result.degraded
        assert len(db.plan_cache) == 0

    def test_cache_get_fault_is_a_miss(self, db):
        sql = QUERIES[0]
        expected = reference_rows(db, sql)
        db.execute(sql, FULL)  # populate the cache
        with fail_at("plancache.get", n=1):
            result = db.execute(sql, FULL)
        assert Counter(result.rows) == expected


class TestAnalyzerFaults:
    """A fault inside the static analyzer must never take a query down:
    the analyzer skips its check and the pipeline proceeds untouched."""

    def test_analyzer_fault_skips_the_check_not_the_query(self, db,
                                                          monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "strict")
        sql = QUERIES[3]
        expected = reference_rows(db, sql)
        db.plan_cache.invalidate()
        with fail_always("analyzer.check"):
            result = db.execute(sql, FULL)
        assert not result.degraded
        assert Counter(result.rows) == expected
        assert len(db.plan_cache) == 1  # admission proceeded unchecked

    def test_analyzer_runs_once_the_fault_clears(self, db, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "strict")
        sql = QUERIES[0]
        expected = reference_rows(db, sql)
        db.plan_cache.invalidate()
        with fail_at("analyzer.check", n=1) as (trigger,):
            result = db.execute(sql, FULL)
        assert trigger.fired
        assert not result.degraded
        assert Counter(result.rows) == expected


class TestServerChaos:
    """Faults at the server-path sites: each takes down at most the one
    request it struck, never the session, connection or server."""

    def test_snapshot_install_fault_aborts_commit_atomically(self, db):
        before = db.execute("select count(*) from t", NAIVE).scalar()
        session = db.session()
        session.begin()
        session.insert("t", [(1000, 0), (1001, 1)])
        with fail_at("snapshot.install", n=1):
            with pytest.raises(InjectedFault):
                session.commit()
        # Nothing was installed and the writer lock was released: the
        # next transaction proceeds normally.
        assert db.execute("select count(*) from t", NAIVE).scalar() == before
        session.begin()
        session.insert("t", [(1000, 0)])
        session.commit()
        assert (db.execute("select count(*) from t", NAIVE).scalar()
                == before + 1)
        session.close()

    def test_admission_enqueue_fault_fails_one_request_only(self, db):
        from repro.server import QueryServer, ServerClient

        with QueryServer(db, max_workers=2) as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                with fail_at("admission.enqueue", n=1):
                    with pytest.raises(ReproError):
                        client.query("select a from t where a < 3")
                # Same connection, next request: served normally.
                result = client.query(
                    "select a from t where a < 3 order by a")
                assert result.rows == [(0,), (1,), (2,)]

    def test_wire_decode_fault_fails_one_request_only(self, db):
        from repro.errors import ProtocolError
        from repro.server import QueryServer, ServerClient

        with QueryServer(db, max_workers=2) as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                with fail_at("wire.decode", n=1):
                    with pytest.raises(ProtocolError):
                        client.ping()
                assert client.ping()  # connection survived the fault

    def test_killed_worker_degrades_one_query_never_the_server(self, db):
        from repro.server import QueryServer, ServerClient

        with QueryServer(db, max_workers=2) as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                # A worker dying mid-query surfaces as executor faults;
                # the engine degrades to the naive tier and still answers
                # (or, at worst, errors that one request).
                with fail_always("executor.open"):
                    result = client.query(
                        "select a from t where a < 3 order by a")
                    assert result.degraded
                    assert result.rows == [(0,), (1,), (2,)]
                clean = client.query(
                    "select a from t where a < 3 order by a")
                assert not clean.degraded
                assert server.metrics()["admission"]["completed"] >= 2


class TestRandomChaos:
    RATE = 0.05
    SEEDS = range(8 if os.environ.get("REPRO_CHAOS") else 3)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_faults_never_corrupt_results(self, db, seed):
        with fail_randomly(self.RATE, seed=seed):
            for sql in QUERIES:
                expected = None
                try:
                    expected = reference_rows(db, sql)
                    result = db.execute(sql, FULL)
                except ReproError:
                    continue  # an error is acceptable; wrong rows are not
                if expected is not None:
                    assert Counter(result.rows) == expected
        assert not is_active()
