"""Runtime race detector: inversions caught live, blame reports,
zero-overhead-off, warn mode, the sanctioned bounded pattern."""

import threading
import time

import pytest

from repro.concurrency import (LockOrderViolation, RaceDetector,
                               TrackedLock, TrackedRLock, detector,
                               race_detection)


def _fixture_locks():
    return (TrackedLock("fixture.alpha", level=210),
            TrackedLock("fixture.beta", level=220))


# -- single-thread hierarchy enforcement ------------------------------------------


def test_descending_acquisition_raises():
    a, b = _fixture_locks()
    with race_detection():
        with a:
            with b:
                pass  # ascending: fine
        with pytest.raises(LockOrderViolation) as exc:
            with b:
                with a:
                    pass
    report = str(exc.value) + exc.value.report
    assert "fixture.alpha" in report and "fixture.beta" in report


def test_blame_report_names_both_sites():
    a, b = _fixture_locks()
    with race_detection():
        try:
            with b:
                with a:
                    pass
        except LockOrderViolation as exc:
            assert "test_race_detector.py" in exc.report
            assert "fixture.beta" in exc.report
        else:
            pytest.fail("inversion not detected")


# -- cross-thread inversion (the classic two-thread deadlock shape) ---------------


def test_cross_thread_inversion_caught():
    """Thread 1 runs the sanctioned bounded x->y; thread 2 then nests
    y->x *unbounded*.  Serialized (no actual deadlock), but the
    detector must flag the second thread's acquisition — that shape
    deadlocks under the right interleaving."""
    x = TrackedLock("storage.writer:x")
    y = TrackedLock("storage.writer:y")
    errors = []
    with race_detection():
        def t1():
            assert x.acquire(timeout=5)
            assert y.acquire(timeout=5)
            y.release()
            x.release()

        def t2():
            try:
                with y:
                    with x:
                        pass
            except LockOrderViolation as exc:
                errors.append(exc)

        for target in (t1, t2):
            th = threading.Thread(target=target)
            th.start()
            th.join()
    assert errors, "unbounded reverse-order acquisition not flagged"
    report = errors[0].report
    assert "storage.writer:x" in report and "storage.writer:y" in report
    assert "lock-order" in report


def test_inversion_report_names_both_threads():
    """Opposite-order bounded acquisitions from two threads: the
    recorded inversion's blame report must name both threads and both
    acquisition sites."""
    x = TrackedLock("storage.writer:x")
    y = TrackedLock("storage.writer:y")
    with race_detection() as det:
        def order(first, second):
            assert first.acquire(timeout=5)
            assert second.acquire(timeout=5)
            second.release()
            first.release()

        for name, args in (("rd-t1", (x, y)), ("rd-t2", (y, x))):
            th = threading.Thread(target=order, args=args, name=name)
            th.start()
            th.join()
    report = det.report()
    assert "rd-t1" in report and "rd-t2" in report
    assert "test_race_detector.py" in report


# -- the sanctioned bounded pattern -----------------------------------------------


def test_bounded_same_level_acquisition_allowed():
    """Two storage.writer locks with bounded timeouts: the
    first-committer-wins pattern.  Recorded, never raised."""
    x = TrackedLock("storage.writer:x")
    y = TrackedLock("storage.writer:y")
    with race_detection() as det:
        def order(first, second):
            assert first.acquire(timeout=5)
            try:
                assert second.acquire(timeout=5)
                second.release()
            finally:
                first.release()

        th1 = threading.Thread(target=order, args=(x, y))
        th1.start()
        th1.join()
        th2 = threading.Thread(target=order, args=(y, x))
        th2.start()
        th2.join()
        assert det.violations == []
        assert det.bounded_inversions  # recorded for the report
    assert "storage.writer" in det.report()


def test_unbounded_same_level_still_raises():
    x = TrackedLock("storage.writer:x")
    y = TrackedLock("storage.writer:y")
    with race_detection():
        with pytest.raises(LockOrderViolation):
            with x:  # unbounded `with` on a timeout_required lock
                with y:
                    pass


# -- modes and overhead ------------------------------------------------------------


def test_warn_mode_records_without_raising():
    a, b = _fixture_locks()
    with race_detection(mode="warn") as det:
        with b:
            with a:
                pass
    assert det.violations
    assert det.violations[0].kind == "hierarchy"


def test_no_detector_no_bookkeeping():
    assert detector() is None  # REPRO_RACE unset in the test env
    a, b = _fixture_locks()
    with b:
        with a:  # inverted, but nobody is watching
            pass


def test_rlock_reentry_is_not_an_inversion():
    r = TrackedRLock("catalog.schema")
    with race_detection() as det:
        with r:
            with r:
                pass
    assert det.violations == []


def test_detector_overhead_when_disabled():
    """The substrate must be near-free when the detector is off: the
    per-op cost is one module-global None check."""
    lock = TrackedLock("db.sessions")

    def spin(n):
        start = time.perf_counter()
        for _ in range(n):
            with lock:
                pass
        return time.perf_counter() - start

    spin(1000)  # warm
    off = spin(20000)
    with race_detection():
        on = spin(20000)
    # absolute bounds: the off path is one module-global None check per
    # op (<50us/op even on a loaded CI box); the on path does real
    # bookkeeping but must stay usable for the stress suites.
    assert off < 1.0, f"disabled path too slow: {off:.3f}s / 20k ops"
    assert on < 5.0, f"enabled path too slow: {on:.3f}s / 20k ops"


def test_abandoned_lock_does_not_poison_detector():
    """A lock abandoned while held (crash-simulation tests do this)
    must not trip later acquisitions once the lock is garbage."""
    with race_detection() as det:
        stale = TrackedLock("fixture.beta", level=220)
        stale.acquire()
        del stale  # never released; only the detector entry remains
        low = TrackedLock("fixture.alpha", level=210)
        with low:  # would descend 220->210 if the stale entry survived
            pass
        assert det.violations == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
