"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench import (CONFIGURATIONS, Measurement, format_table,
                         run_matrix, series_table, time_query,
                         tpch_database)
from repro.bench.harness import _DB_CACHE
from repro import FULL, NAIVE


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["short", 1], ["a-much-longer-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # columns align: cells are padded, so every line has equal width
        assert len({len(line) for line in lines}) == 1

    def test_float_rendering(self):
        text = format_table(["v"], [[0.0123], [0.5], [3.25], [1234.0]])
        assert "12.3ms" in text
        assert "0.500" in text
        assert "3.25" in text
        assert "1234" in text

    def test_series_table_layout(self):
        measurements = [
            Measurement("Q", "full", 0.01, 0.5, 0.0, 1),
            Measurement("Q", "naive", 0.01, 2.0, 0.0, 1),
            Measurement("Q", "full", 0.02, 1.0, 0.0, 1),
            Measurement("Q", "naive", 0.02, 4.0, 0.0, 1),
        ]
        text = series_table(measurements)
        lines = text.splitlines()
        assert lines[0].split()[:3] == ["scale_factor", "full", "naive"]
        assert "0.01" in lines[2]
        assert "0.02" in lines[3]

    def test_series_table_missing_cell(self):
        measurements = [Measurement("Q", "full", 0.01, 0.5, 0.0, 1)]
        text = series_table(measurements)
        assert "-" not in text.splitlines()[0]


class TestTimingHelpers:
    def test_time_query_separates_phases(self):
        db = tpch_database(0.0002, seed=5)
        plan_s, exec_s, rows = time_query(
            db, "select count(*) from orders", FULL, repeat=2)
        assert plan_s >= 0.0 and exec_s > 0.0
        assert rows == 1

    def test_time_query_naive_mode(self):
        db = tpch_database(0.0002, seed=5)
        plan_s, exec_s, rows = time_query(
            db, "select count(*) from orders", NAIVE)
        assert plan_s == 0.0
        assert rows == 1

    def test_database_cache_reuses_instances(self):
        first = tpch_database(0.0002, seed=5)
        second = tpch_database(0.0002, seed=5)
        assert first is second
        different = tpch_database(0.0002, seed=6)
        assert different is not first

    def test_run_matrix_shape(self):
        measurements = run_matrix("select count(*) from region", "count",
                                  [0.0002], modes=(FULL,))
        assert len(measurements) == 1
        assert measurements[0].mode == "full"
        assert measurements[0].row_count == 1

    def test_configurations_cover_paper_axis(self):
        names = [m.name for m in CONFIGURATIONS]
        assert names == ["full", "decorrelate_only", "correlated"]
