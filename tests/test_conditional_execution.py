"""Paper Section 2.4 — conditional scalar execution.

"The point is, <value2> should not be evaluated when <cond> is true.
Therefore, eager execution of a subquery, say contained in <value2>, is
incorrect, in particular if it happens to generate a run-time error.
To deal with this scenario, we use a modified version of Apply with
conditional execution of the parameterized expression."

The setup: a CASE whose non-taken branch holds a scalar subquery that
WOULD raise the Max1row error if evaluated.  The query must succeed, in
every execution mode, and the guarded Apply must survive normalization.
"""

from collections import Counter

import pytest

from repro import (CORRELATED, DECORRELATE_ONLY, FULL, NAIVE, Database,
                   DataType, SubqueryReturnedMultipleRows)
from repro.algebra import Apply, collect_nodes
from repro.core.normalize import normalize
from repro.sql import parse


@pytest.fixture
def db():
    database = Database()
    database.create_table("customer",
                          [("c_custkey", DataType.INTEGER, False),
                           ("c_kind", DataType.VARCHAR, False)],
                          primary_key=("c_custkey",))
    database.create_table("orders",
                          [("o_orderkey", DataType.INTEGER, False),
                           ("o_custkey", DataType.INTEGER, False),
                           ("o_totalprice", DataType.FLOAT, False)],
                          primary_key=("o_orderkey",))
    database.insert("customer", [(1, "single"), (2, "multi")])
    # customer 1 has exactly one order; customer 2 has two.
    database.insert("orders", [(10, 1, 5.0), (20, 2, 7.0), (21, 2, 9.0)])
    return database


# The ELSE branch's subquery returns 2 rows for customer 2 — evaluating it
# there would raise; the CASE only reaches it for customer 1.
GUARDED = """
    select c_custkey,
           case when c_kind = 'multi'
                then (select sum(o_totalprice) from orders
                      where o_custkey = c_custkey)
                else (select o_totalprice from orders
                      where o_custkey = c_custkey)
           end as price
    from customer
"""


class TestConditionalScalarExecution:
    def test_all_modes_succeed_and_agree(self, db):
        reference = db.execute(GUARDED, NAIVE)
        assert Counter(reference.rows) == Counter([(1, 5.0), (2, 16.0)])
        for mode in (FULL, DECORRELATE_ONLY, CORRELATED):
            assert Counter(db.execute(GUARDED, mode).rows) == \
                Counter(reference.rows)

    def test_eager_branch_would_raise(self, db):
        # Sanity: without the CASE guard the subquery IS an error.
        bare = """select c_custkey,
                         (select o_totalprice from orders
                          where o_custkey = c_custkey)
                  from customer"""
        with pytest.raises(SubqueryReturnedMultipleRows):
            db.execute(bare, FULL)

    def test_guarded_apply_survives_normalization(self, db):
        bound = db._binder.bind(parse(GUARDED))
        normalized = normalize(bound.rel)
        guarded = [a for a in collect_nodes(
            normalized, lambda n: isinstance(n, Apply)) if a.guard is not None]
        assert guarded, "expected a guarded Apply for the CASE branch"

    def test_then_branch_also_guarded(self, db):
        """The THEN subquery must not run when the condition is false —
        here the THEN branch errors for 'multi' customers but the
        condition routes them to ELSE."""
        flipped = """
            select c_custkey,
                   case when c_kind = 'single'
                        then (select o_totalprice from orders
                              where o_custkey = c_custkey)
                        else (select sum(o_totalprice) from orders
                              where o_custkey = c_custkey)
                   end
            from customer"""
        for mode in (NAIVE, FULL, DECORRELATE_ONLY, CORRELATED):
            assert Counter(db.execute(flipped, mode).rows) == \
                Counter([(1, 5.0), (2, 16.0)])

    def test_multiple_when_branches(self, db):
        sql = """
            select c_custkey,
                   case when c_kind = 'nope' then 0.0
                        when c_kind = 'single'
                             then (select o_totalprice from orders
                                   where o_custkey = c_custkey)
                        else -1.0
                   end
            from customer"""
        for mode in (NAIVE, FULL):
            assert Counter(db.execute(sql, mode).rows) == \
                Counter([(1, 5.0), (2, -1.0)])

    def test_case_without_subquery_unaffected(self, db):
        sql = """select case when c_kind = 'multi' then 1 else 0 end
                 from customer"""
        assert Counter(db.execute(sql, FULL).rows) == \
            Counter([(0,), (1,)])

    def test_nested_case_guards_compose(self, db):
        sql = """
            select c_custkey,
                   case when c_kind = 'multi' then
                        case when c_custkey = 2
                             then (select sum(o_totalprice) from orders
                                   where o_custkey = c_custkey)
                             else (select o_totalprice from orders
                                   where o_custkey = c_custkey)
                        end
                   else 0.0
                   end
            from customer"""
        for mode in (NAIVE, FULL):
            assert Counter(db.execute(sql, mode).rows) == \
                Counter([(1, 0.0), (2, 16.0)])
