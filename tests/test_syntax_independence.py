"""Experiment E7 — syntax independence (paper Section 1.2).

The three equivalent SQL formulations of the Section 1.1 query must
produce the same optimized execution strategy and identical results.
Plan comparison ignores column identities and pass-through projection
wrappers (cosmetic); the operator skeleton — which table is scanned,
where the aggregate sits, which access path joins customers — must match.
"""

import re

import pytest

from repro import FULL, Database, DataType
from repro.physical import explain_physical
from repro.tpch import paper_example_formulations


def plan_skeleton(plan) -> str:
    text = re.sub(r"#\d+", "#x", explain_physical(plan))
    lines = [line.strip() for line in text.splitlines()
             if not line.strip().startswith("ComputeScalar(")]
    return "\n".join(lines)


@pytest.fixture(scope="module")
def db() -> Database:
    database = Database()
    database.create_table(
        "customer",
        [("c_custkey", DataType.INTEGER, False),
         ("c_name", DataType.VARCHAR, False)],
        primary_key=("c_custkey",))
    database.create_table(
        "orders",
        [("o_orderkey", DataType.INTEGER, False),
         ("o_custkey", DataType.INTEGER, False),
         ("o_totalprice", DataType.FLOAT, False)],
        primary_key=("o_orderkey",))
    database.create_index("ix_orders_custkey", "orders", ["o_custkey"])
    database.insert("customer",
                    [(i, f"c{i}") for i in range(1, 201)])
    rows = []
    key = 0
    for c in range(1, 201):
        for j in range(8):
            key += 1
            rows.append((key, c, float(((c * 7 + j) % 50) * 40000)))
    database.insert("orders", rows)
    return database


def test_three_formulations_one_plan(db):
    formulations = paper_example_formulations(500000.0)
    skeletons = {}
    results = {}
    for label, sql in formulations.items():
        skeletons[label] = plan_skeleton(db.plan(sql, FULL))
        results[label] = sorted(db.execute(sql, FULL).rows)

    reference_label = next(iter(formulations))
    for label in formulations:
        assert results[label] == results[reference_label]
        assert skeletons[label] == skeletons[reference_label], (
            f"{label} diverged:\n{skeletons[label]}\n--- vs ---\n"
            f"{skeletons[reference_label]}")


def test_results_nonempty(db):
    # guard against a trivially-empty comparison
    sql = next(iter(paper_example_formulations(500000.0).values()))
    assert len(db.execute(sql, FULL).rows) > 0
