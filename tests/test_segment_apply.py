"""Experiment E3 — SegmentApply (paper Section 3.4, Figures 6/7).

Shape tests for introduction and join pushdown, plus property-based
semantics preservation: every variant produced by ``segment_alternatives``
must return the same rows as the original tree on randomized data.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (AggregateCall, AggregateFunction, Arithmetic,
                           Column, ColumnRef, Comparison, DataType, Get,
                           GroupBy, Join, JoinKind, Literal, Project,
                           SegmentApply, Select, collect_nodes, equals)
from repro.core.optimizer.segment import (push_join_below_segment_apply,
                                          segment_alternatives)
from repro.executor import NaiveInterpreter


def run(tree, data):
    return Counter(NaiveInterpreter(lambda name: data[name]).run(tree))


def lineitem_get():
    pk = Column("partkey", DataType.INTEGER, nullable=False)
    qty = Column("qty", DataType.INTEGER, nullable=False)
    price = Column("price", DataType.INTEGER, nullable=False)
    return Get("li", [pk, qty, price], []), pk, qty, price


def part_get():
    pk = Column("p_partkey", DataType.INTEGER, nullable=False)
    brand = Column("p_brand", DataType.INTEGER, nullable=False)
    return Get("part", [pk, brand], [[pk]]), pk, brand


def q17_shape(with_part=True, brand=1):
    """The decorrelated-and-pushed-down Q17 pattern:
    Select(qty < x)(π(Join(outer, G_[l2pk](li2), l2pk = …)))."""
    li, lpk, lqty, lprice = lineitem_get()
    li2, l2pk, l2qty, l2price = lineitem_get()

    avg_out = Column("x", DataType.FLOAT)
    grouped = GroupBy(li2, [l2pk], [(avg_out, AggregateCall(
        AggregateFunction.AVG, ColumnRef(l2qty)))])

    if with_part:
        part, ppk, pbrand = part_get()
        outer = Join(JoinKind.INNER,
                     li,
                     Select(part, equals(pbrand, Literal(brand))),
                     equals(lpk, ppk))
        join = Join(JoinKind.INNER, outer, grouped, equals(l2pk, ppk))
    else:
        join = Join(JoinKind.INNER, li, grouped, equals(l2pk, lpk))

    filtered = Select(join, Comparison(
        "<", ColumnRef(lqty), ColumnRef(avg_out)))
    total = Column("total", DataType.INTEGER)
    return GroupBy(filtered, [], [(total, AggregateCall(
        AggregateFunction.SUM, ColumnRef(lprice)))])


li_rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(1, 9), st.integers(1, 5)),
    max_size=14)
part_rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 2)),
    max_size=5, unique_by=lambda row: row[0])


class TestIntroductionShapes:
    def test_direct_figure6_match(self):
        tree = q17_shape(with_part=False)
        variants = segment_alternatives(tree)
        assert variants
        assert any(collect_nodes(v, lambda n: isinstance(n, SegmentApply))
                   for v in variants)

    def test_figure7_through_intermediate_join(self):
        tree = q17_shape(with_part=True)
        variants = segment_alternatives(tree)
        assert variants
        segment_nodes = [n for v in variants
                         for n in collect_nodes(
                             v, lambda n: isinstance(n, SegmentApply))]
        assert segment_nodes
        # The Figure 7 form keeps the part join INSIDE the segment input.
        assert any(collect_nodes(sa.left, lambda n: isinstance(n, Get)
                                 and n.table_name == "part")
                   for sa in segment_nodes)

    def test_no_match_without_equality(self):
        li, lpk, lqty, lprice = lineitem_get()
        li2, l2pk, l2qty, l2price = lineitem_get()
        avg_out = Column("x", DataType.FLOAT)
        grouped = GroupBy(li2, [l2pk], [(avg_out, AggregateCall(
            AggregateFunction.AVG, ColumnRef(l2qty)))])
        join = Join(JoinKind.INNER, li, grouped,
                    Comparison("<", ColumnRef(lpk), ColumnRef(l2pk)))
        assert segment_alternatives(join) == []

    def test_no_match_for_different_tables(self):
        li, lpk, lqty, lprice = lineitem_get()
        part, ppk, pbrand = part_get()
        avg_out = Column("x", DataType.FLOAT)
        grouped = GroupBy(part, [ppk], [(avg_out, AggregateCall(
            AggregateFunction.AVG, ColumnRef(pbrand)))])
        join = Join(JoinKind.INNER, li, grouped, equals(ppk, lpk))
        assert segment_alternatives(join) == []


class TestSemanticsPreservation:
    @settings(max_examples=60, deadline=None)
    @given(li=li_rows)
    def test_direct_introduction_preserves(self, li):
        tree = q17_shape(with_part=False)
        data = {"li": li, "part": []}
        baseline = run(tree, data)
        for variant in segment_alternatives(tree):
            assert run(variant, data) == baseline

    @settings(max_examples=60, deadline=None)
    @given(li=li_rows, part=part_rows, brand=st.integers(0, 2))
    def test_figure7_preserves(self, li, part, brand):
        tree = q17_shape(with_part=True, brand=brand)
        data = {"li": li, "part": part}
        baseline = run(tree, data)
        variants = segment_alternatives(tree)
        for variant in variants:
            assert run(variant, data) == baseline

    @settings(max_examples=60, deadline=None)
    @given(li=li_rows, part=part_rows)
    def test_join_pushdown_below_segment_apply(self, li, part):
        """Section 3.4.2 as a standalone rewrite: introduce on the bare
        join, then push an outer join below the SegmentApply."""
        li_get, lpk, lqty, lprice = lineitem_get()
        li2, l2pk, l2qty, l2price = lineitem_get()
        avg_out = Column("x", DataType.FLOAT)
        grouped = GroupBy(li2, [l2pk], [(avg_out, AggregateCall(
            AggregateFunction.AVG, ColumnRef(l2qty)))])
        inner_join = Join(JoinKind.INNER, li_get, grouped,
                          equals(l2pk, lpk))
        variants = segment_alternatives(inner_join)
        assert variants
        data = {"li": li, "part": part}

        part_get_op, ppk, pbrand = part_get()
        for variant in variants:
            sas = collect_nodes(variant,
                                lambda n: isinstance(n, SegmentApply))
            if not sas:
                continue
            # wrap: Join(variant, part) on the segment column
            seg_col = sas[0].segment_columns[0]
            outer = Join(JoinKind.INNER, variant, part_get_op,
                         equals(seg_col, ppk))
            baseline = run(outer, data)

            inner_variant = variant
            # variant may be Project(SegmentApply); find the SA child to
            # push into when the join is directly above it.
            if isinstance(inner_variant, Project):
                sa = inner_variant.child
            else:
                sa = inner_variant
            if not isinstance(sa, SegmentApply):
                continue
            direct = Join(JoinKind.INNER, sa, part_get_op,
                          equals(sa.segment_columns[0], ppk))
            pushed = push_join_below_segment_apply(direct, sa, part_get_op)
            assert pushed is not None
            assert run(pushed, data) == run(direct, data)

    def test_pushdown_requires_segment_scope(self):
        """A join predicate touching non-segment inner columns blocks the
        Section 3.4.2 rewrite."""
        li_get, lpk, lqty, lprice = lineitem_get()
        li2, l2pk, l2qty, l2price = lineitem_get()
        avg_out = Column("x", DataType.FLOAT)
        grouped = GroupBy(li2, [l2pk], [(avg_out, AggregateCall(
            AggregateFunction.AVG, ColumnRef(l2qty)))])
        inner_join = Join(JoinKind.INNER, li_get, grouped,
                          equals(l2pk, lpk))
        (variant, *_rest) = segment_alternatives(inner_join)
        sa = variant.child if isinstance(variant, Project) else variant
        assert isinstance(sa, SegmentApply)
        part_get_op, ppk, pbrand = part_get()
        # join on the aggregate output x — not a segment column
        x_col = next(c for c in sa.output_columns() if c.name == "x")
        bad = Join(JoinKind.INNER, sa, part_get_op,
                   Comparison("<", ColumnRef(x_col), ColumnRef(ppk)))
        assert push_join_below_segment_apply(bad, sa, part_get_op) is None
