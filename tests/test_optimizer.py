"""Unit tests for the cost-based optimizer: pushdown, rules, cardinality,
memo behaviour, index selection and segmented execution."""

import pytest

from repro import Database, DataType, FULL
from repro.algebra import (AggregateCall, AggregateFunction, Column,
                           ColumnRef, Comparison, Get, GroupBy, Join,
                           JoinKind, Literal, LocalGroupBy, Project,
                           ScalarGroupBy, SegmentApply, Select,
                           collect_nodes, equals, explain)
from repro.core.optimizer import (Estimator, OptimizerConfig,
                                  push_selections, segment_alternatives)
from repro.core.optimizer.rules import (GroupByPushBelowJoin,
                                        GroupByPullAboveJoin,
                                        JoinAssociate, JoinCommute,
                                        LocalGlobalSplit,
                                        SemiJoinGroupByReorder,
                                        SemiJoinToJoinDistinct)
from repro.catalog.statistics import TableStats, ColumnStats
from repro.physical.plan import (PHashJoin, PIndexSeek, PNLApply,
                                 PSegmentApply, PTableScan)

from .helpers import customer_scan, orders_scan


def no_stats(name):
    return None


class TestPushSelections:
    def test_filter_sinks_into_join_side(self):
        cust, (ck, cn, cnk) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        tree = Select(Join.cross(cust, orders),
                      Comparison("<", ColumnRef(price), Literal(10.0)))
        pushed = push_selections(tree)
        # The filter must now be below the join, over orders.
        selects = collect_nodes(pushed, lambda n: isinstance(n, Select))
        assert len(selects) == 1
        assert isinstance(selects[0].child, Get)
        assert selects[0].child.table_name == "orders"

    def test_equality_becomes_join_predicate(self):
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        tree = Select(Join.cross(cust, orders), equals(ock, ck))
        pushed = push_selections(tree)
        join = collect_nodes(pushed, lambda n: isinstance(n, Join))[0]
        assert join.predicate is not None

    def test_filter_through_groupby_on_group_columns(self):
        orders, (ok, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(orders, [ock], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        tree = Select(gb, equals(ock, Literal(7)))
        pushed = push_selections(tree)
        # filter on group column sinks below the GroupBy
        assert isinstance(pushed, GroupBy)
        assert isinstance(pushed.child, Select)

    def test_aggregate_filter_stays_above(self):
        orders, (ok, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(orders, [ock], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        tree = Select(gb, Comparison("<", Literal(100.0), ColumnRef(total)))
        pushed = push_selections(tree)
        assert isinstance(pushed, Select)
        assert isinstance(pushed.child, GroupBy)

    def test_left_only_filter_not_pushed_into_loj_on_clause(self):
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        tree = Select(loj, equals(ck, Literal(1)))
        pushed = push_selections(tree)
        # left-side filter pushes into the left child, join stays LOJ
        join = collect_nodes(pushed, lambda n: isinstance(n, Join))[0]
        assert join.kind is JoinKind.LEFT_OUTER
        assert isinstance(join.left, Select)

    def test_right_side_filter_stays_above_loj(self):
        cust, _ = customer_scan()
        orders, (_, _, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders)
        tree = Select(loj, Comparison(">", ColumnRef(price), Literal(5.0)))
        pushed = push_selections(tree)
        assert isinstance(pushed, Select)  # cannot sink past padding


class TestRules:
    def _gb_over_join(self):
        cust, (ck, cn, cnk) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        join = Join(JoinKind.INNER, cust, orders, equals(ock, ck))
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(join, [ck, cn, cnk],
                     [(total, AggregateCall(AggregateFunction.SUM,
                                            ColumnRef(price)))])
        return gb, join, ck, ock, price, total

    def test_groupby_push_below_join(self):
        gb, join, ck, ock, price, total = self._gb_over_join()
        results = GroupByPushBelowJoin().apply(gb, memo=None)
        assert results
        inner_gbs = [n for r in results
                     for n in collect_nodes(r, lambda n: isinstance(n, GroupBy))]
        # some variant groups the orders side by o_custkey
        assert any(ock.cid in {c.cid for c in g.group_columns}
                   for g in inner_gbs)

    def test_groupby_push_requires_key(self):
        """Without a key on the preserved side the rule must not fire."""
        cust, (ck, cn, cnk) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        no_key_cust = Get("customer2", [c.fresh_copy() for c in (ck, cn, cnk)])
        join = Join(JoinKind.INNER, no_key_cust, orders,
                    equals(ock, no_key_cust.columns[0]))
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(join, [no_key_cust.columns[0]],
                     [(total, AggregateCall(AggregateFunction.SUM,
                                            ColumnRef(price)))])
        assert GroupByPushBelowJoin().apply(gb, memo=None) == []

    def test_groupby_push_rejects_count_star(self):
        """count(*) counts join multiplicity; pushing it below is wrong."""
        gb, join, ck, ock, price, total = self._gb_over_join()
        cnt = Column("cnt", DataType.INTEGER)
        gb2 = GroupBy(join, gb.group_columns,
                      [(cnt, AggregateCall(AggregateFunction.COUNT_STAR))])
        assert GroupByPushBelowJoin().apply(gb2, memo=None) == []

    def test_groupby_push_below_outerjoin_adds_computing_project(self):
        """Section 3.2: count below LOJ needs the computing project."""
        cust, (ck, cn, cnk) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        cnt = Column("cnt", DataType.INTEGER)
        gb = GroupBy(loj, [ck, cn, cnk],
                     [(cnt, AggregateCall(AggregateFunction.COUNT,
                                          ColumnRef(price)))])
        results = GroupByPushBelowJoin().apply(gb, memo=None)
        assert results
        (result,) = results
        assert isinstance(result, Project)
        # the project computes (not merely forwards) the count column
        computed = [c for c, e in result.items
                    if not (isinstance(e, ColumnRef) and e.column == c)]
        assert any(c.cid == cnt.cid for c in computed)

    def test_groupby_push_below_outerjoin_sum_no_project(self):
        """sum(NULL padding) is already NULL — no computing project."""
        cust, (ck, cn, cnk) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        loj = Join(JoinKind.LEFT_OUTER, cust, orders, equals(ock, ck))
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(loj, [ck, cn, cnk],
                     [(total, AggregateCall(AggregateFunction.SUM,
                                            ColumnRef(price)))])
        results = GroupByPushBelowJoin().apply(gb, memo=None)
        assert results
        (result,) = results
        joins = collect_nodes(result, lambda n: isinstance(n, Join))
        assert joins[0].kind is JoinKind.LEFT_OUTER

    def test_groupby_pull_above_join(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(orders, [ock], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        join = Join(JoinKind.INNER, cust, gb, equals(ock, ck))
        results = GroupByPullAboveJoin().apply(join, memo=None)
        assert results
        pulled_gb = collect_nodes(results[0],
                                  lambda n: isinstance(n, GroupBy))[0]
        assert ck.cid in {c.cid for c in pulled_gb.group_columns}

    def test_pull_blocked_when_predicate_uses_aggregate(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(orders, [ock], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        join = Join(JoinKind.INNER, cust, gb,
                    Comparison("<", ColumnRef(total), Literal(5.0)))
        assert GroupByPullAboveJoin().apply(join, memo=None) == []

    def test_join_commute_wraps_in_project(self):
        cust, _ = customer_scan()
        orders, _ = orders_scan()
        join = Join.cross(cust, orders)
        (result,) = JoinCommute().apply(join, memo=None)
        assert isinstance(result, Project)
        assert [c.cid for c in result.output_columns()] == \
            [c.cid for c in join.output_columns()]

    def test_join_associate_distributes_conjuncts(self):
        a, (ak, _, _) = customer_scan()
        b, (bk, bck, _) = orders_scan()
        c, (ck2, cck, _) = orders_scan()
        inner = Join(JoinKind.INNER, a, b, equals(bck, ak))
        outer = Join(JoinKind.INNER, inner, c, equals(cck, bck))
        (result,) = JoinAssociate().apply(outer, memo=None)
        joins = collect_nodes(result, lambda n: isinstance(n, Join))
        # rotated: bottom join is (b, c) with the b-c conjunct
        bottom = joins[-1]
        assert {col.cid for col in bottom.predicate.free_columns()} == \
            {cck.cid, bck.cid}

    def test_semijoin_groupby_reorder(self):
        orders, (ok, ock, price) = orders_scan()
        cust, (ck, _, _) = customer_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(orders, [ock], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        semi = Join(JoinKind.LEFT_SEMI, gb, cust, equals(ock, ck))
        (result,) = SemiJoinGroupByReorder().apply(semi, memo=None)
        assert isinstance(result, GroupBy)
        assert isinstance(result.child, Join)
        assert result.child.kind is JoinKind.LEFT_SEMI

    def test_semijoin_to_join_distinct(self):
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        semi = Join(JoinKind.LEFT_SEMI, cust, orders, equals(ock, ck))
        (result,) = SemiJoinToJoinDistinct().apply(semi, memo=None)
        assert isinstance(result, GroupBy)
        assert result.aggregates == []
        inner = collect_nodes(result, lambda n: isinstance(n, Join))[0]
        assert inner.kind is JoinKind.INNER

    def test_local_global_split(self):
        orders, (ok, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        avg_col = Column("avgp", DataType.FLOAT)
        gb = GroupBy(orders, [ock],
                     [(total, AggregateCall(AggregateFunction.SUM,
                                            ColumnRef(price))),
                      (avg_col, AggregateCall(AggregateFunction.AVG,
                                              ColumnRef(price)))])
        (result,) = LocalGlobalSplit().apply(gb, memo=None)
        locals_ = collect_nodes(result,
                                lambda n: isinstance(n, LocalGroupBy))
        assert len(locals_) == 1
        # avg split requires a finalizing projection (sum/count)
        assert isinstance(result, Project)
        out = [c.cid for c in result.output_columns()]
        assert out == [ock.cid, total.cid, avg_col.cid]

    def test_local_global_split_skips_distinct(self):
        orders, (ok, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(orders, [ock],
                     [(total, AggregateCall(AggregateFunction.SUM,
                                            ColumnRef(price), distinct=True))])
        assert LocalGlobalSplit().apply(gb, memo=None) == []


class TestEstimator:
    def _stats(self, name):
        if name == "orders":
            return TableStats(10000, {
                "o_orderkey": ColumnStats(10000, 0, 1, 10000),
                "o_custkey": ColumnStats(1000, 0, 1, 1000),
                "o_totalprice": ColumnStats(5000, 0, 1.0, 500000.0)})
        if name == "customer":
            return TableStats(1000, {
                "c_custkey": ColumnStats(1000, 0, 1, 1000),
                "c_name": ColumnStats(1000, 0, None, None),
                "c_nationkey": ColumnStats(25, 0, 0, 24)})
        return None

    def test_scan_estimate(self):
        orders, _ = orders_scan()
        est = Estimator(self._stats).estimate(orders)
        assert est.rows == 10000

    def test_equality_selectivity(self):
        orders, (_, ock, _) = orders_scan()
        sel = Select(orders, equals(ock, Literal(5)))
        est = Estimator(self._stats).estimate(sel)
        assert est.rows == pytest.approx(10.0)

    def test_join_estimate_uses_max_ndv(self):
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        join = Join(JoinKind.INNER, cust, orders, equals(ock, ck))
        est = Estimator(self._stats).estimate(join)
        # 1000 * 10000 / max(1000, 1000) = 10000
        assert est.rows == pytest.approx(10000.0)

    def test_groupby_estimate(self):
        orders, (_, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(orders, [ock], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        est = Estimator(self._stats).estimate(gb)
        assert est.rows == pytest.approx(1000.0)

    def test_range_estimate(self):
        orders, (ok, _, _) = orders_scan()
        sel = Select(orders, Comparison("<", ColumnRef(ok), Literal(2500)))
        est = Estimator(self._stats).estimate(sel)
        assert 1500 < est.rows < 3500

    def test_semi_join_bounded_by_left(self):
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        semi = Join(JoinKind.LEFT_SEMI, cust, orders, equals(ock, ck))
        est = Estimator(self._stats).estimate(semi)
        assert est.rows <= 1000


class TestPhysicalChoices:
    def _db(self, customers=5, orders_per_customer=200, with_index=True):
        db = Database()
        db.create_table("customer",
                        [("c_custkey", DataType.INTEGER, False),
                         ("c_acctbal", DataType.FLOAT, False)],
                        primary_key=("c_custkey",))
        db.create_table("orders",
                        [("o_orderkey", DataType.INTEGER, False),
                         ("o_custkey", DataType.INTEGER, False),
                         ("o_totalprice", DataType.FLOAT, False)],
                        primary_key=("o_orderkey",))
        if with_index:
            db.create_index("ix_o_ck", "orders", ["o_custkey"])
        db.insert("customer",
                  [(i, float(i)) for i in range(1, customers + 1)])
        rows = []
        key = 0
        for c in range(1, customers + 1):
            for _ in range(orders_per_customer):
                key += 1
                rows.append((key, c, float(key % 97)))
        db.insert("orders", rows)
        return db

    def test_hash_join_used_for_large_equijoin(self):
        # Without a secondary index, the equijoin must run as a hash join.
        db = self._db(customers=500, orders_per_customer=20,
                      with_index=False)
        plan = db.plan("""select c_custkey, o_orderkey from customer, orders
                          where o_custkey = c_custkey""")
        kinds = {type(n).__name__ for n in _walk_plan(plan)}
        assert "PHashJoin" in kinds

    def test_index_apply_for_selective_outer(self):
        """Tiny outer + index on the inner: correlated index-lookup join
        should win (paper: re-introduction of correlated execution)."""
        db = self._db(customers=3, orders_per_customer=5000)
        plan = db.plan("""select c_custkey, o_orderkey from customer, orders
                          where o_custkey = c_custkey
                            and c_custkey = 2""")
        nodes = list(_walk_plan(plan))
        assert any(isinstance(n, PIndexSeek) for n in nodes)
        assert any(isinstance(n, PNLApply) for n in nodes)

    def test_index_apply_disabled_by_config(self):
        from repro.database import ExecutionMode
        db = self._db(customers=3, orders_per_customer=5000)
        mode = ExecutionMode(
            "no_index", optimizer_config=OptimizerConfig(index_apply=False))
        # index_apply is controlled in the implementer; with the flag off
        # no PIndexSeek may appear under a join.
        plan = db.plan("""select c_custkey, o_orderkey from customer, orders
                          where o_custkey = c_custkey
                            and c_custkey = 2""", mode)
        joins_with_seek = [
            n for n in _walk_plan(plan)
            if isinstance(n, PNLApply)
            and any(isinstance(c, PIndexSeek) for c in n.children)]
        assert not joins_with_seek


class TestSegmentAlternatives:
    def test_q17_pattern_generates_segment_apply(self):
        db = Database()
        db.create_table("lineitem",
                        [("l_orderkey", DataType.INTEGER, False),
                         ("l_partkey", DataType.INTEGER, False),
                         ("l_linenumber", DataType.INTEGER, False),
                         ("l_quantity", DataType.FLOAT, False)],
                        primary_key=("l_orderkey", "l_linenumber"))
        db.create_table("part",
                        [("p_partkey", DataType.INTEGER, False),
                         ("p_brand", DataType.VARCHAR, False)],
                        primary_key=("p_partkey",))
        rows = [(i // 3 + 1, i % 10 + 1, i % 3 + 1, float(i % 7 + 1))
                for i in range(600)]
        db.insert("lineitem", rows)
        db.insert("part", [(i, f"Brand#{i % 3}") for i in range(1, 11)])
        plan = db.plan("""
            select sum(l_quantity) from lineitem, part
            where p_partkey = l_partkey and p_brand = 'Brand#1'
              and l_quantity < (select 0.5 * avg(l2.l_quantity)
                                from lineitem l2
                                where l2.l_partkey = p_partkey)""")
        assert any(isinstance(n, PSegmentApply) for n in _walk_plan(plan))

    def test_segment_apply_disabled_by_config(self):
        from repro.database import ExecutionMode
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER, False),
                              ("b", DataType.FLOAT, False)])
        db.insert("t", [(i % 5, float(i)) for i in range(100)])
        mode = ExecutionMode(
            "noseg", optimizer_config=OptimizerConfig(segment_apply=False))
        plan = db.plan("""
            select sum(b) from t
            where b < (select avg(t2.b) from t t2 where t2.a = t.a)""", mode)
        assert not any(isinstance(n, PSegmentApply)
                       for n in _walk_plan(plan))


def _walk_plan(plan):
    yield plan
    for child in plan.children:
        yield from _walk_plan(child)
