"""Differential tests: normalization must preserve query semantics.

Every query is executed twice through the naive interpreter — once on the
bound (correlated, Figure-3 form) tree and once on the normalized tree —
and the multisets of result rows must coincide.  Data includes NULLs,
empty-group and empty-subquery cases to exercise the count bug and 3VL
edge cases.  A hypothesis section randomizes the data.
"""

import datetime
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binder import Binder
from repro.core.normalize import NormalizeConfig, normalize
from repro.executor import NaiveInterpreter
from repro.sql import parse

D = datetime.date


BASE_DATA = {
    "customer": [
        (1, "alice", 10, 100.0),
        (2, "bob", 20, 200.0),
        (3, "carol", 10, 50.0),
        (4, "dave", 30, 0.0),      # no orders at all
    ],
    "orders": [
        (100, 1, 600000.0, D(1996, 1, 2), "1-URGENT"),
        (101, 1, 500000.0, D(1996, 2, 2), "2-HIGH"),
        (102, 2, 100.0, D(1997, 1, 2), "1-URGENT"),
        (103, 3, 999999.0, D(1995, 5, 5), "3-LOW"),
    ],
    "lineitem": [
        (100, 7, 1, 1, 17.0, 1000.0),
        (100, 8, 1, 2, 36.0, 2000.0),
        (101, 7, 2, 1, 2.0, 100.0),
        (103, 9, 3, 1, 28.0, 3000.0),
    ],
    "part": [
        (7, "blue part", "Brand#23", "MED BOX", 10.0),
        (8, "red part", "Brand#13", "LG BOX", 20.0),
        (9, "green part", "Brand#23", "MED BOX", 30.0),
        (10, "lonely part", "Brand#42", "SM BOX", 40.0),  # no lineitems
    ],
    "supplier": [
        (1, "acme", 1000.0),
        (2, "globex", -50.0),
        (3, "initech", 0.0),
    ],
    "partsupp": [
        (7, 1, 5.0, 100),
        (7, 2, 3.0, 50),
        (8, 1, 8.0, 10),
        (9, 3, 1.0, 999),
        (10, 2, 2.0, 7),
    ],
    "nully": [
        (1, None, 2),
        (2, 3, None),
        (3, None, None),
        (4, 5, 5),
        (5, 2, 1),
    ],
}


QUERIES = [
    # the paper's running example, all three formulations
    """select c_custkey from customer
       where 1000000 < (select sum(o_totalprice) from orders
                        where o_custkey = c_custkey)""",
    """select c_custkey
       from customer left outer join orders on o_custkey = c_custkey
       group by c_custkey having 1000000 < sum(o_totalprice)""",
    """select c_custkey
       from customer, (select o_custkey from orders group by o_custkey
                       having 1000000 < sum(o_totalprice)) as agg
       where o_custkey = c_custkey""",
    # scalar subquery in select list (outer apply; NULL on empty)
    """select c_name, (select sum(o_totalprice) from orders
                       where o_custkey = c_custkey) from customer""",
    # count(*) correlated — the classic count-bug query
    """select c_custkey from customer
       where 2 <= (select count(*) from orders
                   where o_custkey = c_custkey)""",
    """select c_name, (select count(*) from orders
                       where o_custkey = c_custkey) from customer""",
    # exists / not exists
    """select c_custkey from customer
       where exists (select * from orders where o_custkey = c_custkey)""",
    """select c_custkey from customer
       where not exists (select * from orders
                         where o_custkey = c_custkey)""",
    # IN / NOT IN with NULLs on both sides
    """select n_id from nully
       where n_a in (select n_b from nully)""",
    """select n_id from nully
       where n_a not in (select n_b from nully)""",
    """select n_id from nully
       where n_a not in (select n_b from nully where n_b is not null)""",
    # quantified comparisons
    """select c_custkey from customer
       where c_acctbal >= all (select c_acctbal from customer)""",
    """select n_id from nully where n_a > all (select n_b from nully)""",
    """select n_id from nully
       where n_a > all (select n_b from nully where n_b is not null)""",
    """select n_id from nully where n_a = any (select n_b from nully)""",
    # existential under OR → count rewrite
    """select c_custkey from customer
       where exists (select * from orders where o_custkey = c_custkey)
          or c_acctbal > 150.0""",
    """select n_id from nully
       where n_a in (select n_b from nully) or n_a is null""",
    # uncorrelated scalar
    """select c_custkey from customer
       where c_acctbal > (select avg(c_acctbal) from customer)""",
    # key-lookup scalar subquery (Max1row elided)
    """select o_orderkey, (select c_name from customer
                           where c_custkey = o_custkey) from orders""",
    # nested correlation through two levels
    """select c_custkey from customer
       where c_acctbal < (select sum(o_totalprice) from orders
                          where o_custkey = c_custkey
                            and exists (select * from lineitem
                                        where l_orderkey = o_orderkey))""",
    # TPC-H Q17 shape
    """select sum(l_extendedprice) / 7.0 as avg_yearly
       from lineitem, part
       where p_partkey = l_partkey and p_brand = 'Brand#23'
         and p_container = 'MED BOX'
         and l_quantity < (select 0.2 * avg(l_quantity) from lineitem l2
                           where l2.l_partkey = p_partkey)""",
    # correlated min over a join (TPC-H Q2 shape)
    """select s_name from supplier, partsupp
       where s_suppkey = ps_suppkey
         and ps_supplycost = (select min(ps_supplycost)
                              from partsupp ps2, supplier s2
                              where ps2.ps_partkey = partsupp.ps_partkey
                                and s2.s_suppkey = ps2.ps_suppkey)""",
    # class 2: union all inside correlated subquery (paper example)
    """select ps_partkey from partsupp
       where 100.0 > (select sum(s_acctbal) from
                      (select s_acctbal from supplier
                       where s_suppkey = ps_suppkey
                       union all
                       select p_retailprice from part
                       where p_partkey = ps_partkey) as u)""",
    # aggregation over semijoin result
    """select o_orderpriority, count(*) from orders
       where exists (select * from lineitem where l_orderkey = o_orderkey)
       group by o_orderpriority""",
    # correlated subquery in HAVING
    """select o_custkey from orders group by o_custkey
       having sum(o_totalprice) > (select avg(o_totalprice) from orders)""",
    # distinct + correlation
    """select distinct c_nationkey from customer
       where exists (select * from orders where o_custkey = c_custkey)""",
    # regression (found by fuzzing): NOT IN under OR forces the count
    # rewrite whose unknown-counter has a NON-STRICT aggregate argument;
    # identity (9) must probe-guard it or padded rows miscount.
    """select n_a from nully
       where n_a = 0 or n_a not in (select n_b from nully where n_b = 0)""",
    """select n_id from nully
       where n_b = 1 or n_a in (select n_b from nully where n_b > 1)""",
    # subquery inside an aggregate argument (computed per input row,
    # Apply below the GroupBy)
    """select sum(c_acctbal * (select count(*) from orders
                               where o_custkey = c_custkey))
       from customer""",
    """select c_nationkey,
              max((select sum(o_totalprice) from orders
                   where o_custkey = c_custkey))
       from customer group by c_nationkey""",
]


def run_both(sql, data, config=None):
    binder = Binder(__import__("tests.conftest", fromlist=["x"])
                    .build_mini_catalog())
    bound = binder.bind(parse(sql))
    normalized_rel = normalize(bound.rel, config)
    interpreter = NaiveInterpreter(lambda name: data[name])
    original = interpreter.run(bound.rel)
    rewritten = interpreter.run(normalized_rel)
    return original, rewritten


@pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
def test_normalization_preserves_semantics(sql):
    original, rewritten = run_both(sql, BASE_DATA)
    assert Counter(original) == Counter(rewritten)


@pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
def test_class2_rewrites_preserve_semantics(sql):
    config = NormalizeConfig(class2_rewrites=True)
    original, rewritten = run_both(sql, BASE_DATA, config)
    assert Counter(original) == Counter(rewritten)


@pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
def test_normalization_on_empty_tables(sql):
    empty = {name: [] for name in BASE_DATA}
    original, rewritten = run_both(sql, empty)
    assert Counter(original) == Counter(rewritten)


# ---------------------------------------------------------------------------
# Randomized differential testing
# ---------------------------------------------------------------------------

NULLY_QUERIES = [
    """select n_id from nully where n_a not in (select n_b from nully)""",
    """select n_id from nully where n_a > all (select n_b from nully)""",
    """select n_id from nully where n_a = any (select n_b from nully)""",
    """select n_id, (select sum(n2.n_b) from nully n2
                     where n2.n_a = nully.n_a) from nully""",
    """select n_id from nully n1
       where exists (select * from nully n2 where n2.n_a = n1.n_b)""",
    """select n_id from nully n1
       where 1 <= (select count(*) from nully n2
                   where n2.n_a = n1.n_a)""",
]

small_int = st.one_of(st.none(), st.integers(0, 4))


@settings(max_examples=40, deadline=None)
@given(rows=st.lists(st.tuples(small_int, small_int), max_size=8),
       query_index=st.integers(0, len(NULLY_QUERIES) - 1))
def test_randomized_differential(rows, query_index):
    data = {name: [] for name in BASE_DATA}
    data["nully"] = [(i + 1, a, b) for i, (a, b) in enumerate(rows)]
    original, rewritten = run_both(NULLY_QUERIES[query_index], data)
    assert Counter(original) == Counter(rewritten)
