"""Unit and property tests for equi-depth histograms and their use in
range-selectivity estimation."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (Column, ColumnRef, Comparison, DataType, Get,
                           Literal, Select)
from repro.catalog import build_histogram, compute_table_stats
from repro.core.optimizer import Estimator


class TestBuildHistogram:
    def test_empty_input(self):
        assert build_histogram([]) is None
        assert build_histogram([None, None]) is None

    def test_strings_unsupported(self):
        assert build_histogram(["a", "b"]) is None

    def test_single_value(self):
        h = build_histogram([5])
        assert h is not None
        assert h.fraction_below(4) == 0.0
        assert h.fraction_below(6) == 1.0

    def test_uniform_data(self):
        h = build_histogram(list(range(1000)), bucket_count=10)
        assert h.bucket_count == 10
        assert h.fraction_below(500) == pytest.approx(0.5, abs=0.02)
        assert h.fraction_below(100) == pytest.approx(0.1, abs=0.02)

    def test_skewed_data(self):
        # 90% of mass at 0, tail spread to 1000.
        values = [0] * 900 + list(range(1, 101))
        h = build_histogram(values, bucket_count=10)
        assert h.fraction_below(1) >= 0.85

    def test_dates(self):
        days = [datetime.date(2000, 1, 1) + datetime.timedelta(days=i)
                for i in range(100)]
        h = build_histogram(days, bucket_count=4)
        mid = datetime.date(2000, 1, 1) + datetime.timedelta(days=50)
        assert h.fraction_below(mid) == pytest.approx(0.5, abs=0.05)

    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(st.integers(-50, 50), min_size=1, max_size=200),
           probe=st.integers(-60, 60))
    def test_fraction_close_to_truth(self, values, probe):
        h = build_histogram(values, bucket_count=8)
        truth = sum(1 for v in values if v < probe) / len(values)
        assert h.fraction_below(probe) == pytest.approx(
            truth, abs=2.0 / min(8, len(values)) + 0.01)

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.integers(-50, 50), min_size=1, max_size=100),
           a=st.integers(-60, 60), b=st.integers(-60, 60))
    def test_monotone(self, values, a, b):
        h = build_histogram(values)
        low, high = min(a, b), max(a, b)
        assert h.fraction_below(low) <= h.fraction_below(high) + 1e-9


class TestEstimatorUsesHistogram:
    def test_skewed_range_estimate(self):
        """With 90% of values at 0, 'col > 0' must estimate ~10%, which
        uniform min/max interpolation would put at ~100%."""
        rows = [(0,)] * 900 + [(i,) for i in range(1, 101)]
        stats = compute_table_stats(["v"], rows)

        v = Column("v", DataType.INTEGER, nullable=False)
        get = Get("t", [v], [])
        sel = Select(get, Comparison(">", ColumnRef(v), Literal(0)))
        estimate = Estimator(lambda name: stats).estimate(sel)
        assert estimate.rows == pytest.approx(100, rel=0.5)

    def test_out_of_range_probe(self):
        rows = [(i,) for i in range(100)]
        stats = compute_table_stats(["v"], rows)
        v = Column("v", DataType.INTEGER, nullable=False)
        get = Get("t", [v], [])
        below_all = Select(get, Comparison("<", ColumnRef(v), Literal(-5)))
        above_all = Select(get, Comparison(">", ColumnRef(v), Literal(500)))
        estimator = Estimator(lambda name: stats)
        assert estimator.estimate(below_all).rows == pytest.approx(0.0)
        assert estimator.estimate(above_all).rows == pytest.approx(0.0)

    def test_null_fraction_respected(self):
        rows = [(i,) for i in range(50)] + [(None,)] * 50
        stats = compute_table_stats(["v"], rows)
        v = Column("v", DataType.INTEGER, nullable=True)
        get = Get("t", [v], [])
        sel = Select(get, Comparison(">=", ColumnRef(v), Literal(0)))
        estimate = Estimator(lambda name: stats).estimate(sel)
        # NULLs never satisfy the range predicate.
        assert estimate.rows == pytest.approx(50, rel=0.2)
