"""Constant folding during normalization."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (And, Arithmetic, Case, Column, ColumnRef,
                           Comparison, DataType, Interval, Literal, Not,
                           Or, equals)
from repro.algebra.scalar import Extract
from repro.core.normalize.simplify import fold_constants
from repro.executor.naive import NaiveInterpreter


def lit(v):
    return Literal(v)


class TestFolding:
    def test_arithmetic(self):
        expr = Arithmetic("+", lit(2), Arithmetic("*", lit(3), lit(4)))
        assert fold_constants(expr) == lit(14)

    def test_date_plus_interval(self):
        expr = Arithmetic("+", Literal(datetime.date(1993, 7, 1)),
                          Literal(Interval(months=3)))
        folded = fold_constants(expr)
        assert folded == Literal(datetime.date(1993, 10, 1))

    def test_comparison(self):
        assert fold_constants(Comparison("<", lit(1), lit(2))) == lit(True)

    def test_null_propagation(self):
        expr = Arithmetic("+", Literal(None, DataType.INTEGER), lit(1))
        folded = fold_constants(expr)
        assert isinstance(folded, Literal) and folded.value is None

    def test_division_by_zero_deferred(self):
        expr = Arithmetic("/", lit(1), lit(0))
        assert fold_constants(expr) is expr  # left for run time

    def test_and_absorption(self):
        col = Column("a", DataType.INTEGER)
        live = equals(col, lit(1))
        assert fold_constants(And([lit(True), live])) == live
        assert fold_constants(And([lit(False), live])) == lit(False)

    def test_or_absorption(self):
        col = Column("a", DataType.INTEGER)
        live = equals(col, lit(1))
        assert fold_constants(Or([lit(False), live])) == live
        assert fold_constants(Or([lit(True), live])) == lit(True)

    def test_case_pruning(self):
        col = Column("a", DataType.INTEGER)
        live = equals(col, lit(1))
        case = Case([(lit(False), lit(10)), (live, lit(20))], lit(30))
        folded = fold_constants(case)
        assert isinstance(folded, Case) and len(folded.whens) == 1

    def test_case_constant_true_takes_branch(self):
        case = Case([(lit(True), lit(10))], lit(30))
        assert fold_constants(case) == lit(10)

    def test_extract_folds(self):
        expr = Extract("year", Literal(datetime.date(1998, 3, 4)))
        assert fold_constants(expr) == lit(1998)

    def test_column_refs_untouched(self):
        col = Column("a", DataType.INTEGER)
        expr = Arithmetic("+", ColumnRef(col), lit(1))
        assert fold_constants(expr) is expr

    def test_folds_inside_aggregate_argument(self):
        from repro.algebra import AggregateCall, AggregateFunction

        col = Column("a", DataType.INTEGER)
        call = AggregateCall(
            AggregateFunction.SUM,
            Arithmetic("*", ColumnRef(col),
                       Arithmetic("-", lit(1), lit(0))))
        folded = fold_constants(call)
        assert isinstance(folded, AggregateCall)
        assert folded.argument.sql() == f"({ColumnRef(col).sql()} * 1)"

    @settings(max_examples=80, deadline=None)
    @given(a=st.integers(-5, 5), b=st.integers(-5, 5),
           op=st.sampled_from(["+", "-", "*"]),
           cmp=st.sampled_from(["=", "<", ">="]))
    def test_folding_matches_evaluation(self, a, b, op, cmp):
        expr = Comparison(cmp, Arithmetic(op, lit(a), lit(b)), lit(0))
        folded = fold_constants(expr)
        assert isinstance(folded, Literal)
        naive = NaiveInterpreter(lambda name: [])
        assert folded.value == naive.scalar(expr, {})


class TestFoldingInQueries:
    def test_interval_folded_in_plan(self, mini_catalog):
        from repro import Database
        from repro.binder import Binder

        db = Database()
        db.catalog = mini_catalog
        db._binder = Binder(mini_catalog)
        text = db.explain("""
            select o_orderkey from orders
            where o_orderdate < date '1993-07-01' + interval '3' month""")
        assert "interval" not in text.lower()
        assert "1993-10-01" in text
