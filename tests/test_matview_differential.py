"""Materialized views must be invisible to query results.

For every query the rewrite can touch — exact-group, coarser-group,
global-aggregate, residual-predicate and parameterized forms — the
views-on answer must be bit-identical to the views-off answer across
all three engines and all three execution modes, *including after
commits have folded deltas into the view backings*.  Hypothesis drives
NULL-rich base data and random delta batches; the integer-only value
domain keeps every stored partial sum exact, so "bit-identical" is a
meaningful claim (float partial sums re-associate and are documented
as approximate, see ``repro.matview.maintenance``).
"""

import os
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (CORRELATED, DECORRELATE_ONLY, FULL, NAIVE, Database,
                   DataType)

DEEP = os.environ.get("REPRO_DIFF_DEEP", "").strip() not in ("", "0")
MAX_EXAMPLES = 40 if DEEP else 8

ALL_MODES = (FULL, DECORRELATE_ONLY, CORRELATED)

VIEW_SQL = ("SELECT g, h, count(*) AS n, count(v) AS nv, sum(v) AS s, "
            "avg(v) AS a, min(v) AS lo, max(v) AS hi "
            "FROM t GROUP BY g, h")

#: Aggregate queries the view can answer, plus shapes it must refuse.
CORPUS = (
    # exact grouping
    "select t.g, t.h, count(*), sum(t.v), avg(t.v) from t"
    " group by t.g, t.h",
    # coarsening: re-aggregate stored partials
    "select t.g, count(*), count(t.v), sum(t.v), avg(t.v),"
    " min(t.v), max(t.v) from t group by t.g",
    "select t.h, max(t.v) from t group by t.h order by 1",
    # global aggregate (empty-input COUNT must stay 0)
    "select count(*), count(t.v), sum(t.v), avg(t.v) from t",
    "select count(*), sum(t.v) from t where t.g = 2 and t.h = 0",
    # residual predicates over group columns
    "select t.g, sum(t.v) from t where t.h <= 1 group by t.g",
    # shapes the view cannot answer: must silently take the base plan
    "select t.v, count(*) from t group by t.v",
    "select t.g, sum(t.v) from t where t.v > 0 group by t.g",
)

PARAM_SQL = "select t.g, count(*), sum(t.v) from t where t.h = ?" \
            " group by t.g order by 1"

row = st.tuples(st.integers(0, 3), st.integers(0, 2),
                st.one_of(st.none(), st.integers(-50, 50)))
rows_strategy = st.lists(row, min_size=0, max_size=25)
delta_strategy = st.lists(row, min_size=1, max_size=10)


def build_pair(rows):
    """Two identical databases: one with the view, one without."""
    dbs = []
    for with_view in (False, True):
        db = Database(batch_size=3, chunk_rows=4)
        db.create_table("t", [("g", DataType.INTEGER, False),
                              ("h", DataType.INTEGER, False),
                              ("v", DataType.INTEGER, True)])
        if rows:
            db.insert("t", rows)
        if with_view:
            db.matviews.create("mv", VIEW_SQL)
        dbs.append(db)
    return dbs[0], dbs[1]


def _row_key(row):
    return tuple((value is None, value) for value in row)


def sorted_rows(rows):
    """Canonical order for comparing unordered aggregate output: the
    rewrite re-aggregates view backing rows, so group *order* follows
    the backing layout — contents must still match exactly."""
    return sorted(rows, key=_row_key)


def assert_identical(plain: Database, viewed: Database, sql: str,
                     params=None) -> None:
    reference = Counter(plain.execute(sql, NAIVE, params=params).rows)
    for mode in ALL_MODES:
        expected = sorted_rows(plain.execute(sql, mode, params=params,
                                             engine="tuple").rows)
        for engine in ("tuple", "vectorized"):
            got = sorted_rows(viewed.execute(sql, mode, params=params,
                                             engine=engine).rows)
            assert got == expected, \
                f"views-on {engine} != views-off under {mode.name}: {sql}"
    naive_viewed = Counter(viewed.execute(sql, NAIVE, params=params).rows)
    assert naive_viewed == reference, f"naive disagrees on: {sql}"


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(rows=rows_strategy)
def test_rewrite_is_invisible(rows):
    plain, viewed = build_pair(rows)
    for sql in CORPUS:
        assert_identical(plain, viewed, sql)
    for value in (0, 1, 2):
        assert_identical(plain, viewed, PARAM_SQL, params=[value])


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(rows=rows_strategy, deltas=st.lists(delta_strategy, min_size=1,
                                           max_size=3))
def test_incremental_maintenance_is_invisible(rows, deltas):
    plain, viewed = build_pair(rows)
    for delta in deltas:
        for db in (plain, viewed):
            with db.session() as session:
                session.begin()
                session.insert("t", delta)
                session.commit()
    assert viewed.matviews.status()["maintained_commits"] == len(deltas)
    for sql in CORPUS:
        assert_identical(plain, viewed, sql)
    # The incrementally maintained backing must equal a full recompute.
    maintained = sorted(viewed.storage.get("mv").rows)
    viewed.matviews.refresh("mv")
    assert sorted(viewed.storage.get("mv").rows) == maintained


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(rows=rows_strategy, delta=delta_strategy)
def test_autocommit_inserts_maintain_the_view(rows, delta):
    plain, viewed = build_pair(rows)
    plain.insert("t", delta)
    viewed.insert("t", delta)
    for sql in CORPUS[:4]:
        assert_identical(plain, viewed, sql)
