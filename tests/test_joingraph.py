"""Greedy join-order seeding: structure and semantics."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (Column, ColumnRef, Comparison, DataType, Get,
                           Join, JoinKind, Literal, Project, Select,
                           collect_nodes, equals, plan_signature)
from repro.catalog.statistics import ColumnStats, TableStats
from repro.core.optimizer import Estimator
from repro.core.optimizer.joingraph import greedy_join_order
from repro.executor import NaiveInterpreter


def table(name, *column_names, key=False):
    columns = [Column(f"{name}_{c}", DataType.INTEGER, nullable=False)
               for c in column_names]
    keys = [[columns[0]]] if key else []
    return Get(name, columns, keys), columns


def stats_for(sizes):
    def provider(name):
        if name not in sizes:
            return None
        rows = sizes[name]
        return TableStats(rows, {})
    return provider


def make_factory(sizes):
    return lambda: Estimator(stats_for(sizes))


class TestStructure:
    def test_small_table_seeds_first(self):
        big, (big_k,) = table("big", "k")
        mid, (mid_k, mid_f) = table("mid", "k", "f")
        tiny, (tiny_k,) = table("tiny", "k")
        tree = Join(JoinKind.INNER,
                    Join(JoinKind.INNER, big, mid, equals(mid_k, big_k)),
                    tiny, equals(tiny_k, mid_f))
        sizes = {"big": 100000, "mid": 1000, "tiny": 10}
        ordered = greedy_join_order(tree, make_factory(sizes))
        # the deepest (first-joined) relation should be the tiny one
        joins = collect_nodes(ordered, lambda n: isinstance(n, Join))
        deepest = joins[-1]
        names = [n.table_name for n in collect_nodes(
            deepest.left, lambda n: isinstance(n, Get))]
        assert names == ["tiny"]

    def test_two_way_join_untouched(self):
        a, (ak,) = table("a", "k")
        b, (bk,) = table("b", "k")
        tree = Join(JoinKind.INNER, a, b, equals(ak, bk))
        ordered = greedy_join_order(tree, make_factory({"a": 5, "b": 5}))
        assert ordered is tree

    def test_output_columns_preserved(self):
        a, (ak,) = table("a", "k")
        b, (bk, bf) = table("b", "k", "f")
        c, (ck,) = table("c", "k")
        tree = Join(JoinKind.INNER,
                    Join(JoinKind.INNER, a, b, equals(ak, bk)),
                    c, equals(ck, bf))
        ordered = greedy_join_order(
            tree, make_factory({"a": 10, "b": 100, "c": 1000}))
        assert [col.cid for col in ordered.output_columns()] == \
            [col.cid for col in tree.output_columns()]

    def test_clusters_below_other_operators(self):
        a, (ak,) = table("a", "k")
        b, (bk,) = table("b", "k")
        c, (ck,) = table("c", "k")
        cluster = Join(JoinKind.INNER,
                       Join(JoinKind.INNER, a, b, equals(ak, bk)),
                       c, equals(ck, bk))
        tree = Select(cluster, Comparison(">", ColumnRef(ak), Literal(0)))
        ordered = greedy_join_order(
            tree, make_factory({"a": 10, "b": 10, "c": 10}))
        assert isinstance(ordered, Select)


class TestSemantics:
    @settings(max_examples=50, deadline=None)
    @given(a_rows=st.lists(st.tuples(st.integers(0, 3)), max_size=5),
           b_rows=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                           max_size=6),
           c_rows=st.lists(st.tuples(st.integers(0, 3)), max_size=5))
    def test_reordering_preserves_results(self, a_rows, b_rows, c_rows):
        a, (ak,) = table("a", "k")
        b, (bk, bf) = table("b", "k", "f")
        c, (ck,) = table("c", "k")
        tree = Join(JoinKind.INNER,
                    Join(JoinKind.INNER, a, b, equals(ak, bk)),
                    c, equals(ck, bf))
        sizes = {"a": max(len(a_rows), 1), "b": max(len(b_rows), 1),
                 "c": max(len(c_rows), 1)}
        ordered = greedy_join_order(tree, make_factory(sizes))
        data = {"a": a_rows, "b": b_rows, "c": c_rows}

        def run(t):
            return Counter(NaiveInterpreter(lambda n: data[n]).run(t))

        assert run(ordered) == run(tree)
