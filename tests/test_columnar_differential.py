"""Encoding / parallelism differential harness for columnar storage.

The columnar layer must be invisible: for every combination of forced
per-column encoding (plain / dictionary / RLE), vectorized batch size,
chunk size and morsel worker count, all three engines must return
exactly what they returned before — the vectorized engine bit-identical
to the tuple engine, both agreeing with the naive interpreter up to row
order.  Hypothesis drives NULL-rich inputs (the zone-map NULL rules and
the type-strict encodings earn their keep there); a fixed corpus pins
the historical divergences, including the all-padded-group outer-join
aggregate.
"""

import os
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (CORRELATED, DECORRELATE_ONLY, FULL, NAIVE, Database,
                   DataType)

DEEP = os.environ.get("REPRO_DIFF_DEEP", "").strip() not in ("", "0")
MAX_EXAMPLES = 120 if DEEP else 25

ENCODINGS = ("plain", "dict", "rle")
ALL_MODES = (FULL, DECORRELATE_ONLY, CORRELATED)

#: Queries covering the paths the columnar layer touches: plain scans,
#: zone-prunable filters (literal comparisons, IS NULL), grouped and
#: scalar aggregation, outer joins (incl. the all-padded-group
#: regression) and correlated subqueries.
CORPUS = (
    "select t.id, t.grp, t.val, t.tag from t",
    "select t.val from t where t.grp = 1",
    "select t.val from t where t.grp > 2 and t.val <= 3",
    "select t.id from t where t.val is null",
    "select t.id from t where t.val is not null and t.tag <> 0",
    "select t.grp, count(*), sum(t.val) from t group by t.grp",
    "select count(t.val), min(t.tag), max(t.grp) from t",
    "select t.id, s.amt from t join s on s.ref = t.grp",
    # the oracle's first catch: an all-padded group must count 0, not NULL
    "select t.grp, count(s.sid), sum(s.amt) from t"
    " left outer join s on s.ref = t.grp group by t.grp",
    "select t.id, (select sum(s.amt) from s where s.ref = t.grp) from t",
    "select t.grp from t where exists"
    " (select * from s where s.ref = t.grp) order by 1 limit 3",
)


def build_db(t_rows, s_rows, *, t_kinds, s_kinds, batch_size=3,
             chunk_rows=4, morsel_workers=1) -> Database:
    db = Database(batch_size=batch_size, chunk_rows=chunk_rows,
                  morsel_workers=morsel_workers)
    db.create_table("t", [("id", DataType.INTEGER, False),
                          ("grp", DataType.INTEGER, True),
                          ("val", DataType.INTEGER, True),
                          ("tag", DataType.INTEGER, True)],
                    primary_key=("id",))
    db.create_table("s", [("sid", DataType.INTEGER, False),
                          ("ref", DataType.INTEGER, True),
                          ("amt", DataType.INTEGER, True)],
                    primary_key=("sid",))
    db.insert("t", [(i + 1, *row) for i, row in enumerate(t_rows)])
    db.insert("s", [(i + 1, *row) for i, row in enumerate(s_rows)])
    db.storage.get("t").force_encodings(t_kinds)
    db.storage.get("s").force_encodings(s_kinds)
    return db


def assert_engines_agree(db: Database, sql: str) -> None:
    reference = Counter(db.execute(sql, NAIVE).rows)
    for mode in ALL_MODES:
        tuple_rows = db.execute(sql, mode, engine="tuple").rows
        vector_rows = db.execute(sql, mode, engine="vectorized").rows
        assert vector_rows == tuple_rows, \
            f"vectorized != tuple under {mode.name} on: {sql}"
        assert Counter(tuple_rows) == reference, \
            f"{mode.name} != naive on: {sql}"


nullable_int = st.one_of(st.none(), st.integers(0, 4))
t_rows_strategy = st.lists(st.tuples(nullable_int, nullable_int,
                                     nullable_int), max_size=12)
s_rows_strategy = st.lists(st.tuples(nullable_int, nullable_int),
                           max_size=9)
kind = st.sampled_from(ENCODINGS)


@settings(max_examples=MAX_EXAMPLES, deadline=None, derandomize=not DEEP,
          database=None)
@given(t_rows=t_rows_strategy, s_rows=s_rows_strategy,
       t_kinds=st.tuples(kind, kind, kind, kind),
       s_kinds=st.tuples(kind, kind, kind),
       batch_size=st.sampled_from((1, 3, 7)),
       chunk_rows=st.sampled_from((2, 4, 16)),
       morsel_workers=st.sampled_from((1, 2, 8)),
       sql=st.sampled_from(CORPUS))
def test_encoding_parallelism_sweep(t_rows, s_rows, t_kinds, s_kinds,
                                    batch_size, chunk_rows,
                                    morsel_workers, sql):
    db = build_db(t_rows, s_rows, t_kinds=t_kinds, s_kinds=s_kinds,
                  batch_size=batch_size, chunk_rows=chunk_rows,
                  morsel_workers=morsel_workers)
    assert_engines_agree(db, sql)


# -- deterministic grid ---------------------------------------------------------

#: NULL-rich rows: every column has NULLs, one group is all-NULL, one
#: group exists only on the outer side (all-padded after the outer join).
NULL_RICH_T = [(None, None, None), (1, 2, None), (1, None, 0),
               (2, 0, 0), (None, 4, 1), (3, 1, None), (3, 3, 3),
               (2, None, None), (4, 2, 2)]
NULL_RICH_S = [(None, None), (1, 1), (1, None), (2, 0), (4, 4),
               (None, 3), (2, None)]


def test_uniform_encoding_grid_on_null_rich_input():
    """Every encoding × every morsel count on the NULL-rich fixture —
    the full corpus, all three engines."""
    for enc in ENCODINGS:
        for workers in (1, 2, 8):
            db = build_db(NULL_RICH_T, NULL_RICH_S,
                          t_kinds=(enc,) * 4, s_kinds=(enc,) * 3,
                          morsel_workers=workers)
            for sql in CORPUS:
                assert_engines_agree(db, sql)


def test_mixed_encodings_on_empty_and_tiny_tables():
    for t_rows, s_rows in (([], []), ([(1, 1, 1)], []),
                           ([], [(1, 1)])):
        db = build_db(t_rows, s_rows,
                      t_kinds=("rle", "dict", "plain", "rle"),
                      s_kinds=("dict", "rle", "plain"),
                      morsel_workers=2)
        for sql in CORPUS:
            assert_engines_agree(db, sql)


def test_forced_encodings_survive_further_writes():
    """Writes after ``force_encodings`` seal new chunks with freshly
    chosen encodings; the re-encoded old chunks keep their data."""
    db = build_db(NULL_RICH_T, NULL_RICH_S,
                  t_kinds=("rle",) * 4, s_kinds=("dict",) * 3,
                  morsel_workers=2)
    db.insert("t", [(100 + i, i % 2, i, None) for i in range(6)])
    for sql in CORPUS:
        assert_engines_agree(db, sql)
