"""Crash-recovery chaos for materialized views.

Views are derived state: whatever fault fires — at ``matview.refresh``
(before every view recompute and before each per-commit delta merge) or
at any other registered site — recovery must never produce a view whose
contents disagree with recomputing its defining query over the
recovered base table.  The harness arms one fault, runs a workload of
view DDL plus base-table commits, "crashes" (closes without a
checkpoint), recovers, and compares every surviving view's backing rows
against a fresh recompute from base.
"""

from __future__ import annotations

import pytest

from repro import Database, DataType, InjectedFault, ReproError
from repro import faultinject

VIEW_SQL = ("SELECT g, count(*) AS n, sum(v) AS s, avg(v) AS a "
            "FROM t GROUP BY g")

#: Sites exercised by this workload's paths (view build/refresh/merge,
#: WAL commit, checkpoint, recovery replay, executor open).
SITES = sorted(faultinject.sites())

TXN_COUNT = 4


def make_db(path, **kwargs):
    db = Database(path=str(path), **kwargs)
    if not db.catalog.has_table("t"):
        db.create_table("t", [("g", DataType.INTEGER, False),
                              ("v", DataType.INTEGER, True)])
    return db


def run_workload(db):
    """View create/refresh interleaved with base commits; every step is
    allowed to fail (the armed fault), never to corrupt."""
    steps = [
        lambda: db.execute("CREATE MATERIALIZED VIEW mv AS " + VIEW_SQL),
        lambda: db.insert("t", [(1, 10), (2, None), (1, 5)]),
        lambda: db.execute("REFRESH MATERIALIZED VIEW mv"),
    ]

    def txn(i):
        with db.session() as session:
            session.begin()
            session.insert("t", [(i % 3, 100 * i), (i % 3, None)])
            session.commit()

    for i in range(1, TXN_COUNT + 1):
        steps.append(lambda i=i: txn(i))
    survived = 0
    for step in steps:
        try:
            step()
        except (InjectedFault, ReproError):
            pass
        else:
            survived += 1
    return survived


def assert_views_consistent(db):
    """Every registered view's backing must equal a recompute from base."""
    for viewdef in db.catalog.matviews():
        stored = sorted(db.storage.get(viewdef.name).rows)
        recomputed = sorted(
            db.execute(viewdef.storage_sql(), use_matviews=False).rows)
        assert stored == recomputed, (
            f"view {viewdef.name!r} inconsistent with base after "
            f"recovery: {stored} != {recomputed}")


class TestMatViewCrashSchedules:
    @pytest.mark.parametrize("site", SITES)
    def test_crash_at_every_site_leaves_views_consistent(self, tmp_path,
                                                         site):
        db = make_db(tmp_path)
        with faultinject.fail_at(site, n=1):
            run_workload(db)
        db.close()  # crash: no checkpoint, recovery does all the work

        reopened = make_db(tmp_path)
        assert_views_consistent(reopened)
        # The database stays fully usable: base writes keep maintaining
        # whatever views survived.
        reopened.insert("t", [(0, 777)])
        assert_views_consistent(reopened)
        reopened.close()

    @pytest.mark.parametrize("nth", range(1, TXN_COUNT + 2))
    def test_every_refresh_ordinal(self, tmp_path, nth):
        """`matview.refresh` fires per recompute *and* per delta merge;
        crash at each ordinal in turn."""
        db = make_db(tmp_path)
        with faultinject.fail_at("matview.refresh", n=nth):
            run_workload(db)
        db.close()

        reopened = make_db(tmp_path)
        assert_views_consistent(reopened)
        reopened.close()

    def test_failed_maintenance_fails_the_commit_atomically(self, tmp_path):
        """A fault during delta merge aborts the whole commit: neither
        the base rows nor the view change."""
        db = make_db(tmp_path)
        db.execute("CREATE MATERIALIZED VIEW mv AS " + VIEW_SQL)
        db.insert("t", [(1, 10)])
        base_before = sorted(db.storage.get("t").rows)
        view_before = sorted(db.storage.get("mv").rows)
        with faultinject.fail_always("matview.refresh"):
            with pytest.raises(InjectedFault):
                db.insert("t", [(1, 999)])
        assert sorted(db.storage.get("t").rows) == base_before
        assert sorted(db.storage.get("mv").rows) == view_before
        db.close()

    def test_recovery_rebuild_failure_is_a_recovery_error(self, tmp_path):
        """A fault during the end-of-recovery rebuild surfaces as a
        recovery failure instead of opening with a stale view."""
        from repro import RecoveryError
        db = make_db(tmp_path)
        db.execute("CREATE MATERIALIZED VIEW mv AS " + VIEW_SQL)
        db.insert("t", [(1, 10)])
        db.close()
        with faultinject.fail_at("matview.refresh", n=1):
            with pytest.raises(RecoveryError):
                make_db(tmp_path)
        # Disarmed, the same directory opens cleanly.
        reopened = make_db(tmp_path)
        assert_views_consistent(reopened)
        reopened.close()
