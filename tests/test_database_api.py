"""Tests for the public Database facade and the plan printers."""

import pytest

from repro import (CORRELATED, DECORRELATE_ONLY, FULL, MODES, NAIVE,
                   Database, DataType, QueryResult)
from repro.algebra import plan_signature
from repro.errors import BindError, CatalogError, ExecutionError
from repro.physical import explain_physical


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("a", DataType.INTEGER, False),
                                ("b", DataType.VARCHAR, True)],
                          primary_key=("a",))
    database.insert("t", [(1, "x"), (2, None), (3, "z")])
    return database


class TestDatabaseFacade:
    def test_modes_registry(self):
        assert set(MODES) == {"full", "decorrelate_only", "correlated",
                              "naive"}
        assert MODES["full"] is FULL

    def test_query_result_api(self, db):
        result = db.execute("select a, b from t order by a")
        assert isinstance(result, QueryResult)
        assert result.names == ["a", "b"]
        assert len(result) == 3
        assert list(result) == [(1, "x"), (2, None), (3, "z")]
        assert result == [(1, "x"), (2, None), (3, "z")]
        assert "3 rows" in repr(result)

    def test_create_table_tuple_forms(self):
        database = Database()
        database.create_table("u", [("x", DataType.INTEGER),
                                    ("y", DataType.VARCHAR, False)])
        database.insert("u", [(None, "ok")])
        with pytest.raises(ExecutionError):
            database.insert("u", [(1, None)])  # y NOT NULL

    def test_duplicate_table(self, db):
        with pytest.raises(CatalogError):
            db.create_table("t", [("x", DataType.INTEGER)])

    def test_insert_returns_count(self, db):
        assert db.insert("t", [(10, "a"), (11, "b")]) == 2

    def test_explain_has_both_sections(self, db):
        text = db.explain("select a from t where a > 1")
        assert "-- logical (normalized) --" in text
        assert "-- physical --" in text
        assert "TableScan(t)" in text

    def test_explain_naive_mode_logical_only(self, db):
        text = db.explain("select a from t", NAIVE)
        assert "-- physical --" not in text

    def test_explain_with_costs(self, db):
        text = db.explain("select a from t where a > 1", costs=True)
        assert "-- estimates --" in text
        assert "cost:" in text and "rows:" in text
        cost_line = [l for l in text.splitlines()
                     if l.startswith("cost:")][0]
        assert float(cost_line.split(":")[1]) > 0

    def test_plan_returns_physical(self, db):
        plan = db.plan("select a from t")
        assert "TableScan" in explain_physical(plan)

    def test_unknown_table_error(self, db):
        with pytest.raises(CatalogError):
            db.execute("select * from missing")

    def test_bind_error_propagates(self, db):
        with pytest.raises(BindError):
            db.execute("select missing_col from t")

    def test_secondary_index_used_in_plans(self, db):
        # enough rows that a seek beats the scan in the cost model
        db.insert("t", [(i, f"v{i}") for i in range(100, 400)])
        db.create_index("ix_b", "t", ["b"])
        plan = db.plan("select a from t where b = 'x'")
        assert "IndexSeek" in explain_physical(plan)

    def test_ordered_index_kind(self, db):
        db.create_index("ix_ord", "t", ["b"], kind="ordered")
        result = db.execute("select a from t where b = 'z'")
        assert result.rows == [(3,)]

    def test_empty_select_no_from(self, db):
        result = db.execute("select 1 as one, 'a' as letter")
        assert result.rows == [(1, "a")]
        assert result.names == ["one", "letter"]

    def test_drop_table(self, db):
        db.drop_table("t")
        assert "t" not in db.table_names()
        with pytest.raises(CatalogError):
            db.execute("select * from t")

    def test_table_names_and_statistics(self, db):
        assert db.table_names() == ["t"]
        stats = db.table_statistics("t")
        assert stats.row_count == 3
        assert stats.column("a").distinct_count == 3


class TestPlanSignatures:
    def test_signature_normalizes_column_ids(self, db):
        sql = "select a from t where a > 1"
        first = plan_signature(db._binder.bind(__import__(
            "repro.sql", fromlist=["parse"]).parse(sql)).rel)
        second = plan_signature(db._binder.bind(__import__(
            "repro.sql", fromlist=["parse"]).parse(sql)).rel)
        assert first == second  # fresh column ids, same signature

    def test_signature_distinguishes_structures(self, db):
        from repro.sql import parse
        a = plan_signature(db._binder.bind(
            parse("select a from t where a > 1")).rel)
        b = plan_signature(db._binder.bind(
            parse("select a from t where a > 2")).rel)
        assert a != b


class TestExplainStability:
    def test_explain_deterministic(self, db):
        sql = """select a from t
                 where a in (select a from t where b is not null)"""
        import re
        first = re.sub(r"#\d+", "#x", db.explain(sql))
        second = re.sub(r"#\d+", "#x", db.explain(sql))
        assert first == second
