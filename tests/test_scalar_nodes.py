"""Unit tests for scalar expression node mechanics."""

import pytest

from repro.algebra import (AggregateCall, AggregateFunction, And,
                           Arithmetic, Case, Column, ColumnRef, Comparison,
                           DataType, InList, IsNull, Like, Literal, Negate,
                           Not, Or, conjunction, conjuncts, disjuncts,
                           equals)
from repro.algebra.scalar import column_equalities


def col(name="a", dtype=DataType.INTEGER, nullable=True):
    return Column(name, dtype, nullable)


class TestStructure:
    def test_with_children_roundtrip(self):
        a, b = col("a"), col("b")
        expr = Comparison("<", ColumnRef(a), ColumnRef(b))
        rebuilt = expr.with_children((ColumnRef(b), ColumnRef(a)))
        assert rebuilt.sql() == f"{ColumnRef(b).sql()} < {ColumnRef(a).sql()}"

    def test_literal_takes_no_children(self):
        with pytest.raises(ValueError):
            Literal(1).with_children((Literal(2),))

    def test_invalid_operators_rejected(self):
        a = ColumnRef(col())
        with pytest.raises(ValueError):
            Comparison("==", a, a)
        with pytest.raises(ValueError):
            Arithmetic("%", a, a)

    def test_empty_connectives_rejected(self):
        with pytest.raises(ValueError):
            And([])
        with pytest.raises(ValueError):
            Or([])
        with pytest.raises(ValueError):
            Case([])

    def test_count_star_argument_rules(self):
        with pytest.raises(ValueError):
            AggregateCall(AggregateFunction.COUNT_STAR, Literal(1))
        with pytest.raises(ValueError):
            AggregateCall(AggregateFunction.SUM)

    def test_substitute_columns(self):
        a, b = col("a"), col("b")
        expr = Arithmetic("+", ColumnRef(a), Literal(1))
        substituted = expr.substitute_columns({a.cid: ColumnRef(b)})
        assert b in substituted.free_columns()
        assert a not in substituted.free_columns()
        # no-op substitution returns the same object
        assert expr.substitute_columns({}) is expr

    def test_structural_equality_and_hash(self):
        a = col("a")
        e1 = Comparison("=", ColumnRef(a), Literal(1))
        e2 = Comparison("=", ColumnRef(a), Literal(1))
        e3 = Comparison("=", ColumnRef(a), Literal(2))
        assert e1 == e2 and hash(e1) == hash(e2)
        assert e1 != e3

    def test_free_columns_through_nesting(self):
        a, b, c = col("a"), col("b"), col("c")
        expr = Case([(Comparison("<", ColumnRef(a), ColumnRef(b)),
                      ColumnRef(c))], Literal(None))
        assert {x.cid for x in expr.free_columns()} == {a.cid, b.cid, c.cid}


class TestTyping:
    def test_comparison_nullability(self):
        nn = col("nn", nullable=False)
        n = col("n", nullable=True)
        assert not Comparison("=", ColumnRef(nn), Literal(1)).nullable
        assert Comparison("=", ColumnRef(n), Literal(1)).nullable

    def test_is_null_never_nullable(self):
        assert not IsNull(ColumnRef(col())).nullable

    def test_arithmetic_types(self):
        i = ColumnRef(col("i", DataType.INTEGER))
        f = ColumnRef(col("f", DataType.FLOAT))
        assert Arithmetic("+", i, i).dtype is DataType.INTEGER
        assert Arithmetic("+", i, f).dtype is DataType.FLOAT
        assert Arithmetic("/", i, i).dtype is DataType.FLOAT

    def test_date_arithmetic_types(self):
        d = ColumnRef(col("d", DataType.DATE))
        iv = Literal(__import__("repro.algebra", fromlist=["Interval"])
                     .Interval(days=3))
        assert Arithmetic("+", d, iv).dtype is DataType.DATE
        assert Arithmetic("-", d, d).dtype is DataType.INTEGER

    def test_case_dtype_from_first_branch(self):
        pred = Comparison("=", Literal(1), Literal(1))
        case = Case([(pred, Literal("x"))], Literal("y"))
        assert case.dtype is DataType.VARCHAR

    def test_aggregate_dtypes(self):
        arg = ColumnRef(col("v", DataType.INTEGER))
        assert AggregateCall(AggregateFunction.COUNT, arg).dtype \
            is DataType.INTEGER
        assert AggregateCall(AggregateFunction.AVG, arg).dtype \
            is DataType.FLOAT
        assert AggregateCall(AggregateFunction.SUM, arg).dtype \
            is DataType.INTEGER


class TestHelpers:
    def test_conjunction_flattens_and_drops_true(self):
        a = equals(col("a"), Literal(1))
        b = equals(col("b"), Literal(2))
        merged = conjunction([And([a, b]), Literal(True), a])
        assert isinstance(merged, And)
        assert len(merged.args) == 3

    def test_conjunction_empty_is_true(self):
        assert conjunction([]) == Literal(True)

    def test_conjuncts_flatten_nested(self):
        a = equals(col("a"), Literal(1))
        b = equals(col("b"), Literal(2))
        c = equals(col("c"), Literal(3))
        assert len(conjuncts(And([And([a, b]), c]))) == 3

    def test_disjuncts_flatten_nested(self):
        a = equals(col("a"), Literal(1))
        b = equals(col("b"), Literal(2))
        c = equals(col("c"), Literal(3))
        assert len(disjuncts(Or([Or([a, b]), c]))) == 3

    def test_column_equalities(self):
        a, b, c = col("a"), col("b"), col("c")
        pred = And([equals(a, b), Comparison("<", ColumnRef(c), Literal(1)),
                    equals(c, Literal(5))])
        pairs = column_equalities(pred)
        assert pairs == [(a, b)]

    def test_sql_rendering(self):
        a = col("a")
        expr = Not(And([IsNull(ColumnRef(a)),
                        InList(ColumnRef(a), [1, 2], negated=True)]))
        text = expr.sql()
        assert "NOT" in text and "IS NULL" in text and "NOT IN" in text

    def test_like_rendering(self):
        expr = Like(ColumnRef(col("s", DataType.VARCHAR)), "x%",
                    negated=True)
        assert "NOT LIKE 'x%'" in expr.sql()
