"""Spilling hash aggregation — paper footnote 3.

"The implementation, whether hash based or sort based, of aggregate
functions in a query execution engine requires this ability of splitting
an aggregate into local and global components, if it has to spill data to
disk and then recombine it."

The executor's hash aggregate flushes partial-state runs past a group
threshold and recombines them with the descriptors' local/global merge;
results must be identical to the unbounded in-memory path.
"""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (AggregateCall, AggregateFunction, Column,
                           ColumnRef, DataType)
from repro.catalog import ColumnDef, TableDef
from repro.executor.physical import PhysicalExecutor
from repro.physical.plan import PHashAggregate, PScalarAggregate, PTableScan
from repro.storage import Storage


def build_storage(rows):
    storage = Storage()
    table = storage.create(TableDef(
        "t", [ColumnDef("grp", DataType.INTEGER, False),
              ColumnDef("val", DataType.INTEGER, True)]))
    table.insert_many(rows)
    return storage


def agg_plan(funcs):
    grp = Column("grp", DataType.INTEGER, False)
    val = Column("val", DataType.INTEGER, True)
    scan = PTableScan("t", [grp, val])
    aggregates = []
    for func in funcs:
        out = Column(func.value, DataType.FLOAT)
        argument = None if func is AggregateFunction.COUNT_STAR \
            else ColumnRef(val)
        aggregates.append((out, AggregateCall(func, argument)))
    return PHashAggregate(scan, [grp], aggregates)


ALL_FUNCS = [AggregateFunction.SUM, AggregateFunction.COUNT,
             AggregateFunction.COUNT_STAR, AggregateFunction.MIN,
             AggregateFunction.MAX, AggregateFunction.AVG]


class TestSpilling:
    def test_spilled_equals_in_memory(self):
        rng = random.Random(7)
        rows = [(rng.randint(0, 40), rng.choice([None] + list(range(10))))
                for _ in range(500)]
        storage = build_storage(rows)
        plan = agg_plan(ALL_FUNCS)
        unbounded = Counter(PhysicalExecutor(storage).run(plan))
        for threshold in (1, 2, 7, 100):
            spilled = Counter(PhysicalExecutor(
                storage, aggregate_spill_threshold=threshold).run(plan))
            assert spilled == unbounded, f"threshold {threshold}"

    def test_distinct_disables_spilling_but_stays_correct(self):
        rows = [(i % 5, i % 3) for i in range(60)]
        storage = build_storage(rows)
        grp = Column("grp", DataType.INTEGER, False)
        val = Column("val", DataType.INTEGER, True)
        scan = PTableScan("t", [grp, val])
        out = Column("dc", DataType.INTEGER)
        plan = PHashAggregate(scan, [grp], [
            (out, AggregateCall(AggregateFunction.COUNT, ColumnRef(val),
                                distinct=True))])
        unbounded = Counter(PhysicalExecutor(storage).run(plan))
        spilled = Counter(PhysicalExecutor(
            storage, aggregate_spill_threshold=1).run(plan))
        assert spilled == unbounded
        assert all(count == 3 for _, count in unbounded)

    def test_empty_input(self):
        storage = build_storage([])
        plan = agg_plan([AggregateFunction.SUM])
        assert PhysicalExecutor(
            storage, aggregate_spill_threshold=1).run(plan) == []

    @settings(max_examples=60, deadline=None)
    @given(rows=st.lists(st.tuples(st.integers(0, 8),
                                   st.one_of(st.none(),
                                             st.integers(-5, 5))),
                         max_size=60),
           threshold=st.integers(1, 10))
    def test_property_spill_equivalence(self, rows, threshold):
        storage = build_storage(rows)
        plan = agg_plan(ALL_FUNCS)
        unbounded = Counter(PhysicalExecutor(storage).run(plan))
        spilled = Counter(PhysicalExecutor(
            storage, aggregate_spill_threshold=threshold).run(plan))
        assert spilled == unbounded
