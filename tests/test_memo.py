"""Unit tests for the memo structure and exploration machinery."""

import pytest

from repro.algebra import (Column, ColumnRef, Comparison, DataType, Get,
                           Join, JoinKind, Literal, Select, equals)
from repro.core.optimizer import Estimator, Memo, Optimizer, OptimizerConfig
from repro.core.optimizer.memo import GroupRefLeaf

from .helpers import customer_scan, orders_scan


def make_memo():
    return Memo(lambda group_lookup=None: Estimator(
        lambda name: None, group_lookup))


class TestMemoInsertion:
    def test_identical_trees_dedupe(self):
        memo = make_memo()
        cust, (ck, _, _) = customer_scan()
        tree = Select(cust, equals(ck, Literal(1)))
        first = memo.insert_tree(tree)
        second = memo.insert_tree(tree)
        assert first == second
        assert len(memo.groups) == 2  # Get group + Select group

    def test_self_join_instances_stay_distinct(self):
        memo = make_memo()
        a, _ = customer_scan()
        b, _ = customer_scan()
        join = Join.cross(a, b)
        memo.insert_tree(join)
        # a and b have identical structure but distinct column identities
        get_groups = [g for g in memo.groups
                      if g.exprs and g.exprs[0].op.label() == "Get(customer)"]
        assert len(get_groups) == 2

    def test_children_become_group_refs(self):
        memo = make_memo()
        cust, (ck, _, _) = customer_scan()
        tree = Select(cust, equals(ck, Literal(1)))
        root = memo.insert_tree(tree)
        (expr,) = memo.group(root).exprs
        assert isinstance(expr.op.children[0], GroupRefLeaf)

    def test_group_caches_properties(self):
        memo = make_memo()
        cust, (ck, _, _) = customer_scan()
        gid = memo.insert_tree(cust)
        group = memo.group(gid)
        assert frozenset({ck.cid}) in group.keys
        assert group.estimate.rows > 0

    def test_group_ref_reports_outer_references(self):
        memo = make_memo()
        _, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        correlated = Select(orders, equals(ock, ck))
        gid = memo.insert_tree(correlated)
        ref = memo.group_ref(gid)
        assert ck in ref.outer_references()

    def test_add_expr_to_group_dedupes(self):
        memo = make_memo()
        cust, (ck, _, _) = customer_scan()
        tree = Select(cust, equals(ck, Literal(1)))
        root = memo.insert_tree(tree)
        assert memo.add_expr_to_group(tree, root) is None  # duplicate

    def test_on_new_expr_callback_sees_children(self):
        memo = make_memo()
        seen = []
        memo.on_new_expr = lambda expr, gid: seen.append(expr.op.label())
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        tree = Join(JoinKind.INNER, cust, orders, equals(ock, ck))
        memo.insert_tree(tree)
        assert any(label.startswith("Get") for label in seen)
        assert any(label.startswith("Join") for label in seen)


class TestExplorationBudget:
    def test_budget_bounds_memo_size(self, mini_catalog):
        from repro.binder import Binder
        from repro.core.normalize import normalize
        from repro.core.optimizer.pushdown import push_selections
        from repro.sql import parse

        binder = Binder(mini_catalog)
        bound = binder.bind(parse("""
            select 1 from customer, orders, lineitem, part, supplier
            where c_custkey = o_custkey and o_orderkey = l_orderkey
              and l_partkey = p_partkey and l_suppkey = s_suppkey"""))
        rel = push_selections(normalize(bound.rel))

        small = Optimizer(lambda name: None, lambda name: [],
                          OptimizerConfig(max_memo_exprs=50))
        memo = Memo(lambda group_lookup=None: Estimator(
            lambda name: None, group_lookup))
        memo.insert_tree(rel)
        small._explore(memo)
        total = sum(len(g.exprs) for g in memo.groups)
        # one in-flight batch may overshoot slightly; the bound holds
        # within a small factor
        assert total < 50 * 4

    def test_exploration_terminates_on_small_queries(self, mini_catalog):
        from repro.binder import Binder
        from repro.core.normalize import normalize
        from repro.sql import parse

        binder = Binder(mini_catalog)
        bound = binder.bind(parse(
            "select c_custkey from customer where c_acctbal > 0.0"))
        rel = normalize(bound.rel)
        optimizer = Optimizer(lambda name: None, lambda name: [])
        plan = optimizer.optimize(rel)  # must not hang
        assert plan is not None
