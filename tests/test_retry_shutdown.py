"""Client retries and graceful server shutdown.

The retry half runs against a *scripted* stub server so every schedule
is deterministic: overload rejections, dropped connections and
recoveries happen exactly where the script says, and the test asserts
which requests were retried, which reconnected, and which refused to
(non-idempotent operations never retry a connection reset).

The shutdown half runs against the real :class:`QueryServer`:
``drain()`` flips ``health`` to not-ready and rejects new work with a
clean ``ServerError`` while observability ops keep answering, and
``stop()`` waits for in-flight requests before tearing down.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import Database, DataType, ServerError, ServerOverloaded
from repro.errors import ProtocolError
from repro.server import QueryServer, RetryPolicy, ServerClient

OVERLOADED = {"ok": False, "error": {
    "type": "ServerOverloaded", "message": "server overloaded",
    "reason": "queue full", "limit": 1, "pending": 2}}

FAST_RETRY = dict(base_delay=0.001, max_delay=0.01, jitter=0.0)


class ScriptedServer:
    """A wire-protocol stub driven by a per-request action script.

    Each incoming request consumes one action: a dict is sent back as
    the JSON response; the string ``"drop"`` closes the connection
    without replying (a reset).  Requests beyond the script get
    ``{"ok": true, "pong": true}``.  Every decoded request is recorded.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests: list[dict] = []
        self.connections = 0
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.1)
        self.address = self._listener.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        conn = reader = None
        while not self._stop.is_set():
            if conn is None:
                try:
                    conn, _addr = self._listener.accept()
                except socket.timeout:
                    continue
                self.connections += 1
                reader = conn.makefile("rb")
            line = reader.readline()
            if not line:
                reader.close()
                conn.close()
                conn = reader = None
                continue
            self.requests.append(json.loads(line))
            action = (self.script.pop(0) if self.script
                      else {"ok": True, "pong": True})
            if action == "drop":
                reader.close()
                conn.close()
                conn = reader = None
                continue
            conn.sendall(json.dumps(action).encode() + b"\n")

    def close(self):
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._listener.close()


@pytest.fixture
def scripted():
    servers = []

    def start(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


class TestRetryPolicy:
    def test_delays_are_deterministic_for_a_seed(self):
        policy = RetryPolicy(seed=42)
        first = [policy.delay(i, policy.rng()) for i in range(5)]
        second = [policy.delay(i, policy.rng()) for i in range(5)]
        assert first == second
        other = [RetryPolicy(seed=7).delay(i, RetryPolicy(seed=7).rng())
                 for i in range(5)]
        assert other != first  # the seed actually matters

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(base_delay=0.05, multiplier=2.0,
                             max_delay=0.2, jitter=0.0)
        rng = policy.rng()
        assert [policy.delay(i, rng) for i in range(4)] == \
            [0.05, 0.1, 0.2, 0.2]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5,
                             seed=1, max_delay=10.0)
        rng = policy.rng()
        for attempt in range(50):
            assert 0.5 <= policy.delay(attempt, rng) <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestClientRetries:
    def test_overload_retried_for_any_op(self, scripted):
        server = scripted([OVERLOADED, OVERLOADED,
                           {"ok": True, "inserted": 2}])
        client = ServerClient(*server.address,
                              retry=RetryPolicy(max_attempts=3,
                                                **FAST_RETRY))
        assert client.insert("t", [(1,), (2,)]) == 2
        assert [r["op"] for r in server.requests] == ["insert"] * 3

    def test_overload_exhausts_attempts(self, scripted):
        server = scripted([OVERLOADED] * 5)
        client = ServerClient(*server.address,
                              retry=RetryPolicy(max_attempts=3,
                                                **FAST_RETRY))
        with pytest.raises(ServerOverloaded):
            client.ping()
        assert len(server.requests) == 3

    def test_no_policy_means_no_retry(self, scripted):
        server = scripted([OVERLOADED, {"ok": True, "pong": True}])
        client = ServerClient(*server.address)
        with pytest.raises(ServerOverloaded):
            client.ping()
        assert len(server.requests) == 1

    def test_idempotent_op_reconnects_after_reset(self, scripted):
        server = scripted(["drop", {"ok": True, "pong": True}])
        client = ServerClient(*server.address,
                              retry=RetryPolicy(max_attempts=3,
                                                **FAST_RETRY))
        assert client.ping() is True
        assert server.connections == 2  # the retry reconnected

    def test_non_idempotent_op_never_retries_a_reset(self, scripted):
        server = scripted(["drop", {"ok": True}])
        client = ServerClient(*server.address,
                              retry=RetryPolicy(max_attempts=5,
                                                **FAST_RETRY))
        with pytest.raises(ProtocolError):
            client.commit()
        assert [r["op"] for r in server.requests] == ["commit"]

    def test_connection_retry_can_be_disabled(self, scripted):
        server = scripted(["drop", {"ok": True, "pong": True}])
        client = ServerClient(
            *server.address,
            retry=RetryPolicy(max_attempts=3,
                              retry_connection_errors=False,
                              **FAST_RETRY))
        with pytest.raises(ProtocolError):
            client.ping()
        assert server.connections == 1

    def test_deliberate_close_is_not_retried(self, scripted):
        server = scripted([])
        client = ServerClient(*server.address,
                              retry=RetryPolicy(max_attempts=5,
                                                **FAST_RETRY))
        client.close()
        with pytest.raises(ProtocolError, match="closed"):
            client.query("select 1")
        # Only the goodbye reached the server; nothing was retried.
        assert [r["op"] for r in server.requests] == ["close"]


def build_db() -> Database:
    db = Database()
    db.create_table("t", [("a", DataType.INTEGER, False)],
                    primary_key=("a",))
    db.insert("t", [(i,) for i in range(50)])
    return db


class TestGracefulShutdown:
    def test_health_reports_ready_then_draining(self):
        with QueryServer(build_db()) as server:
            client = ServerClient(*server.address)
            health = client.health()
            assert health["status"] == "ok"
            assert health["live"] and health["ready"]
            assert health["durability"] == {"enabled": False}
            for key in ("active_requests", "admission_queue_depth",
                        "open_sessions", "plan_cache_hit_rate"):
                assert key in health
            server.drain()
            health = client.health()
            assert health["status"] == "draining"
            assert health["live"] and not health["ready"]
            client.close()

    def test_health_exposes_durability(self, tmp_path):
        db = Database(path=str(tmp_path))
        db.create_table("t", [("a", DataType.INTEGER, False)])
        db.insert("t", [(1,)])
        with QueryServer(db) as server:
            client = ServerClient(*server.address)
            durability = client.health()["durability"]
            assert durability["enabled"] is True
            assert durability["wal_bytes"] > 0
            assert durability["recovery"] is not None
            client.close()
        db.close()

    def test_drain_rejects_new_work_cleanly(self):
        with QueryServer(build_db()) as server:
            client = ServerClient(*server.address)
            assert client.query("select count(*) from t").scalar() == 50
            server.drain()
            with pytest.raises(ServerError, match="shutting down"):
                client.query("select count(*) from t")
            # Observability and cleanup ops still answer.
            assert client.ping() is True
            client.rollback()
            assert client.metrics()["open_sessions"] >= 1
            client.close()

    def test_stop_idle_server_is_fast(self):
        server = QueryServer(build_db()).start()
        client = ServerClient(*server.address)
        client.ping()
        started = time.monotonic()
        server.stop()
        assert time.monotonic() - started < 3.0
        client.close()

    def test_stop_waits_for_in_flight_request(self):
        db = build_db()
        db.insert("t", [(i,) for i in range(50, 800)])
        server = QueryServer(db, request_timeout=None).start()
        client = ServerClient(*server.address, timeout=60.0)
        result: list = []

        def slow_query():
            result.append(client.query(
                "select count(*) from t a, t b").scalar())

        thread = threading.Thread(target=slow_query)
        thread.start()
        time.sleep(0.2)  # let the request reach the worker
        server.stop(drain_timeout=30.0)
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert result == [800 * 800]
        client.close()

    def test_stop_is_idempotent(self):
        server = QueryServer(build_db()).start()
        server.stop()
        server.stop()
