"""Template-based SQL fuzzing: randomized queries, differential execution.

Hypothesis composes queries from a grammar of the constructs the paper
targets (correlated scalar subqueries, EXISTS/NOT EXISTS, IN, quantified
comparisons, grouping with HAVING) over small NULL-rich tables; every
query must produce identical row bags under FULL, DECORRELATE_ONLY,
CORRELATED and the naive interpreter.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (CORRELATED, DECORRELATE_ONLY, FULL, NAIVE, Database,
                   DataType)

COLUMNS_T = ["t.a", "t.b"]
COLUMNS_U = ["u.c", "u.d"]
OPS = ["=", "<>", "<", "<=", ">", ">="]
AGGS = ["sum", "min", "max", "count", "avg"]


def build_db(t_rows, u_rows) -> Database:
    db = Database()
    db.create_table("t", [("id", DataType.INTEGER, False),
                          ("a", DataType.INTEGER, True),
                          ("b", DataType.INTEGER, True)],
                    primary_key=("id",))
    db.create_table("u", [("id", DataType.INTEGER, False),
                          ("c", DataType.INTEGER, True),
                          ("d", DataType.INTEGER, True)],
                    primary_key=("id",))
    db.insert("t", [(i + 1, a, b) for i, (a, b) in enumerate(t_rows)])
    db.insert("u", [(i + 1, c, d) for i, (c, d) in enumerate(u_rows)])
    return db


# -- query grammar -------------------------------------------------------------

literal = st.integers(0, 3).map(str)
t_col = st.sampled_from(COLUMNS_T)
u_col = st.sampled_from(COLUMNS_U)
op = st.sampled_from(OPS)


@st.composite
def simple_predicate(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return f"{draw(t_col)} {draw(op)} {draw(literal)}"
    if kind == 1:
        return f"{draw(t_col)} {draw(op)} {draw(t_col)}"
    return f"{draw(t_col)} is {'not ' if draw(st.booleans()) else ''}null"


@st.composite
def subquery_predicate(draw):
    kind = draw(st.integers(0, 4))
    inner_filter = draw(st.sampled_from([
        "", f" and u.d {draw(op)} {draw(literal)}"]))
    correlated = draw(st.booleans())
    correlation = f"u.c = {draw(t_col)}" if correlated \
        else f"u.c {draw(op)} {draw(literal)}"
    body = f"select u.c from u where {correlation}{inner_filter}"
    if kind == 0:
        negated = "not " if draw(st.booleans()) else ""
        return (f"{negated}exists (select * from u "
                f"where {correlation}{inner_filter})")
    if kind == 1:
        negated = "not " if draw(st.booleans()) else ""
        return f"{draw(t_col)} {negated}in ({body})"
    if kind == 2:
        quantifier = draw(st.sampled_from(["any", "all"]))
        return f"{draw(t_col)} {draw(op)} {quantifier} ({body})"
    if kind == 3:
        agg = draw(st.sampled_from(AGGS))
        arg = "*" if agg == "count" and draw(st.booleans()) else "u.d"
        return (f"{draw(t_col)} {draw(op)} "
                f"(select {agg}({arg}) from u "
                f"where {correlation}{inner_filter})")
    return f"{draw(t_col)} in ({draw(literal)}, {draw(literal)})"


@st.composite
def where_clause(draw):
    parts = draw(st.lists(
        st.one_of(simple_predicate(), subquery_predicate()),
        min_size=1, max_size=3))
    connector = draw(st.sampled_from([" and ", " or "]))
    return connector.join(f"({p})" for p in parts)


@st.composite
def query(draw):
    grouped = draw(st.booleans())
    where = f" where {draw(where_clause())}" \
        if draw(st.booleans()) else ""
    if grouped:
        agg = draw(st.sampled_from(AGGS))
        arg = "*" if agg == "count" else "t.b"
        having = ""
        if draw(st.booleans()):
            having = f" having {agg}({arg}) {draw(op)} {draw(literal)}"
        return (f"select t.a, {agg}({arg}) from t{where} "
                f"group by t.a{having}")
    columns = draw(st.sampled_from(["t.a", "t.a, t.b", "t.b, t.a"]))
    distinct = "distinct " if draw(st.booleans()) else ""
    return f"select {distinct}{columns} from t{where}"


rows_strategy = st.lists(
    st.tuples(st.one_of(st.none(), st.integers(0, 3)),
              st.one_of(st.none(), st.integers(0, 3))),
    max_size=6)


@settings(max_examples=120, deadline=None)
@given(t_rows=rows_strategy, u_rows=rows_strategy, sql=query())
def test_fuzzed_queries_agree(t_rows, u_rows, sql):
    db = build_db(t_rows, u_rows)
    reference = Counter(db.execute(sql, NAIVE).rows)
    for mode in (FULL, DECORRELATE_ONLY, CORRELATED):
        assert Counter(db.execute(sql, mode).rows) == reference, \
            f"{mode.name} diverged on: {sql}"
