"""Property-based crash recovery: random schedules, random crash offsets.

Hypothesis drives a random interleaving of autocommit inserts, session
transactions (committed or rolled back) and DDL against a durable
database, tracking a shadow model of what each operation should have
made durable and the WAL byte offset at which it became so.  The "crash"
is then brutal and exact: the WAL file is truncated at an *arbitrary*
byte offset — record boundaries, mid-header, mid-payload, anywhere — and
the database is reopened.

The recovered state must equal the shadow model's committed prefix at
that offset: every operation whose record ended at or before the cut is
fully present, everything after is fully absent, and nothing is ever
half-applied.  This is the same contract the deterministic chaos
schedules assert, but quantified over schedules and cut points instead
of hand-picked ones.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DataType
from repro.durability import WAL_FILENAME

OPS = st.lists(
    st.sampled_from(["insert", "txn_commit", "txn_rollback", "ddl_view",
                     "ddl_table"]),
    min_size=1, max_size=12)


@given(ops=OPS, cut=st.integers(min_value=0, max_value=10_000),
       data=st.data())
@settings(max_examples=60, deadline=None)
def test_recovery_equals_committed_prefix(ops, cut, data):
    directory = tempfile.mkdtemp(prefix="repro-durability-")
    try:
        # Huge checkpoint trigger: the whole history stays in the WAL,
        # so the cut offset addresses the full schedule.
        db = Database(path=directory, checkpoint_bytes=1 << 30)
        db.create_table("t", [("k", DataType.INTEGER, False)],
                        primary_key=("k",))

        def wal_end():
            return db.durability_status()["wal_bytes"]

        # Shadow model: (wal end offset, durable keys, durable views,
        # durable extra tables) after each durable point.  Offset 0 is
        # the empty database — a cut before the first record must
        # recover even table ``t`` away.
        keys: set[int] = set()
        views: set[str] = set()
        tables: set[str] = set()
        timeline = [(0, set(), set(), set())]
        create_t_end = wal_end()
        timeline.append((create_t_end, set(), set(), set()))

        def mark():
            timeline.append((wal_end(), set(keys), set(views),
                             set(tables)))

        next_key = iter(range(10_000))
        seq = iter(range(10_000))
        for op in ops:
            if op == "insert":
                batch = [(next(next_key),)
                         for _ in range(data.draw(
                             st.integers(1, 3), label="batch"))]
                db.insert("t", batch)
                keys.update(k for (k,) in batch)
                mark()
            elif op in ("txn_commit", "txn_rollback"):
                session = db.session()
                try:
                    session.begin()
                    staged = [(next(next_key),) for _ in range(2)]
                    session.insert("t", staged)
                    if op == "txn_commit":
                        session.commit()
                        keys.update(k for (k,) in staged)
                        mark()
                    else:
                        session.rollback()
                finally:
                    session.close()
            elif op == "ddl_view":
                name = f"v{next(seq)}"
                db.create_view(name, "select k from t")
                views.add(name)
                mark()
            elif op == "ddl_table":
                name = f"x{next(seq)}"
                db.create_table(name, [("a", DataType.INTEGER)])
                tables.add(name)
                mark()
        db.close()

        wal_path = os.path.join(directory, WAL_FILENAME)
        total = os.path.getsize(wal_path)
        assert timeline[-1][0] == total
        offset = min(cut, total)
        with open(wal_path, "r+b") as handle:
            handle.truncate(offset)

        _end, want_keys, want_views, want_tables = max(
            (entry for entry in timeline if entry[0] <= offset),
            key=lambda entry: entry[0])

        recovered = Database(path=directory)
        if offset < create_t_end:
            assert not recovered.catalog.has_table("t")
            assert want_keys == set()
        else:
            got_keys = {r[0] for r in recovered.execute(
                "select k from t").rows}
            assert got_keys == want_keys
        for name in want_views:
            assert recovered.catalog.has_view(name)
        assert {n for n in recovered.table_names()
                if n.startswith("x")} == want_tables
        # Every view that survived must still be executable.
        for name in want_views:
            recovered.execute(f"select * from {name}")
        recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
