"""Direct unit tests for the naive logical interpreter (the oracle).

The oracle's own behaviour is pinned here — the rest of the suite uses it
differentially, so its edge cases deserve first-class coverage.
"""

import pytest

from repro.algebra import (AggregateCall, AggregateFunction, Apply, Column,
                           ColumnRef, Comparison, ConstantScan, DataType,
                           Difference, Get, GroupBy, Join, JoinKind,
                           Literal, Max1row, Project, ScalarGroupBy,
                           SegmentApply, SegmentRef, Select, Sort, Top,
                           UnionAll, equals)
from repro.algebra.scalar import (ExistsSubquery, InSubquery,
                                  QuantifiedComparison, ScalarSubquery)
from repro.errors import ExecutionError, SubqueryReturnedMultipleRows
from repro.executor import NaiveInterpreter


def interp(data):
    return NaiveInterpreter(lambda name: data[name])


def t_get(nullable_b=True):
    a = Column("a", DataType.INTEGER, nullable=False)
    b = Column("b", DataType.INTEGER, nullable=nullable_b)
    return Get("t", [a, b], []), a, b


class TestJoinKinds:
    DATA = {"t": [(1, 10), (2, 20), (3, None)],
            "u": [(1, 10), (1, 11), (4, 40)]}

    def _pair(self):
        t, ta, tb = t_get()
        ua = Column("ua", DataType.INTEGER, nullable=False)
        ub = Column("ub", DataType.INTEGER, nullable=True)
        u = Get("u", [ua, ub], [])
        return t, ta, tb, u, ua, ub

    def test_inner(self):
        t, ta, tb, u, ua, ub = self._pair()
        rows = interp(self.DATA).run(Join(JoinKind.INNER, t, u,
                                          equals(ta, ua)))
        assert sorted(rows) == [(1, 10, 1, 10), (1, 10, 1, 11)]

    def test_left_outer_pads(self):
        t, ta, tb, u, ua, ub = self._pair()
        rows = interp(self.DATA).run(Join(JoinKind.LEFT_OUTER, t, u,
                                          equals(ta, ua)))
        padded = [r for r in rows if r[2] is None]
        assert len(rows) == 4 and len(padded) == 2

    def test_semi_and_anti(self):
        t, ta, tb, u, ua, ub = self._pair()
        semi = interp(self.DATA).run(Join(JoinKind.LEFT_SEMI, t, u,
                                          equals(ta, ua)))
        anti = interp(self.DATA).run(Join(JoinKind.LEFT_ANTI, t, u,
                                          equals(ta, ua)))
        assert semi == [(1, 10)]
        assert sorted(anti) == [(2, 20), (3, None)]

    def test_unknown_predicate_rejects(self):
        t, ta, tb, u, ua, ub = self._pair()
        rows = interp(self.DATA).run(Join(JoinKind.INNER, t, u,
                                          equals(tb, ub)))
        # t's NULL b never matches anything
        assert all(r[1] is not None for r in rows)


class TestSubqueryNodes:
    DATA = {"t": [(1, 10), (2, None)], "u": [(1, 5), (1, 6)]}

    def _outer_inner(self):
        t, ta, tb = t_get()
        ua = Column("ua", DataType.INTEGER, nullable=False)
        ub = Column("ub", DataType.INTEGER, nullable=False)
        u = Get("u", [ua, ub], [])
        return t, ta, tb, u, ua, ub

    def test_scalar_subquery_empty_is_null(self):
        t, ta, tb, u, ua, ub = self._outer_inner()
        sub = Project.passthrough(
            Select(u, equals(ua, Literal(99))), [ub])
        out = Column("s", DataType.INTEGER)
        tree = Project(t, [(out, ScalarSubquery(sub))])
        assert interp(self.DATA).run(tree) == [(None,), (None,)]

    def test_scalar_subquery_two_rows_raises(self):
        t, ta, tb, u, ua, ub = self._outer_inner()
        sub = Project.passthrough(Select(u, equals(ua, ta)), [ub])
        out = Column("s", DataType.INTEGER)
        tree = Project(t, [(out, ScalarSubquery(sub))])
        with pytest.raises(SubqueryReturnedMultipleRows):
            interp(self.DATA).run(tree)

    def test_quantified_all_over_empty_is_true(self):
        t, ta, tb, u, ua, ub = self._outer_inner()
        empty = Select(u, Literal(False))
        pred = QuantifiedComparison(
            ">", "ALL", ColumnRef(ta),
            Project.passthrough(empty, [ub]))
        rows = interp(self.DATA).run(Select(t, pred))
        assert len(rows) == 2  # vacuous truth

    def test_quantified_any_over_empty_is_false(self):
        t, ta, tb, u, ua, ub = self._outer_inner()
        empty = Select(u, Literal(False))
        pred = QuantifiedComparison(
            ">", "ANY", ColumnRef(ta),
            Project.passthrough(empty, [ub]))
        assert interp(self.DATA).run(Select(t, pred)) == []

    def test_in_subquery_null_needle_unknown(self):
        t, ta, tb, u, ua, ub = self._outer_inner()
        pred = InSubquery(ColumnRef(tb),
                          Project.passthrough(u, [ub]))
        rows = interp(self.DATA).run(Select(t, pred))
        assert all(r[1] is not None for r in rows)

    def test_exists_negated(self):
        t, ta, tb, u, ua, ub = self._outer_inner()
        pred = ExistsSubquery(Select(u, equals(ua, ta)), negated=True)
        rows = interp(self.DATA).run(Select(t, pred))
        assert rows == [(2, None)]


class TestSegmentApplyStack:
    def test_nested_segment_refs_restore(self):
        """A SegmentApply inside another must not clobber the outer
        segment binding."""
        data = {"t": [(1, 10), (1, 11), (2, 20)]}
        t, ta, tb = t_get(nullable_b=False)
        outer_mirrors = [c.fresh_copy() for c in t.output_columns()]

        inner_source = SegmentRef(outer_mirrors)
        inner_mirrors = [c.fresh_copy() for c in outer_mirrors]
        cnt = Column("cnt", DataType.INTEGER)
        innermost = ScalarGroupBy(SegmentRef(inner_mirrors), [
            (cnt, AggregateCall(AggregateFunction.COUNT_STAR))])
        nested = SegmentApply(inner_source, innermost,
                              [outer_mirrors[0]], inner_mirrors)
        tree = SegmentApply(t, nested, [ta], outer_mirrors)
        rows = interp(data).run(tree)
        assert sorted(rows) == [(1, 1, 2), (2, 2, 1)]


class TestBagOperators:
    def test_union_all_positional_maps(self):
        x = Column("x", DataType.INTEGER, False)
        y = Column("y", DataType.INTEGER, False)
        a = ConstantScan([x], [(1,), (2,)])
        b = ConstantScan([y], [(2,)])
        union = UnionAll.from_inputs([a, b])
        assert sorted(interp({}).run(union)) == [(1,), (2,), (2,)]

    def test_difference_multiplicities(self):
        x = Column("x", DataType.INTEGER, False)
        y = Column("y", DataType.INTEGER, False)
        a = ConstantScan([x], [(1,), (1,), (1,), (2,)])
        b = ConstantScan([y], [(1,), (1,)])
        diff = Difference.from_inputs(a, b)
        assert sorted(interp({}).run(diff)) == [(1,), (2,)]

    def test_difference_with_nulls(self):
        x = Column("x", DataType.INTEGER, True)
        y = Column("y", DataType.INTEGER, True)
        a = ConstantScan([x], [(None,), (None,), (1,)])
        b = ConstantScan([y], [(None,)])
        diff = Difference.from_inputs(a, b)
        # EXCEPT ALL matches NULLs as equal (distinct-like semantics)
        assert sorted(interp({}).run(diff),
                      key=lambda r: (r[0] is None, r[0])) == [(1,), (None,)]


class TestOrderingOperators:
    def test_sort_desc_nulls_last(self):
        t, ta, tb = t_get()
        data = {"t": [(1, 3), (2, None), (3, 1)]}
        rows = interp(data).run(Sort(t, [(ColumnRef(tb), False)]))
        assert [r[1] for r in rows] == [3, 1, None]

    def test_top_with_offset(self):
        t, ta, tb = t_get()
        data = {"t": [(i, i) for i in range(1, 6)]}
        tree = Top(Sort(t, [(ColumnRef(ta), True)]), 2, offset=2)
        assert interp(data).run(tree) == [(3, 3), (4, 4)]

    def test_max1row_boundary(self):
        t, ta, tb = t_get()
        assert interp({"t": [(1, 1)]}).run(Max1row(t)) == [(1, 1)]
        assert interp({"t": []}).run(Max1row(t)) == []
        with pytest.raises(SubqueryReturnedMultipleRows):
            interp({"t": [(1, 1), (2, 2)]}).run(Max1row(t))


class TestErrors:
    def test_segment_ref_without_binding(self):
        ref = SegmentRef([Column("m", DataType.INTEGER)])
        with pytest.raises(ExecutionError, match="SegmentRef"):
            interp({}).run(ref)

    def test_unbound_column(self):
        t, ta, tb = t_get()
        stray = Column("stray", DataType.INTEGER)
        tree = Select(t, equals(stray, Literal(1)))
        with pytest.raises(ExecutionError, match="unbound"):
            interp({"t": [(1, 2)]}).run(tree)
