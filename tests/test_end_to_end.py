"""End-to-end differential tests: every execution mode must agree.

Each query runs through FULL (all optimizations, physical engine),
DECORRELATE_ONLY, CORRELATED (Apply kept, nested-loops execution) and
NAIVE (direct interpretation of the bound tree); results are compared as
multisets.  This exercises the complete pipeline: parser → binder →
normalizer → cost-based optimizer → physical executor.
"""

import datetime
from collections import Counter

import pytest

from repro import (CORRELATED, DECORRELATE_ONLY, FULL, NAIVE, Database,
                   DataType)

D = datetime.date


def build_database() -> Database:
    db = Database()
    db.create_table("customer",
                    [("c_custkey", DataType.INTEGER, False),
                     ("c_name", DataType.VARCHAR, False),
                     ("c_nationkey", DataType.INTEGER, False),
                     ("c_acctbal", DataType.FLOAT, False)],
                    primary_key=("c_custkey",))
    db.create_table("orders",
                    [("o_orderkey", DataType.INTEGER, False),
                     ("o_custkey", DataType.INTEGER, False),
                     ("o_totalprice", DataType.FLOAT, False),
                     ("o_orderdate", DataType.DATE, False),
                     ("o_orderpriority", DataType.VARCHAR, False)],
                    primary_key=("o_orderkey",))
    db.create_table("lineitem",
                    [("l_orderkey", DataType.INTEGER, False),
                     ("l_partkey", DataType.INTEGER, False),
                     ("l_linenumber", DataType.INTEGER, False),
                     ("l_quantity", DataType.FLOAT, False),
                     ("l_extendedprice", DataType.FLOAT, False)],
                    primary_key=("l_orderkey", "l_linenumber"))
    db.create_table("part",
                    [("p_partkey", DataType.INTEGER, False),
                     ("p_brand", DataType.VARCHAR, False),
                     ("p_container", DataType.VARCHAR, False),
                     ("p_retailprice", DataType.FLOAT, False)],
                    primary_key=("p_partkey",))
    db.create_table("nully",
                    [("n_id", DataType.INTEGER, False),
                     ("n_a", DataType.INTEGER, True),
                     ("n_b", DataType.INTEGER, True)],
                    primary_key=("n_id",))
    db.create_index("ix_orders_custkey", "orders", ["o_custkey"])
    db.create_index("ix_lineitem_partkey", "lineitem", ["l_partkey"])

    db.insert("customer", [
        (1, "alice", 10, 100.0), (2, "bob", 20, 200.0),
        (3, "carol", 10, 50.0), (4, "dave", 30, 0.0)])
    db.insert("orders", [
        (100, 1, 600000.0, D(1996, 1, 2), "1-URGENT"),
        (101, 1, 500000.0, D(1996, 2, 2), "2-HIGH"),
        (102, 2, 100.0, D(1997, 1, 2), "1-URGENT"),
        (103, 3, 999999.0, D(1995, 5, 5), "3-LOW"),
        (104, 3, 2.0, D(1995, 6, 5), "3-LOW")])
    db.insert("lineitem", [
        (100, 7, 1, 17.0, 1000.0), (100, 8, 2, 36.0, 2000.0),
        (101, 7, 1, 2.0, 100.0), (103, 9, 1, 28.0, 3000.0),
        (103, 7, 2, 1.0, 50.0), (104, 9, 1, 50.0, 75.0)])
    db.insert("part", [
        (7, "Brand#23", "MED BOX", 10.0), (8, "Brand#13", "LG BOX", 20.0),
        (9, "Brand#23", "MED BOX", 30.0), (10, "Brand#42", "SM BOX", 40.0)])
    db.insert("nully", [
        (1, None, 2), (2, 3, None), (3, None, None), (4, 5, 5), (5, 2, 1)])
    return db


@pytest.fixture(scope="module")
def db() -> Database:
    return build_database()


QUERIES = [
    # projections / filters / expressions
    "select c_custkey, c_acctbal * 2 from customer where c_acctbal >= 50.0",
    "select * from part where p_brand like 'Brand#2%'",
    "select c_name from customer where c_nationkey in (10, 30)",
    "select n_id from nully where n_a is null",
    "select c_name from customer order by c_acctbal desc limit 2",
    # joins
    """select c_name, o_orderkey from customer, orders
       where o_custkey = c_custkey and o_totalprice > 50.0""",
    """select c_name, o_orderkey from customer
       left outer join orders on o_custkey = c_custkey""",
    """select a.c_custkey, b.c_custkey from customer a, customer b
       where a.c_nationkey = b.c_nationkey and a.c_custkey < b.c_custkey""",
    # aggregation
    "select count(*), sum(c_acctbal), min(c_acctbal) from customer",
    """select o_custkey, count(*), max(o_totalprice) from orders
       group by o_custkey order by o_custkey""",
    """select c_nationkey, sum(c_acctbal) from customer
       group by c_nationkey having count(*) > 1""",
    "select distinct o_orderpriority from orders",
    "select count(distinct c_nationkey) from customer",
    "select avg(n_a) from nully",
    # the paper's running example (3 formulations)
    """select c_custkey from customer
       where 1000000 < (select sum(o_totalprice) from orders
                        where o_custkey = c_custkey)""",
    """select c_custkey
       from customer left outer join orders on o_custkey = c_custkey
       group by c_custkey having 1000000 < sum(o_totalprice)""",
    """select c_custkey
       from customer, (select o_custkey from orders group by o_custkey
                       having 1000000 < sum(o_totalprice)) as agg
       where o_custkey = c_custkey""",
    # subquery varieties
    """select c_name, (select count(*) from orders
                       where o_custkey = c_custkey) from customer""",
    """select c_custkey from customer
       where exists (select * from orders where o_custkey = c_custkey
                     and o_totalprice > 1000.0)""",
    """select c_custkey from customer
       where not exists (select * from orders
                         where o_custkey = c_custkey)""",
    """select p_partkey from part
       where p_partkey not in (select l_partkey from lineitem)""",
    """select n_id from nully where n_a not in (select n_b from nully)""",
    """select n_id from nully where n_a > all (select n_b from nully
                                               where n_b is not null)""",
    """select c_custkey from customer
       where c_acctbal > (select avg(c_acctbal) from customer)""",
    """select o_orderkey, (select c_name from customer
                           where c_custkey = o_custkey) from orders""",
    # TPC-H Q17 shape (SegmentApply territory)
    """select sum(l_extendedprice) / 7.0 as avg_yearly
       from lineitem, part
       where p_partkey = l_partkey and p_brand = 'Brand#23'
         and p_container = 'MED BOX'
         and l_quantity < (select 0.2 * avg(l2.l_quantity) from lineitem l2
                           where l2.l_partkey = p_partkey)""",
    # TPC-H Q4 shape
    """select o_orderpriority, count(*) as order_count from orders
       where o_orderdate >= date '1995-01-01'
         and o_orderdate < date '1995-01-01' + interval '2' year
         and exists (select * from lineitem where l_orderkey = o_orderkey)
       group by o_orderpriority order by o_orderpriority""",
    # union all + derived tables
    """select bal from (select c_acctbal as bal from customer
                        union all
                        select o_totalprice from orders) as u
       where bal > 100.0""",
    # correlated HAVING
    """select o_custkey from orders group by o_custkey
       having sum(o_totalprice) > (select avg(o_totalprice) from orders)""",
    # CASE
    """select c_name, case when c_acctbal > 150.0 then 'rich'
                           when c_acctbal > 25.0 then 'ok'
                           else 'poor' end from customer""",
    # date arithmetic
    """select o_orderkey from orders
       where o_orderdate between date '1995-01-01' and
             date '1996-01-01' + interval '45' day""",
    # subquery-valued needle inside IN
    """select c_custkey from customer
       where (select max(o_totalprice) from orders
              where o_custkey = c_custkey)
             in (select o_totalprice from orders)""",
    # subqueries on both sides of a comparison
    """select c_custkey from customer
       where (select count(*) from orders where o_custkey = c_custkey)
             > (select count(*) from lineitem
                where l_orderkey = c_custkey)""",
    # EXTRACT in filters and grouping
    """select extract(year from o_orderdate), count(*) from orders
       where extract(month from o_orderdate) <= 6
       group by extract(year from o_orderdate)""",
]

MODES = [FULL, DECORRELATE_ONLY, CORRELATED]


@pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
def test_all_modes_agree(db, sql):
    reference = db.execute(sql, NAIVE)
    for mode in MODES:
        result = db.execute(sql, mode)
        assert Counter(result.rows) == Counter(reference.rows), \
            f"mode {mode.name} diverged"
        assert result.names == reference.names


ORDERED_QUERIES = [
    "select c_name from customer order by c_acctbal desc, c_name limit 3",
    """select o_custkey, sum(o_totalprice) as total from orders
       group by o_custkey order by total desc""",
    # ordinal ORDER BY and LIMIT ... OFFSET
    "select c_name, c_acctbal from customer order by 2 desc, 1",
    """select c_custkey from customer
       order by c_custkey limit 2 offset 1""",
]


@pytest.mark.parametrize("sql", ORDERED_QUERIES, ids=range(len(ORDERED_QUERIES)))
def test_ordered_results_preserve_order(db, sql):
    reference = db.execute(sql, NAIVE)
    for mode in MODES:
        result = db.execute(sql, mode)
        assert result.rows == reference.rows  # exact order


class TestRuntimeErrors:
    def test_scalar_subquery_multiple_rows_raises_everywhere(self, db):
        from repro import SubqueryReturnedMultipleRows
        sql = """select c_name, (select o_orderkey from orders
                                 where o_custkey = c_custkey)
                 from customer"""
        for mode in MODES + [NAIVE]:
            with pytest.raises(SubqueryReturnedMultipleRows):
                db.execute(sql, mode)

    def test_max1row_passes_when_single(self, db):
        sql = """select c_name, (select o_orderkey from orders
                                 where o_custkey = c_custkey
                                   and o_totalprice > 999998.0)
                 from customer"""
        reference = db.execute(sql, NAIVE)
        for mode in MODES:
            assert Counter(db.execute(sql, mode).rows) == \
                Counter(reference.rows)


class TestEmptyTables:
    def test_queries_on_empty_database(self):
        db = Database()
        db.create_table("customer",
                        [("c_custkey", DataType.INTEGER, False),
                         ("c_acctbal", DataType.FLOAT, False)],
                        primary_key=("c_custkey",))
        db.create_table("orders",
                        [("o_orderkey", DataType.INTEGER, False),
                         ("o_custkey", DataType.INTEGER, False),
                         ("o_totalprice", DataType.FLOAT, False)],
                        primary_key=("o_orderkey",))
        queries = [
            "select count(*) from customer",
            "select sum(o_totalprice) from orders",
            """select c_custkey from customer
               where 10 < (select sum(o_totalprice) from orders
                           where o_custkey = c_custkey)""",
            """select c_custkey, (select count(*) from orders
                                  where o_custkey = c_custkey)
               from customer""",
        ]
        for sql in queries:
            reference = db.execute(sql, NAIVE)
            for mode in MODES:
                assert db.execute(sql, mode).rows == reference.rows
