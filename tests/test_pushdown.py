"""Dedicated tests for selection pushdown and OR-conjunct factoring."""

import pytest

from repro.algebra import (And, Column, ColumnRef, Comparison, DataType,
                           Get, Join, JoinKind, Literal, Max1row, Or,
                           Select, Top, collect_nodes, conjunction, equals)
from repro.core.optimizer.pushdown import factor_conjuncts, push_selections

from .helpers import customer_scan, orders_scan


def cmp(col, op, value):
    return Comparison(op, ColumnRef(col), Literal(value))


class TestFactorConjuncts:
    def _cols(self):
        a = Column("a", DataType.INTEGER)
        b = Column("b", DataType.INTEGER)
        return a, b

    def test_common_conjunct_hoisted(self):
        a, b = self._cols()
        common = cmp(a, "=", 1)
        part = Or([And([common, cmp(b, "=", 2)]),
                   And([common, cmp(b, "=", 3)])])
        result = factor_conjuncts([part])
        assert common in result
        assert len(result) == 2  # common + residual OR

    def test_flattens_nested_or(self):
        a, b = self._cols()
        common = cmp(a, "=", 1)
        nested = Or([Or([And([common, cmp(b, "=", 2)]),
                         And([common, cmp(b, "=", 3)])]),
                     And([common, cmp(b, "=", 4)])])
        result = factor_conjuncts([nested])
        assert common in result

    def test_no_common_part_untouched(self):
        a, b = self._cols()
        part = Or([cmp(a, "=", 1), cmp(b, "=", 2)])
        assert factor_conjuncts([part]) == [part]

    def test_whole_branch_common(self):
        """(A) ∨ (A ∧ q) reduces to A (the residual OR carries TRUE)."""
        from repro.algebra import conjunction
        from repro.executor.naive import NaiveInterpreter

        a, b = self._cols()
        common = cmp(a, ">", 0)
        part = Or([common, And([common, cmp(b, "=", 1)])])
        factored = conjunction(factor_conjuncts([part]))
        interp = NaiveInterpreter(lambda name: [])
        for a_val in (None, 0, 1):
            for b_val in (None, 1, 2):
                env = {a.cid: a_val, b.cid: b_val}
                assert interp.scalar(part, env) == \
                    interp.scalar(factored, env)

    def test_non_or_conjuncts_pass_through(self):
        a, b = self._cols()
        parts = [cmp(a, "=", 1), cmp(b, "<", 5)]
        assert factor_conjuncts(parts) == parts


class TestPushdownStructure:
    def test_q19_shape_exposes_equijoin(self):
        """The Q19 pattern: OR of ANDs each containing the same equality
        conjunct — after factoring the join gets an equi predicate."""
        li, (lk, lqty, lprice) = _li()
        part, (pk, psize) = _part()
        branch1 = And([equals(pk, lk), cmp(lqty, "<", 10),
                       cmp(psize, "<", 5)])
        branch2 = And([equals(pk, lk), cmp(lqty, ">=", 10),
                       cmp(psize, ">=", 5)])
        tree = Select(Join.cross(li, part), Or([branch1, branch2]))
        pushed = push_selections(tree)
        (join,) = collect_nodes(pushed, lambda n: isinstance(n, Join))
        assert join.predicate is not None
        assert "=" in join.predicate.sql()

    def test_blocked_below_top(self):
        cust, (ck, _, _) = customer_scan()
        tree = Select(Top(cust, 2), equals(ck, Literal(1)))
        pushed = push_selections(tree)
        assert isinstance(pushed, Select)
        assert isinstance(pushed.child, Top)

    def test_blocked_below_max1row(self):
        cust, (ck, _, _) = customer_scan()
        tree = Select(Max1row(cust), equals(ck, Literal(1)))
        pushed = push_selections(tree)
        assert isinstance(pushed, Select)
        assert isinstance(pushed.child, Max1row)

    def test_semi_join_on_clause_right_side_sinks(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, price) = orders_scan()
        pred = And([equals(ock, ck), cmp(price, ">", 10.0)])
        tree = Join(JoinKind.LEFT_SEMI, cust, orders, pred)
        pushed = push_selections(tree)
        (join,) = collect_nodes(pushed, lambda n: isinstance(n, Join)
                                and n.kind is JoinKind.LEFT_SEMI)
        assert isinstance(join.right, Select)

    def test_union_branch_translation(self):
        from repro.algebra import UnionAll

        a = Get("a", [Column("x", DataType.INTEGER, False)], [])
        b = Get("b", [Column("y", DataType.INTEGER, False)], [])
        union = UnionAll.from_inputs([a, b])
        (out,) = union.output_columns()
        tree = Select(union, cmp(out, ">", 3))
        pushed = push_selections(tree)
        selects = collect_nodes(pushed, lambda n: isinstance(n, Select))
        assert len(selects) == 2  # one per branch, remapped


def _li():
    lk = Column("l_partkey", DataType.INTEGER, False)
    lqty = Column("l_quantity", DataType.INTEGER, False)
    lprice = Column("l_price", DataType.FLOAT, False)
    return Get("lineitem", [lk, lqty, lprice], []), (lk, lqty, lprice)


def _part():
    pk = Column("p_partkey", DataType.INTEGER, False)
    psize = Column("p_size", DataType.INTEGER, False)
    return Get("part", [pk, psize], [[pk]]), (pk, psize)
