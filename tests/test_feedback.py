"""Adaptive optimization: cardinality feedback, Q-error, EXPLAIN ANALYZE.

Covers the full loop — executors count actual rows per operator, the
feedback loop computes Q-errors and persists corrections, misestimated
cached plans are flagged stale and re-optimized against corrected
statistics — plus the unified explain API (``ExplainOptions``, the
deprecated positional ``costs``, SQL-level ``EXPLAIN [ANALYZE]``, dict
format) and the wire-level ``stats`` round-trip.
"""

import json
import re
import warnings
from collections import Counter

import pytest
from hypothesis import given, settings

from repro import (FULL, NAIVE, Database, DataType, ExplainOptions,
                   QueryResult, QueryServer, QueryStats, ServerClient,
                   SqlSyntaxError, q_error)
from repro.catalog.statistics import (CardinalityCorrection,
                                      CorrectionStore)
from repro.faultinject import fail_always, fail_at
from repro.stats_version import capture

from tests.test_differential import (build_db, query, s_rows_strategy,
                                     t_rows_strategy)

SKEW_SQL = "select a from t where b = 0 order by a"


def skewed_db(**kwargs) -> Database:
    """100 rows, 80 of them with ``b = 0``: the uniform equality model
    (1/distinct) estimates ~4.8 rows for ``b = 0`` against an actual 80,
    a Q-error around 17 — far past any reasonable threshold."""
    db = Database(**kwargs)
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.INTEGER, True)],
                    primary_key=("a",))
    db.insert("t", [(i, 0 if i < 80 else i) for i in range(100)])
    return db


SKEW_EXPECTED = [(i,) for i in range(80)]


# -- q_error -------------------------------------------------------------------


class TestQError:
    def test_exact_estimate_is_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(1, 100) == q_error(100, 1) == 100.0

    def test_floored_at_one_row(self):
        # A fractional estimate against an empty actual is perfect, not
        # an infinity.
        assert q_error(0.04, 0) == 1.0
        assert q_error(0, 5) == 5.0


# -- correction store ----------------------------------------------------------


def _correction(table="t", key="b = 0", est=5.0, actual=80, counts=None):
    counts = counts if counts is not None else {table: 100}
    return CardinalityCorrection(
        table=table, predicate_key=key, estimated_rows=est,
        actual_rows=actual, q_error=q_error(est, actual),
        snapshot=capture(lambda name: counts[name], [table]))


class TestCorrectionStore:
    def test_record_and_lookup(self):
        store = CorrectionStore()
        store.record(_correction())
        found = store.lookup("T", "b = 0")  # table name case-folded
        assert found is not None
        assert found.actual_rows == 80
        assert store.lookup("t", "b = 1") is None

    def test_version_bumps_on_record(self):
        store = CorrectionStore()
        before = store.version
        store.record(_correction())
        assert store.version == before + 1

    def test_drifted_snapshot_evicts_on_lookup(self):
        counts = {"t": 100}
        store = CorrectionStore(row_count_of=lambda name: counts[name])
        store.record(_correction(counts=counts))
        assert store.lookup("t", "b = 0") is not None
        counts["t"] = 10_000  # the observation's world is gone
        assert store.lookup("t", "b = 0") is None
        assert len(store) == 0

    def test_invalidate_by_table(self):
        store = CorrectionStore()
        store.record(_correction(table="t"))
        store.record(_correction(table="u"))
        assert store.invalidate("t") == 1
        assert len(store) == 1
        assert store.invalidate() == 1
        assert len(store) == 0


# -- the feedback loop through Database.execute --------------------------------


class TestFeedbackLoop:
    def test_disabled_by_default(self):
        db = skewed_db()
        db.execute(SKEW_SQL, FULL)
        assert db.feedback.plans_recorded == 0
        assert len(db.corrections) == 0

    def test_misestimate_records_correction_and_flags_plan(self):
        db = skewed_db(feedback=True)
        result = db.execute(SKEW_SQL, FULL)
        assert result.rows == SKEW_EXPECTED
        assert result.stats.max_q_error is not None
        assert result.stats.max_q_error > 4.0
        assert db.feedback.plans_recorded == 1
        assert db.feedback.plans_invalidated == 1
        assert len(db.corrections) >= 1
        corr = db.corrections.entries()[0]
        assert corr.table == "t"
        assert corr.actual_rows == 80
        assert corr.q_error > 4.0

    def test_replanned_query_converges(self):
        db = skewed_db(feedback=True)
        first = db.execute(SKEW_SQL, FULL)
        assert first.stats.max_q_error > 4.0
        # The stale entry is discarded on the next lookup and the fresh
        # optimization consults the recorded correction: the estimate is
        # now the observed 80 rows and the Q-error collapses.
        second = db.execute(SKEW_SQL, FULL)
        assert second.rows == SKEW_EXPECTED
        assert db.plan_cache.stats.feedback_stale == 1
        assert second.stats.max_q_error is not None
        assert second.stats.max_q_error <= 2.0
        # Converged: the healthy plan stays cached, no more invalidation.
        third = db.execute(SKEW_SQL, FULL)
        assert third.rows == SKEW_EXPECTED
        assert db.feedback.plans_invalidated == 1
        assert db.plan_cache.stats.feedback_stale == 1

    def test_accurate_estimates_record_nothing(self):
        db = Database(feedback=True)
        db.create_table("t", [("a", DataType.INTEGER, False)],
                        primary_key=("a",))
        db.insert("t", [(i,) for i in range(50)])
        db.execute("select a from t order by a", FULL)
        assert db.feedback.plans_recorded == 1
        assert db.feedback.plans_invalidated == 0
        assert len(db.corrections) == 0

    def test_threshold_is_configurable(self):
        db = skewed_db(feedback=True, q_error_threshold=1e9)
        db.execute(SKEW_SQL, FULL)
        assert db.feedback.plans_invalidated == 0

    def test_threshold_below_one_rejected(self):
        with pytest.raises(ValueError):
            Database(feedback=True, q_error_threshold=0.5)

    def test_ddl_drops_corrections(self):
        db = skewed_db(feedback=True)
        db.execute(SKEW_SQL, FULL)
        assert len(db.corrections) >= 1
        db.drop_table("t")
        assert len(db.corrections) == 0

    def test_as_dict_counters(self):
        db = skewed_db(feedback=True)
        db.execute(SKEW_SQL, FULL)
        snap = db.feedback.as_dict()
        assert snap["plans_recorded"] == 1
        assert snap["plans_invalidated"] == 1
        assert snap["corrections_stored"] == len(db.corrections)
        assert snap["q_error_threshold"] == 4.0
        assert snap["dropped"] == 0


class TestFeedbackChaos:
    """A fault at ``feedback.record`` drops the observation — never the
    query."""

    def test_fault_drops_observation_not_query(self):
        db = skewed_db(feedback=True)
        with fail_always("feedback.record"):
            result = db.execute(SKEW_SQL, FULL)
        assert result.rows == SKEW_EXPECTED
        assert not result.degraded
        assert db.feedback.dropped == 1
        assert db.feedback.plans_recorded == 0
        assert len(db.corrections) == 0
        assert result.stats.max_q_error is None

    def test_recording_resumes_once_fault_clears(self):
        db = skewed_db(feedback=True)
        with fail_at("feedback.record", n=1) as (trigger,):
            db.execute(SKEW_SQL, FULL)
            db.execute(SKEW_SQL, FULL)
        assert trigger.fired
        assert db.feedback.dropped == 1
        assert db.feedback.plans_recorded == 1

    def test_explain_analyze_survives_the_fault(self):
        db = skewed_db()
        with fail_always("feedback.record"):
            rendered = db.explain(SKEW_SQL, FULL, analyze=True)
        # The tree still shows actual counts — only the persisted
        # observation was dropped.
        assert "actual=" in rendered
        assert db.feedback.dropped == 1


# -- unified explain API -------------------------------------------------------


def _reset_positional_warning():
    """The positional-costs deprecation warns once per process; reset
    the latch so each test observes a fresh first use."""
    import repro.database as _database
    _database._positional_costs_warned = False


class TestExplainApi:
    def test_positional_costs_deprecated(self):
        db = skewed_db()
        _reset_positional_warning()
        with pytest.warns(DeprecationWarning):
            rendered = db.explain(SKEW_SQL, FULL, True)
        assert "-- estimates --" in rendered

    def test_positional_costs_warns_once_per_process(self):
        db = skewed_db()
        _reset_positional_warning()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                db.explain(SKEW_SQL, FULL, True)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_keyword_costs_does_not_warn(self):
        db = skewed_db()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rendered = db.explain(SKEW_SQL, FULL, costs=True)
        assert "-- estimates --" in rendered

    def test_options_object_wins(self):
        db = skewed_db()
        rendered = db.explain(SKEW_SQL, FULL,
                              options=ExplainOptions(costs=True))
        assert "-- estimates --" in rendered

    def test_positional_plus_options_rejected(self):
        db = skewed_db()
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                db.explain(SKEW_SQL, FULL, True,
                           options=ExplainOptions())

    def test_invalid_format_rejected(self):
        with pytest.raises(ValueError):
            ExplainOptions(format="xml")
        db = skewed_db()
        with pytest.raises(ValueError):
            db.explain(SKEW_SQL, FULL, format="xml")

    def test_prepared_explain_unified(self):
        db = skewed_db()
        prepared = db.prepare(SKEW_SQL)
        _reset_positional_warning()
        with pytest.warns(DeprecationWarning):
            prepared.explain(True)
        analyzed = prepared.explain(analyze=True)
        assert "-- execution --" in analyzed
        assert "actual=" in analyzed

    def test_analyze_text_sections(self):
        db = skewed_db()
        rendered = db.explain(SKEW_SQL, FULL, analyze=True)
        assert "-- physical (analyze) --" in rendered
        assert "rows: 80" in rendered
        assert "max q-error:" in rendered
        assert "est=" in rendered and "q=" in rendered

    def test_analyze_dict_shape(self):
        db = skewed_db()
        payload = db.explain(SKEW_SQL, FULL, analyze=True, format="dict")
        assert payload["analyze"] is True
        assert payload["row_count"] == 80
        assert set(payload["stats"]) == set(QueryStats.FIELDS)
        json.dumps(payload)  # wire-safe by construction

        def check(node):
            assert set(node) == {"op", "estimated_rows", "actual_rows",
                                 "q_error", "children"}
            for child in node["children"]:
                check(child)

        check(payload["plan"])
        assert payload["plan"]["actual_rows"] == 80

    def test_plain_dict_shape(self):
        db = skewed_db()
        payload = db.explain(SKEW_SQL, FULL, format="dict")
        assert payload["analyze"] is False
        assert payload["plan"]["actual_rows"] is None
        json.dumps(payload)

    def test_naive_analyze_estimates_logical_tree(self):
        db = skewed_db()
        payload = db.explain(SKEW_SQL, NAIVE, analyze=True, format="dict")
        assert payload["engine"] is None or payload["engine"]
        assert payload["plan"]["actual_rows"] == 80
        # Estimates come from an Estimator walk over the bound tree.
        found = []

        def walk(node):
            if node["estimated_rows"] is not None:
                found.append(node["estimated_rows"])
            for child in node["children"]:
                walk(child)

        walk(payload["plan"])
        assert found


class TestSqlExplain:
    def test_explain_returns_plan_rows(self):
        db = skewed_db()
        result = db.execute(f"EXPLAIN {SKEW_SQL}")
        assert result.names == ["plan"]
        assert result.types == [DataType.VARCHAR]
        text = "\n".join(row[0] for row in result.rows)
        assert "-- physical --" in text
        assert "actual=" not in text

    def test_explain_analyze_counts_rows(self):
        db = skewed_db()
        result = db.execute(f"explain analyze {SKEW_SQL}")
        text = "\n".join(row[0] for row in result.rows)
        assert "-- execution --" in text
        assert "actual=" in text
        # The profiled run fed the feedback loop like any other.
        assert db.feedback.plans_recorded == 1

    def test_explain_is_case_and_whitespace_insensitive(self):
        db = skewed_db()
        result = db.execute(f"  Explain\n  ANALYZE  {SKEW_SQL}")
        assert result.names == ["plan"]

    def test_explain_without_query_rejected(self):
        db = skewed_db()
        with pytest.raises(SqlSyntaxError):
            db.execute("explain analyze")

    def test_explain_with_params(self):
        db = skewed_db()
        result = db.execute("explain analyze select a from t where b = ?",
                            FULL, [0])
        text = "\n".join(row[0] for row in result.rows)
        assert "rows: 80" in text


# -- QueryResult / QueryStats contracts ----------------------------------------


class TestQueryResultValidation:
    def test_mismatched_types_rejected(self):
        with pytest.raises(ValueError):
            QueryResult(["a", "b"], [], [DataType.INTEGER])

    def test_matching_and_absent_types_accepted(self):
        assert QueryResult(["a"], [], [DataType.INTEGER]).names == ["a"]
        padded = QueryResult(["a", "b"], [])
        assert len(padded.types) == 2


class TestQueryStatsRoundTrip:
    def test_field_names_are_frozen(self):
        # The wire protocol and EXPLAIN ANALYZE dict output use these
        # verbatim; renaming one is a protocol break.
        assert QueryStats.FIELDS == (
            "elapsed_seconds", "degraded", "fallback_reason", "governed",
            "rows_examined", "peak_rows_buffered", "rule_applications",
            "memo_groups", "timeout", "row_budget", "memory_budget",
            "max_q_error")

    def test_round_trip(self):
        stats = QueryStats(elapsed_seconds=1.5, degraded=True,
                           fallback_reason="why", max_q_error=3.5)
        assert QueryStats.from_dict(stats.as_dict()) == stats

    def test_from_dict_ignores_unknown_and_defaults_missing(self):
        rebuilt = QueryStats.from_dict({"elapsed_seconds": 2.0,
                                        "bogus_field": 1})
        assert rebuilt.elapsed_seconds == 2.0
        assert rebuilt.max_q_error is None


# -- wire round-trip -----------------------------------------------------------


class TestWireStats:
    def test_client_result_carries_stats(self):
        db = skewed_db(feedback=True)
        with QueryServer(db, max_workers=2) as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                result = client.query(SKEW_SQL)
                assert result.rows == SKEW_EXPECTED
                assert isinstance(result.stats, QueryStats)
                assert result.stats.elapsed_seconds >= 0.0
                assert result.stats.max_q_error > 4.0
                metrics = client.metrics()
        assert metrics["feedback"]["plans_recorded"] >= 1
        assert metrics["feedback"]["corrections_stored"] >= 1

    def test_client_explain_analyze_dict(self):
        db = skewed_db()
        with QueryServer(db, max_workers=2) as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                payload = client.explain(SKEW_SQL, analyze=True,
                                         format="dict")
                assert payload["analyze"] is True
                assert payload["plan"]["actual_rows"] == 80
                text = client.explain(SKEW_SQL)
                assert isinstance(text, str)
                assert "-- physical --" in text


# -- cross-engine agreement of actual counts -----------------------------------


def _flatten(node):
    """Pre-order (op, actual) pairs — the per-operator execution trace.

    Binder-assigned column ids (``a#54``) differ between independent
    compilations of the same statement, so they are stripped before
    comparing traces across engines.
    """
    label = re.sub(r"#\d+", "", node["op"])
    return ([(label, node["actual_rows"])]
            + [pair for child in node["children"]
               for pair in _flatten(child)])


def _analyze(db, sql, mode, engine=None):
    return db.explain(sql, mode, analyze=True, format="dict",
                      engine=engine)


class TestEngineCountAgreement:
    def test_simple_query_counts_identical(self):
        db = skewed_db()
        tup = _analyze(db, SKEW_SQL, FULL, "tuple")
        vec = _analyze(db, SKEW_SQL, FULL, "vectorized")
        assert _flatten(tup["plan"]) == _flatten(vec["plan"])
        assert tup["row_count"] == vec["row_count"] == 80
        nai = _analyze(db, SKEW_SQL, NAIVE)
        assert nai["plan"]["actual_rows"] == 80

    @settings(max_examples=25, deadline=None, derandomize=True,
              database=None)
    @given(t_rows=t_rows_strategy, s_rows=s_rows_strategy, sql=query())
    def test_generated_queries_counts_agree(self, t_rows, s_rows, sql):
        db = build_db(t_rows, s_rows)
        tup = _analyze(db, sql, FULL, "tuple")
        vec = _analyze(db, sql, FULL, "vectorized")
        nai = _analyze(db, sql, NAIVE)
        # Every engine's root count is its own result size, and results
        # agree across engines.
        assert tup["plan"]["actual_rows"] == tup["row_count"]
        assert vec["plan"]["actual_rows"] == vec["row_count"]
        assert nai["plan"]["actual_rows"] == nai["row_count"]
        assert tup["row_count"] == vec["row_count"] == nai["row_count"]
        if "limit" not in sql:
            # Without LIMIT no operator terminates early, so the tuple
            # and vectorized traces are identical node for node.  (Under
            # LIMIT the tuple engine islices while the vectorized engine
            # drains whole batches — per-node counts legitimately differ
            # below the Top.)
            assert _flatten(tup["plan"]) == _flatten(vec["plan"])

    def test_tpch_q17_counts_identical_across_engines(self):
        from repro.bench import tpch_database
        from repro.tpch import QUERIES

        db = tpch_database(0.0001, seed=11)
        sql = QUERIES["Q17"]
        tup = _analyze(db, sql, FULL, "tuple")
        vec = _analyze(db, sql, FULL, "vectorized")
        nai = _analyze(db, sql, NAIVE)
        assert _flatten(tup["plan"]) == _flatten(vec["plan"])
        assert (tup["row_count"] == vec["row_count"] == nai["row_count"]
                == 1)
        root = tup["plan"]
        assert root["estimated_rows"] is not None
        assert root["actual_rows"] == 1
        assert root["q_error"] is not None

    def test_engines_agree_after_correction_replan(self):
        # The corrected plan (post-invalidation) still returns the same
        # rows on every engine — feedback changes costs, never results.
        db = skewed_db(feedback=True)
        db.execute(SKEW_SQL, FULL)  # record the misestimate
        expected = Counter(SKEW_EXPECTED)
        for engine in ("tuple", "vectorized"):
            assert Counter(db.execute(SKEW_SQL, FULL,
                                      engine=engine).rows) == expected
        assert Counter(db.execute(SKEW_SQL, NAIVE).rows) == expected
