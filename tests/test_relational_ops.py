"""Unit tests for relational operator structure and correlation analysis."""

import pytest

from repro.algebra import (AggregateCall, AggregateFunction, Apply, Column,
                           ColumnRef, ColumnSet, Comparison, ConstantScan,
                           DataType, Difference, Get, GroupBy, Join, JoinKind,
                           Literal, LocalGroupBy, Max1row, Project,
                           RelationalOp, ScalarGroupBy, SegmentApply,
                           SegmentRef, Select, Sort, Top, UnionAll,
                           clone_with_fresh_columns, collect_nodes, equals,
                           explain, substitute_outer_columns)
from repro.algebra.scalar import ScalarSubquery

from .helpers import customer_scan, orders_scan


class TestSchemas:
    def test_get_outputs_and_keys(self):
        get, (ck, cn, cnk) = customer_scan()
        assert get.output_columns() == [ck, cn, cnk]
        assert get.key_columns == [(ck,)]

    def test_select_passes_schema(self):
        get, (ck, _, _) = customer_scan()
        sel = Select(get, equals(ck, Literal(1)))
        assert sel.output_columns() == get.output_columns()

    def test_project_schema_and_passthrough(self):
        get, (ck, cn, _) = customer_scan()
        doubled = Column("doubled", DataType.INTEGER, nullable=False)
        proj = Project(get, [(ck, ColumnRef(ck)),
                             (doubled, ColumnRef(ck))])
        assert proj.output_columns() == [ck, doubled]
        assert proj.produced_columns() == [doubled]
        assert not proj.is_pure_passthrough()
        assert Project.passthrough(get, [ck, cn]).is_pure_passthrough()

    def test_join_inner_concatenates(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, _) = orders_scan()
        join = Join(JoinKind.INNER, cust, orders, equals(ock, ck))
        assert join.output_columns() == cust.output_columns() + orders.output_columns()

    def test_left_outer_join_makes_right_nullable(self):
        cust, _ = customer_scan()
        orders, _ = orders_scan()
        join = Join(JoinKind.LEFT_OUTER, cust, orders)
        right_part = join.output_columns()[len(cust.output_columns()):]
        assert all(c.nullable for c in right_part)
        # but identities preserved
        assert [c.cid for c in right_part] == [c.cid for c in orders.output_columns()]

    def test_semi_join_outputs_left_only(self):
        cust, _ = customer_scan()
        orders, _ = orders_scan()
        for kind in (JoinKind.LEFT_SEMI, JoinKind.LEFT_ANTI):
            join = Join(kind, cust, orders)
            assert join.output_columns() == cust.output_columns()

    def test_groupby_schema(self):
        orders, (ok, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(orders, [ock],
                     [(total, AggregateCall(AggregateFunction.SUM,
                                            ColumnRef(price)))])
        assert gb.output_columns() == [ock, total]
        assert gb.produced_columns() == [total]

    def test_scalar_groupby_has_no_groups(self):
        orders, (_, _, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = ScalarGroupBy(orders, [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        assert gb.group_columns == []
        assert gb.output_columns() == [total]

    def test_union_all_from_inputs(self):
        a = ConstantScan([Column("x", DataType.INTEGER, False)], [(1,)])
        b = ConstantScan([Column("y", DataType.INTEGER, True)], [(2,)])
        union = UnionAll.from_inputs([a, b])
        (out,) = union.output_columns()
        assert out.nullable  # nullable because one input is nullable
        assert out.cid not in {a.columns[0].cid, b.columns[0].cid}

    def test_union_all_width_mismatch_rejected(self):
        a = ConstantScan([Column("x", DataType.INTEGER)], [(1,)])
        b = ConstantScan([Column("y", DataType.INTEGER)], [(2,)])
        with pytest.raises(ValueError):
            UnionAll([a, b], [Column("z", DataType.INTEGER)],
                     [[a.columns[0]], []])

    def test_constant_scan_row_width_checked(self):
        with pytest.raises(ValueError):
            ConstantScan([Column("x", DataType.INTEGER)], [(1, 2)])

    def test_top_negative_rejected(self):
        get, _ = customer_scan()
        with pytest.raises(ValueError):
            Top(get, -1)


class TestCorrelationAnalysis:
    def test_uncorrelated_tree_has_no_outer_refs(self):
        get, (ck, _, _) = customer_scan()
        sel = Select(get, equals(ck, Literal(1)))
        assert not sel.outer_references()

    def test_correlated_select_reports_parameter(self):
        _, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        correlated = Select(orders, equals(ock, ck))
        assert ck in correlated.outer_references()
        assert ock not in correlated.outer_references()

    def test_apply_resolves_parameters_from_left(self):
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        inner = Select(orders, equals(ock, ck))
        apply = Apply(JoinKind.INNER, cust, inner)
        assert not apply.outer_references()
        assert apply.is_correlated()
        assert ck in apply.correlation_columns()

    def test_nested_apply_correlation(self):
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        orders2, (_, ock2, _) = orders_scan()
        inner_inner = Select(orders2, equals(ock2, ck))
        inner = Apply(JoinKind.INNER, Select(orders, equals(ock, ck)),
                      inner_inner)
        top = Apply(JoinKind.INNER, cust, inner)
        assert not top.outer_references()
        assert inner.is_correlated_with([ck])

    def test_groupby_group_columns_count_as_references(self):
        _, (ck, _, _) = customer_scan()
        orders, (_, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        # grouping by an outer column: must surface as outer reference
        gb = GroupBy(orders, [ck], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        assert ck in gb.outer_references()

    def test_subquery_inside_scalar_counts(self):
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        sub = ScalarGroupBy(Select(orders, equals(ock, ck)),
                            [(total, AggregateCall(AggregateFunction.SUM,
                                                   ColumnRef(price)))])
        pred = Comparison("<", Literal(100), ScalarSubquery(sub))
        sel = Select(cust, pred)
        assert sel.contains_subquery()
        assert not sel.outer_references()  # ck resolved from customer


class TestSegmentApply:
    def _make(self):
        left, (ok, ock, price) = orders_scan()
        inner_cols = [c.fresh_copy() for c in left.output_columns()]
        seg_ref = SegmentRef(inner_cols)
        right = Select(seg_ref, Comparison(
            "<", ColumnRef(inner_cols[2]), Literal(100.0)))
        sa = SegmentApply(left, right, [ock], inner_cols)
        return sa, left, inner_cols, ock

    def test_output_schema(self):
        sa, left, inner_cols, ock = self._make()
        assert sa.output_columns() == [ock] + sa.right.output_columns()

    def test_segment_column_mapping(self):
        sa, left, inner_cols, ock = self._make()
        assert sa.segment_column_for(left.output_columns()[0]) == inner_cols[0]
        with pytest.raises(KeyError):
            sa.segment_column_for(Column("zz", DataType.INTEGER))

    def test_width_mismatch_rejected(self):
        left, _ = orders_scan()
        ref = SegmentRef([Column("only_one", DataType.INTEGER)])
        with pytest.raises(ValueError):
            SegmentApply(left, ref, [], ref.columns)

    def test_no_outer_references(self):
        sa, *_ = self._make()
        assert not sa.outer_references()


class TestTreeUtilities:
    def test_substitute_outer_columns(self):
        _, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        replacement = Column("param", DataType.INTEGER, False)
        correlated = Select(orders, equals(ock, ck))
        rewritten = substitute_outer_columns(
            correlated, {ck.cid: ColumnRef(replacement)})
        assert replacement in rewritten.outer_references()
        assert ck not in rewritten.outer_references()
        # original untouched (immutability)
        assert ck in correlated.outer_references()

    def test_clone_with_fresh_columns_disjoint(self):
        orders, (ok, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(Select(orders, Comparison("<", ColumnRef(price),
                                               Literal(10.0))),
                     [ock],
                     [(total, AggregateCall(AggregateFunction.SUM,
                                            ColumnRef(price)))])
        clone, mapping = clone_with_fresh_columns(gb)
        original_ids = {c.cid for c in gb.output_columns()}
        clone_ids = {c.cid for c in clone.output_columns()}
        assert original_ids.isdisjoint(clone_ids)
        assert mapping[ock.cid].cid in clone_ids
        assert mapping[total.cid].cid in clone_ids
        # clone is self-contained
        assert not clone.outer_references()

    def test_clone_preserves_outer_references(self):
        _, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        correlated = Select(orders, equals(ock, ck))
        clone, _ = clone_with_fresh_columns(correlated)
        assert ck in clone.outer_references()

    def test_clone_segment_apply(self):
        left, (ok, ock, price) = orders_scan()
        inner_cols = [c.fresh_copy() for c in left.output_columns()]
        right = Select(SegmentRef(inner_cols),
                       Comparison("<", ColumnRef(inner_cols[2]),
                                  Literal(10.0)))
        sa = SegmentApply(left, right, [ock], inner_cols)
        clone, mapping = clone_with_fresh_columns(sa)
        assert isinstance(clone, SegmentApply)
        new_refs = collect_nodes(clone, lambda n: isinstance(n, SegmentRef))
        assert len(new_refs) == 1
        assert clone.inner_columns == new_refs[0].columns
        assert not clone.outer_references()

    def test_collect_nodes(self):
        get, (ck, _, _) = customer_scan()
        sel = Select(get, equals(ck, Literal(1)))
        assert collect_nodes(sel) == [sel, get]
        assert collect_nodes(sel, lambda n: isinstance(n, Get)) == [get]

    def test_explain_renders_tree(self):
        get, (ck, _, _) = customer_scan()
        sel = Select(get, equals(ck, Literal(1)))
        text = explain(sel)
        assert "Select" in text and "Get(customer)" in text
        assert text.index("Select") < text.index("Get")
