"""Depth caps: pathological nesting must yield clear errors, never a raw
RecursionError, while reasonable nesting keeps working."""

import pytest

from repro import Database, DataType, PlanError, SqlSyntaxError
from repro.algebra.relational import ConstantScan, Select
from repro.algebra.scalar import Literal
from repro.core.normalize import (MAX_PLAN_DEPTH, check_plan_depth,
                                  normalize, tree_depth)
from repro.plancache import normalize_sql_key
from repro.sql.parser import MAX_NESTING_DEPTH, parse


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("a", DataType.INTEGER, False)],
                          primary_key=("a",))
    database.insert("t", [(i,) for i in range(5)])
    return database


def deep_parens(levels):
    return "select " + "(" * levels + "1" + ")" * levels + " from t"


def deep_subqueries(levels):
    sql = "select a from t"
    for _ in range(levels):
        sql = f"select a from ({sql}) as s"
    return sql


class TestParserCap:
    @pytest.mark.parametrize("build", [deep_parens, deep_subqueries])
    def test_pathological_nesting_is_a_syntax_error(self, build):
        with pytest.raises(SqlSyntaxError) as info:
            parse(build(MAX_NESTING_DEPTH + 10))
        assert "depth" in str(info.value)

    def test_cap_fires_before_the_interpreter_limit(self):
        # The guarantee under test: deeper than any cap, the parser must
        # still produce SqlSyntaxError rather than RecursionError.
        with pytest.raises(SqlSyntaxError):
            parse(deep_parens(500))

    def test_deep_not_chain_capped(self):
        sql = "select a from t where " + "not " * (MAX_NESTING_DEPTH + 10) \
              + "a > 0"
        with pytest.raises(SqlSyntaxError):
            parse(sql)

    def test_deep_unary_minus_chain_capped(self):
        with pytest.raises(SqlSyntaxError):
            parse("select " + "- " * (MAX_NESTING_DEPTH + 10) + "a from t")

    def test_unary_plus_chain_is_iterative(self):
        # '+' is a no-op, parsed with a loop: no depth to exhaust.
        ast = parse("select " + "+ " * 300 + "a from t")
        assert ast is not None

    def test_moderate_nesting_still_parses_and_runs(self, db):
        result = db.execute(deep_subqueries(10))
        assert sorted(result.rows) == [(i,) for i in range(5)]
        assert db.execute(deep_parens(10)).rows[0] == (1,)

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as info:
            parse(deep_parens(MAX_NESTING_DEPTH + 10))
        assert info.value.line is not None


class TestNormalizerCap:
    def deep_tree(self, levels):
        rel = ConstantScan([], [()])
        for _ in range(levels):
            rel = Select(rel, Literal(True))
        return rel

    def test_tree_depth_is_iterative(self):
        # Must survive trees far deeper than the recursion limit.
        assert tree_depth(self.deep_tree(5000)) == 5001

    def test_check_plan_depth_rejects_beyond_limit(self):
        with pytest.raises(PlanError) as info:
            check_plan_depth(self.deep_tree(MAX_PLAN_DEPTH + 1))
        assert "nested" in str(info.value)

    def test_normalize_rejects_pathological_trees(self):
        with pytest.raises(PlanError):
            normalize(self.deep_tree(MAX_PLAN_DEPTH + 50))

    def test_normalize_accepts_reasonable_trees(self):
        out = normalize(self.deep_tree(MAX_PLAN_DEPTH - 20))
        assert out is not None


class TestPlanCacheKeyHardening:
    def test_unparsable_sql_falls_back_to_raw_text(self):
        broken = "select 'oops"  # unterminated string → SqlSyntaxError
        assert normalize_sql_key(broken) == broken

    def test_valid_sql_is_canonicalized(self):
        a = normalize_sql_key("SELECT  a   FROM t")
        b = normalize_sql_key("select a from t")
        assert a == b

    def test_non_syntax_bugs_are_not_swallowed(self):
        # The old bare `except Exception` hid genuine lexer/driver bugs;
        # only SqlSyntaxError may trigger the raw-text fallback.
        with pytest.raises(Exception) as info:
            normalize_sql_key(None)
        assert not isinstance(info.value, SqlSyntaxError)
