"""Top-N (bounded heap) operator: plan selection and semantics."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FULL, NAIVE, Database, DataType
from repro.physical import PTopN, explain_physical


def _walk(plan):
    yield plan
    for child in plan.children:
        yield from _walk(child)


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("id", DataType.INTEGER, False),
                                ("v", DataType.INTEGER, True)],
                          primary_key=("id",))
    rng = random.Random(3)
    database.insert("t", [(i, rng.choice([None] + list(range(20))))
                          for i in range(1, 301)])
    return database


class TestTopNPlan:
    def test_chosen_for_order_by_limit(self, db):
        plan = db.plan("select id from t order by v desc limit 5")
        assert any(isinstance(n, PTopN) for n in _walk(plan))

    def test_not_used_without_limit(self, db):
        plan = db.plan("select id from t order by v desc")
        assert not any(isinstance(n, PTopN) for n in _walk(plan))

    def test_results_match_naive(self, db):
        for sql in (
            "select id, v from t order by v desc, id limit 7",
            "select id, v from t order by v, id limit 4 offset 3",
            "select id from t order by v limit 0",
            "select id from t order by id desc limit 1000",  # > row count
        ):
            assert db.execute(sql, FULL).rows == \
                db.execute(sql, NAIVE).rows, sql

    def test_nulls_first_ascending(self, db):
        rows = db.execute("select v from t order by v limit 3", FULL).rows
        assert all(v is None for (v,) in rows)

    def test_stable_on_ties(self, db):
        """Rows with equal keys keep input order, matching the full sort."""
        full = db.execute(
            "select id, v from t order by v limit 50", FULL).rows
        naive = db.execute(
            "select id, v from t order by v limit 50", NAIVE).rows
        assert full == naive

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.one_of(st.none(), st.integers(0, 5)),
                           max_size=25),
           limit=st.integers(0, 8), offset=st.integers(0, 4),
           ascending=st.booleans())
    def test_property_matches_full_sort(self, values, limit, offset,
                                        ascending):
        database = Database()
        database.create_table("p", [("id", DataType.INTEGER, False),
                                    ("v", DataType.INTEGER, True)],
                              primary_key=("id",))
        database.insert("p", [(i, v) for i, v in enumerate(values)])
        direction = "asc" if ascending else "desc"
        sql = (f"select id, v from p order by v {direction}, id "
               f"limit {limit} offset {offset}")
        assert database.execute(sql, FULL).rows == \
            database.execute(sql, NAIVE).rows
