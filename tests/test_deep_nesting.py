"""Deeply nested and multiply correlated subqueries."""

from collections import Counter

import pytest

from repro import CORRELATED, FULL, NAIVE, Database, DataType
from repro.algebra import Apply, collect_nodes
from repro.core.normalize import normalize
from repro.sql import parse


@pytest.fixture
def db():
    database = Database()
    database.create_table("a", [("ak", DataType.INTEGER, False),
                                ("av", DataType.INTEGER, False)],
                          primary_key=("ak",))
    database.create_table("b", [("bk", DataType.INTEGER, False),
                                ("ba", DataType.INTEGER, False),
                                ("bv", DataType.INTEGER, False)],
                          primary_key=("bk",))
    database.create_table("c", [("ck", DataType.INTEGER, False),
                                ("cb", DataType.INTEGER, False),
                                ("cv", DataType.INTEGER, False)],
                          primary_key=("ck",))
    database.insert("a", [(i, i % 3) for i in range(1, 7)])
    database.insert("b", [(i, i % 6 + 1, i % 4) for i in range(1, 13)])
    database.insert("c", [(i, i % 12 + 1, i % 5) for i in range(1, 25)])
    return database


THREE_LEVELS = """
    select ak from a
    where av < (select sum(bv) from b
                where ba = ak
                  and bv <= (select count(*) from c
                             where cb = bk and cv < av))
"""


class TestDeepNesting:
    def test_three_level_correlation_agrees(self, db):
        reference = Counter(db.execute(THREE_LEVELS, NAIVE).rows)
        for mode in (FULL, CORRELATED):
            assert Counter(db.execute(THREE_LEVELS, mode).rows) == reference

    def test_three_levels_fully_flatten(self, db):
        """The innermost subquery correlates to BOTH enclosing levels
        (cb = bk from level 2, cv < av from level 1); identity-based
        removal must still eliminate every Apply."""
        bound = db._binder.bind(parse(THREE_LEVELS))
        normalized = normalize(bound.rel)
        assert not collect_nodes(normalized,
                                 lambda n: isinstance(n, Apply))

    def test_sibling_subqueries(self, db):
        sql = """
            select ak from a
            where av <= (select count(*) from b where ba = ak)
              and av <= (select count(*) from c where cv = av)
              and exists (select * from b where ba = ak and bv > 0)"""
        reference = Counter(db.execute(sql, NAIVE).rows)
        for mode in (FULL, CORRELATED):
            assert Counter(db.execute(sql, mode).rows) == reference

    def test_subquery_inside_derived_table(self, db):
        sql = """
            select d.ak from (select ak, av from a
                              where av < (select avg(bv) from b
                                          where ba = ak)) as d
            where d.av >= 0"""
        reference = Counter(db.execute(sql, NAIVE).rows)
        assert Counter(db.execute(sql, FULL).rows) == reference

    def test_exists_containing_scalar_subquery(self, db):
        sql = """
            select ak from a
            where exists (select * from b
                          where ba = ak
                            and bv = (select min(cv) from c
                                      where cb = bk))"""
        reference = Counter(db.execute(sql, NAIVE).rows)
        for mode in (FULL, CORRELATED):
            assert Counter(db.execute(sql, mode).rows) == reference
