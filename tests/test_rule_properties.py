"""Property-based semantics preservation for optimizer rules.

Every transformation rule must be an *equivalence*: applying it to a tree
and executing both versions through the naive interpreter must give the
same bag of rows, for randomized data (including NULLs, empty tables,
duplicate values).  This is the optimizer-level counterpart of the
normalization differential tests.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (AggregateCall, AggregateFunction, Column,
                           ColumnRef, Comparison, DataType, Get, GroupBy,
                           Join, JoinKind, Literal, LocalGroupBy, Project,
                           Select, equals)
from repro.core.optimizer.pushdown import (factor_conjuncts,
                                           push_selections)
from repro.core.optimizer.rules import (GroupByPullAboveJoin,
                                        GroupByPushBelowJoin,
                                        JoinAssociate, JoinCommute,
                                        LocalGlobalSplit,
                                        SelectPushdown,
                                        SemiJoinGroupByReorder,
                                        SemiJoinToJoinDistinct)
from repro.executor import NaiveInterpreter


def run(tree, data):
    return Counter(NaiveInterpreter(lambda name: data[name]).run(tree))


def make_s(rows):
    """s(k INTEGER PK, c INTEGER NULL)"""
    k = Column("k", DataType.INTEGER, nullable=False)
    c = Column("c", DataType.INTEGER, nullable=True)
    return Get("s", [k, c], [[k]]), k, c


def make_r(rows):
    """r(a INTEGER NULL, b INTEGER NULL) — no key."""
    a = Column("a", DataType.INTEGER, nullable=True)
    b = Column("b", DataType.INTEGER, nullable=True)
    return Get("r", [a, b], []), a, b


small = st.one_of(st.none(), st.integers(0, 3))

s_rows = st.lists(st.tuples(st.integers(0, 5), small), max_size=6,
                  unique_by=lambda row: row[0])
r_rows = st.lists(st.tuples(small, small), max_size=8)

AGG_FUNCS = [AggregateFunction.SUM, AggregateFunction.MIN,
             AggregateFunction.MAX, AggregateFunction.COUNT,
             AggregateFunction.AVG]


def check_rule(rule, tree, data, expect_fire=None):
    """Apply a rule; every produced alternative must match the original."""
    results = rule.apply(tree, memo=None)
    if expect_fire is True:
        assert results, "rule was expected to fire"
    baseline = run(tree, data)
    for alternative in results:
        assert run(alternative, data) == baseline
    return bool(results)


class TestGroupByJoinRules:
    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows, func_index=st.integers(0, len(AGG_FUNCS) - 1),
           outer=st.booleans())
    def test_push_below_join(self, s, r, func_index, outer):
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        kind = JoinKind.LEFT_OUTER if outer else JoinKind.INNER
        join = Join(kind, s_get, r_get, equals(a, k))
        out = Column("agg", DataType.FLOAT)
        call = AggregateCall(AGG_FUNCS[func_index], ColumnRef(b))
        tree = GroupBy(join, [k, c], [(out, call)])
        data = {"s": s, "r": r}
        check_rule(GroupByPushBelowJoin(), tree, data, expect_fire=True)

    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows, func_index=st.integers(0, len(AGG_FUNCS) - 1))
    def test_pull_above_join(self, s, r, func_index):
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        out = Column("agg", DataType.FLOAT)
        call = AggregateCall(AGG_FUNCS[func_index], ColumnRef(b))
        gb = GroupBy(r_get, [a], [(out, call)])
        tree = Join(JoinKind.INNER, s_get, gb, equals(a, k))
        data = {"s": s, "r": r}
        check_rule(GroupByPullAboveJoin(), tree, data, expect_fire=True)

    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows,
           func_index=st.integers(0, 2))  # sum/min/max: strict + NULL-on-∅
    def test_pull_above_outerjoin(self, s, r, func_index):
        """Section 3.2 read right-to-left: aggregate-then-outerjoin becomes
        outerjoin-then-aggregate."""
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        out = Column("agg", DataType.FLOAT)
        call = AggregateCall(AGG_FUNCS[func_index], ColumnRef(b))
        gb = GroupBy(r_get, [a], [(out, call)])
        tree = Join(JoinKind.LEFT_OUTER, s_get, gb, equals(a, k))
        data = {"s": s, "r": r}
        check_rule(GroupByPullAboveJoin(), tree, data, expect_fire=True)

    @settings(max_examples=30, deadline=None)
    @given(s=s_rows, r=r_rows)
    def test_pull_above_outerjoin_count_blocked(self, s, r):
        """count's 0-on-empty cannot reproduce the LOJ's NULL padding."""
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        out = Column("cnt", DataType.INTEGER)
        gb = GroupBy(r_get, [a], [(out, AggregateCall(
            AggregateFunction.COUNT, ColumnRef(b)))])
        tree = Join(JoinKind.LEFT_OUTER, s_get, gb, equals(a, k))
        assert GroupByPullAboveJoin().apply(tree, memo=None) == []

    @settings(max_examples=40, deadline=None)
    @given(s=s_rows, r=r_rows)
    def test_push_below_outerjoin_count_star_blocked(self, s, r):
        """count(*) must never push below a join (it counts padding and
        multiplicity)."""
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        join = Join(JoinKind.LEFT_OUTER, s_get, r_get, equals(a, k))
        out = Column("cnt", DataType.INTEGER)
        tree = GroupBy(join, [k], [(out, AggregateCall(
            AggregateFunction.COUNT_STAR))])
        assert GroupByPushBelowJoin().apply(tree, memo=None) == []

    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows)
    def test_outerjoin_count_computing_project(self, s, r):
        """count(column) below a LOJ requires the §3.2 computing project;
        the rewrite must keep zero-vs-NULL semantics exact."""
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        join = Join(JoinKind.LEFT_OUTER, s_get, r_get, equals(a, k))
        out = Column("cnt", DataType.INTEGER)
        tree = GroupBy(join, [k], [(out, AggregateCall(
            AggregateFunction.COUNT, ColumnRef(b)))])
        data = {"s": s, "r": r}
        check_rule(GroupByPushBelowJoin(), tree, data, expect_fire=True)


class TestSemiJoinRules:
    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows, anti=st.booleans())
    def test_semijoin_below_groupby(self, s, r, anti):
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        out = Column("agg", DataType.FLOAT)
        gb = GroupBy(r_get, [a], [(out, AggregateCall(
            AggregateFunction.SUM, ColumnRef(b)))])
        kind = JoinKind.LEFT_ANTI if anti else JoinKind.LEFT_SEMI
        tree = Join(kind, gb, s_get, equals(a, k))
        data = {"s": s, "r": r}
        check_rule(SemiJoinGroupByReorder(), tree, data, expect_fire=True)

    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows)
    def test_semijoin_to_join_distinct(self, s, r):
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        tree = Join(JoinKind.LEFT_SEMI, s_get, r_get, equals(a, k))
        data = {"s": s, "r": r}
        check_rule(SemiJoinToJoinDistinct(), tree, data, expect_fire=True)


class TestLocalAggregateRules:
    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows, func_index=st.integers(0, len(AGG_FUNCS) - 1))
    def test_local_global_split(self, s, r, func_index):
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        join = Join(JoinKind.INNER, s_get, r_get, equals(a, k))
        out = Column("agg", DataType.FLOAT)
        call = AggregateCall(AGG_FUNCS[func_index], ColumnRef(b))
        tree = GroupBy(join, [c], [(out, call)])
        data = {"s": s, "r": r}
        check_rule(LocalGlobalSplit(), tree, data, expect_fire=True)

    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows, func_index=st.integers(0, len(AGG_FUNCS) - 1))
    def test_split_then_push(self, s, r, func_index):
        """Compose: split into local/global, then push the LocalGroupBy
        below the join — the full Section 3.3 pipeline."""
        from repro.core.optimizer.rules import LocalGroupByPushBelowJoin

        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        join = Join(JoinKind.INNER, s_get, r_get, equals(a, k))
        out = Column("agg", DataType.FLOAT)
        call = AggregateCall(AGG_FUNCS[func_index], ColumnRef(b))
        tree = GroupBy(join, [c], [(out, call)])
        data = {"s": s, "r": r}
        baseline = run(tree, data)

        split_results = LocalGlobalSplit().apply(tree, memo=None)
        assert split_results
        for split_tree in split_results:
            assert run(split_tree, data) == baseline
            # find the LocalGroupBy-over-Join inside and push it
            from repro.algebra import collect_nodes, transform_bottom_up

            def push(node):
                if isinstance(node, LocalGroupBy) and \
                        isinstance(node.child, Join):
                    alternatives = LocalGroupByPushBelowJoin().apply(
                        node, memo=None)
                    if alternatives:
                        return alternatives[0]
                return node

            pushed_tree = transform_bottom_up(split_tree, push)
            assert run(pushed_tree, data) == baseline


class TestJoinOrderRules:
    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows)
    def test_commute(self, s, r):
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        tree = Join(JoinKind.INNER, s_get, r_get, equals(a, k))
        data = {"s": s, "r": r}
        check_rule(JoinCommute(), tree, data, expect_fire=True)

    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows, t=r_rows)
    def test_associate(self, s, r, t):
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        t_get, a2, b2 = make_r(t)
        inner = Join(JoinKind.INNER, s_get, r_get, equals(a, k))
        tree = Join(JoinKind.INNER, inner, t_get, equals(a2, a))
        data = {"s": s, "r": r}
        # two Gets named "r": provide per-name rows via closure capture
        data = {"s": s, "r": None}

        def provider(name):
            if name == "s":
                return s
            # both r-instances read the same underlying table shape; keep
            # them distinct by identity of Get columns is not possible via
            # name alone, so give them the same rows (valid: a self-join).
            return r

        baseline = Counter(NaiveInterpreter(provider).run(tree))
        for alternative in JoinAssociate().apply(tree, memo=None):
            assert Counter(NaiveInterpreter(provider).run(alternative)) \
                == baseline


class TestSelectionRules:
    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows, threshold=st.integers(0, 3),
           outer=st.booleans())
    def test_select_pushdown_rule(self, s, r, threshold, outer):
        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        kind = JoinKind.LEFT_OUTER if outer else JoinKind.INNER
        join = Join(kind, s_get, r_get, equals(a, k))
        predicate = Comparison("<", Literal(threshold), ColumnRef(k))
        tree = Select(join, predicate)
        data = {"s": s, "r": r}
        check_rule(SelectPushdown(), tree, data, expect_fire=True)

    @settings(max_examples=60, deadline=None)
    @given(s=s_rows, r=r_rows, threshold=st.integers(0, 3))
    def test_push_selections_pass(self, s, r, threshold):
        from repro.algebra import And

        s_get, k, c = make_s(s)
        r_get, a, b = make_r(r)
        join = Join.cross(s_get, r_get)
        predicate = And([
            equals(a, k),
            Comparison("<", Literal(threshold), ColumnRef(k)),
        ])
        tree = Select(join, predicate)
        data = {"s": s, "r": r}
        baseline = run(tree, data)
        assert run(push_selections(tree), data) == baseline


class TestFactorConjuncts:
    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.tuples(small, small), min_size=1, max_size=6),
           x=st.integers(0, 3), y=st.integers(0, 3))
    def test_factoring_preserves_3vl(self, values, x, y):
        """(A ∧ p) ∨ (A ∧ q) ≡ A ∧ (p ∨ q) row by row, NULLs included."""
        from repro.algebra import And, Or, conjunction
        from repro.executor.naive import NaiveInterpreter

        a_col = Column("a", DataType.INTEGER, nullable=True)
        b_col = Column("b", DataType.INTEGER, nullable=True)
        common = Comparison("<", Literal(x), ColumnRef(a_col))
        p = Comparison("=", ColumnRef(b_col), Literal(y))
        q = Comparison(">", ColumnRef(b_col), Literal(x))
        original = Or([And([common, p]), And([common, q])])
        factored = conjunction(factor_conjuncts([original]))

        interp = NaiveInterpreter(lambda name: [])
        for a_value, b_value in values:
            env = {a_col.cid: a_value, b_col.cid: b_value}
            assert interp.scalar(original, env) == \
                interp.scalar(factored, env)
