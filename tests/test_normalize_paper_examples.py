"""Normalization tests mirroring the paper's worked examples (Section 2).

These check plan *shapes*: Q1 must normalize to the Figure 5 pipeline
(select over GroupBy over inner join), existential subqueries must become
semi/antijoins, Class 3 subqueries must retain Apply + Max1row.
"""

import pytest

from repro.algebra import (Apply, Get, GroupBy, Join, JoinKind, Max1row,
                           ScalarGroupBy, Select, collect_nodes, explain)
from repro.binder import Binder
from repro.core.normalize import NormalizeConfig, normalize
from repro.sql import parse


@pytest.fixture
def binder(mini_catalog):
    return Binder(mini_catalog)


def normalized(binder, sql, **config):
    bound = binder.bind(parse(sql))
    return normalize(bound.rel, NormalizeConfig(**config) if config else None)


PAPER_Q1 = """
    select c_custkey from customer
    where 1000000 < (select sum(o_totalprice) from orders
                     where o_custkey = c_custkey)
"""


class TestPaperQ1:
    def test_no_subquery_remains(self, binder):
        rel = normalized(binder, PAPER_Q1)
        assert not rel.contains_subquery()

    def test_no_apply_remains(self, binder):
        rel = normalized(binder, PAPER_Q1)
        assert not collect_nodes(rel, lambda n: isinstance(n, Apply))

    def test_figure5_shape(self, binder):
        """σ → GroupBy → inner join (outerjoin already simplified)."""
        rel = normalized(binder, PAPER_Q1)
        joins = collect_nodes(rel, lambda n: isinstance(n, Join))
        assert len(joins) == 1
        assert joins[0].kind is JoinKind.INNER
        groupbys = collect_nodes(rel, lambda n: isinstance(n, GroupBy))
        assert len(groupbys) == 1
        # The GroupBy sits above the join, the filter above the GroupBy.
        text = explain(rel)
        assert text.index("Select") < text.index("GroupBy")
        assert text.index("GroupBy") < text.index("Join")

    def test_outerjoin_kept_without_simplification(self, binder):
        rel = normalized(binder, PAPER_Q1, simplify_outerjoins=False)
        joins = collect_nodes(rel, lambda n: isinstance(n, Join))
        assert joins[0].kind is JoinKind.LEFT_OUTER

    def test_correlated_form_kept_without_decorrelation(self, binder):
        rel = normalized(binder, PAPER_Q1, decorrelate=False)
        assert collect_nodes(rel, lambda n: isinstance(n, Apply))

    def test_groupby_groups_by_customer_columns(self, binder):
        """Identity (9): G_{columns(R), F'}."""
        rel = normalized(binder, PAPER_Q1)
        (gb,) = collect_nodes(rel, lambda n: isinstance(n, GroupBy))
        names = {c.name for c in gb.group_columns}
        assert "c_custkey" in names


class TestExistentialSubqueries:
    def test_exists_becomes_semijoin(self, binder):
        rel = normalized(binder, """
            select o_orderkey from orders
            where exists (select * from lineitem
                          where l_orderkey = o_orderkey)""")
        joins = collect_nodes(rel, lambda n: isinstance(n, Join))
        assert any(j.kind is JoinKind.LEFT_SEMI for j in joins)
        assert not collect_nodes(rel, lambda n: isinstance(n, Apply))

    def test_not_exists_becomes_antijoin(self, binder):
        rel = normalized(binder, """
            select o_orderkey from orders
            where not exists (select * from lineitem
                              where l_orderkey = o_orderkey)""")
        joins = collect_nodes(rel, lambda n: isinstance(n, Join))
        assert any(j.kind is JoinKind.LEFT_ANTI for j in joins)

    def test_in_becomes_semijoin(self, binder):
        rel = normalized(binder, """
            select p_partkey from part
            where p_partkey in (select l_partkey from lineitem)""")
        joins = collect_nodes(rel, lambda n: isinstance(n, Join))
        assert any(j.kind is JoinKind.LEFT_SEMI for j in joins)

    def test_not_in_becomes_antijoin(self, binder):
        rel = normalized(binder, """
            select p_partkey from part
            where p_partkey not in (select l_partkey from lineitem)""")
        joins = collect_nodes(rel, lambda n: isinstance(n, Join))
        assert any(j.kind is JoinKind.LEFT_ANTI for j in joins)

    def test_quantified_all_becomes_antijoin(self, binder):
        rel = normalized(binder, """
            select s_suppkey from supplier
            where s_acctbal >= all (select c_acctbal from customer)""")
        joins = collect_nodes(rel, lambda n: isinstance(n, Join))
        assert any(j.kind is JoinKind.LEFT_ANTI for j in joins)

    def test_quantified_any_becomes_semijoin(self, binder):
        rel = normalized(binder, """
            select s_suppkey from supplier
            where s_acctbal > any (select c_acctbal from customer)""")
        joins = collect_nodes(rel, lambda n: isinstance(n, Join))
        assert any(j.kind is JoinKind.LEFT_SEMI for j in joins)

    def test_exists_under_or_uses_count_rewrite(self, binder):
        """A non-conjunct existential cannot become a semijoin; the count
        rewrite (Section 2.4) kicks in and still decorrelates fully."""
        rel = normalized(binder, """
            select o_orderkey from orders
            where exists (select * from lineitem
                          where l_orderkey = o_orderkey)
               or o_totalprice > 100.0""")
        assert not rel.contains_subquery()
        assert not collect_nodes(rel, lambda n: isinstance(n, Apply))
        # The count-rewrite introduces a vector aggregate after pushdown.
        assert collect_nodes(rel, lambda n: isinstance(n, GroupBy))


class TestClass3Subqueries:
    def test_exception_subquery_keeps_apply_and_max1row(self, binder):
        """Paper Q2 (Section 2.4): scalar subquery that may return several
        rows is fundamentally non-relational — Apply + Max1row remain."""
        rel = normalized(binder, """
            select c_name, (select o_orderkey from orders
                            where o_custkey = c_custkey)
            from customer""")
        assert collect_nodes(rel, lambda n: isinstance(n, Max1row))
        assert collect_nodes(rel, lambda n: isinstance(n, Apply))

    def test_key_lookup_decorrelates_fully(self, binder):
        """The reversed query (customer by key) needs no Max1row and fully
        flattens into an outer join."""
        rel = normalized(binder, """
            select o_orderkey, (select c_name from customer
                                where c_custkey = o_custkey)
            from orders""")
        assert not collect_nodes(rel, lambda n: isinstance(n, Max1row))
        assert not collect_nodes(rel, lambda n: isinstance(n, Apply))
        joins = collect_nodes(rel, lambda n: isinstance(n, Join))
        assert any(j.kind is JoinKind.LEFT_OUTER for j in joins)


class TestClass2Subqueries:
    PAPER_CLASS2 = """
        select ps_partkey from partsupp
        where 100.0 > (select sum(s_acctbal) from
                       (select s_acctbal from supplier
                        where s_suppkey = ps_suppkey
                        union all
                        select p_retailprice from part
                        where p_partkey = ps_partkey) as unionresult)
    """

    def test_kept_as_apply_by_default(self, binder):
        rel = normalized(binder, self.PAPER_CLASS2)
        assert collect_nodes(rel, lambda n: isinstance(n, Apply))

    def test_flattened_with_class2_rewrites(self, binder):
        rel = normalized(binder, self.PAPER_CLASS2, class2_rewrites=True)
        assert not collect_nodes(rel, lambda n: isinstance(n, Apply))
        # identity (5) duplicated the outer table
        gets = collect_nodes(
            rel, lambda n: isinstance(n, Get)
            and n.table_name == "partsupp")
        assert len(gets) >= 2


class TestUncorrelatedSubqueries:
    def test_uncorrelated_scalar_becomes_join(self, binder):
        rel = normalized(binder, """
            select c_custkey from customer
            where c_acctbal > (select avg(c_acctbal) from customer)""")
        assert not collect_nodes(rel, lambda n: isinstance(n, Apply))
        assert collect_nodes(rel, lambda n: isinstance(n, ScalarGroupBy))

    def test_multiple_subqueries_in_one_predicate(self, binder):
        rel = normalized(binder, """
            select c_custkey from customer
            where c_acctbal > (select avg(c_acctbal) from customer)
              and c_custkey in (select o_custkey from orders)""")
        assert not collect_nodes(rel, lambda n: isinstance(n, Apply))
        assert not rel.contains_subquery()
