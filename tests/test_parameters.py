"""Parameterized queries: parsing, binding, execution, differential checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (FULL, MODES, NAIVE, BindError, Database, DataType,
                   ParameterError, SqlSyntaxError)
from repro.algebra import Literal, Parameter, parameter_slot
from repro.core.normalize.simplify import fold_constants
from repro.sql import ast, parse


def make_db() -> Database:
    db = Database()
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.VARCHAR, False),
                          ("c", DataType.INTEGER, True)],
                    primary_key=("a",))
    db.insert("t", [(1, "x", 10), (2, "y", None), (3, "z", 30),
                    (4, "x", 40)])
    return db


# -- parsing -----------------------------------------------------------------

class TestParsing:
    def test_positional_markers_get_sequential_slots(self):
        query = parse("select 1 from t where a = ? and c = ?")
        params = _collect_params(query)
        assert [p.index for p in params] == [0, 1]
        assert all(p.name is None for p in params)

    def test_named_markers_share_slots_by_name(self):
        query = parse("select 1 from t where a = :x and c = :x and b = :y")
        params = _collect_params(query)
        assert [(p.name, p.index) for p in params] == [
            ("x", 0), ("x", 0), ("y", 1)]

    def test_mixing_styles_is_a_syntax_error(self):
        with pytest.raises(SqlSyntaxError, match="cannot mix"):
            parse("select 1 from t where a = ? and b = :x")
        with pytest.raises(SqlSyntaxError, match="cannot mix"):
            parse("select 1 from t where a = :x and b = ?")

    def test_colon_without_name_is_a_syntax_error(self):
        with pytest.raises(SqlSyntaxError):
            parse("select 1 from t where a = :")

    def test_slots_span_subqueries(self):
        query = parse("select 1 from t where a = ? and c in "
                      "(select a from t where b = ?)")
        params = _collect_params(query)
        assert sorted(p.index for p in params) == [0, 1]


# -- binding -----------------------------------------------------------------

class TestBinding:
    def test_bound_query_lists_parameters_in_slot_order(self):
        db = make_db()
        bound = db._binder.bind(parse(
            "select a from t where b = :s and a > :n"))
        assert [p.name for p in bound.parameters] == ["s", "n"]
        assert all(isinstance(p, Parameter) for p in bound.parameters)

    def test_parameter_type_is_unknown_and_nullable(self):
        param = Parameter(0)
        assert param.dtype is DataType.UNKNOWN
        assert param.nullable

    def test_parameters_allowed_in_aggregates_and_arithmetic(self):
        db = make_db()
        bound = db._binder.bind(parse("select sum(a * ?) from t"))
        assert len(bound.parameters) == 1

    def test_parameter_rejected_in_view_definition(self):
        db = make_db()
        with pytest.raises(BindError, match="view"):
            db.create_view("v", "select a from t where a > ?")

    def test_parameter_rejected_through_view_reference(self):
        # A view whose stored text somehow contains a marker must still be
        # rejected when expanded at bind time.
        db = make_db()
        db.catalog.create_view("v", "select a from t where a > ?")
        with pytest.raises(BindError, match="view"):
            db.execute("select * from v")

    def test_fold_constants_never_folds_parameters(self):
        expr = fold_constants(Parameter(0))
        assert isinstance(expr, Parameter)
        db = make_db()
        bound = db._binder.bind(parse("select a from t where a = 1 + ?"))
        from repro.algebra import Select, collect_nodes
        (select,) = collect_nodes(bound.rel,
                                  lambda n: isinstance(n, Select))
        folded = fold_constants(select.predicate)
        assert not isinstance(folded, Literal)

    def test_parameter_slot_disjoint_from_cids(self):
        # Column ids are positive; parameter slots must never collide.
        assert parameter_slot(0) == -1
        assert all(parameter_slot(i) < 0 for i in range(100))


# -- execution ---------------------------------------------------------------

class TestExecution:
    def test_positional_binding(self):
        db = make_db()
        result = db.execute("select a from t where b = ?", params=("x",))
        assert sorted(result.rows) == [(1,), (4,)]

    def test_named_binding_via_mapping(self):
        db = make_db()
        result = db.execute(
            "select a from t where a >= :lo and a <= :hi",
            params={"lo": 2, "hi": 3})
        assert sorted(result.rows) == [(2,), (3,)]

    def test_named_binding_via_sequence_in_slot_order(self):
        db = make_db()
        result = db.execute(
            "select a from t where a >= :lo and a <= :hi", params=(2, 3))
        assert sorted(result.rows) == [(2,), (3,)]

    def test_same_plan_different_bindings(self):
        db = make_db()
        stmt = db.prepare("select a from t where b = ?")
        assert sorted(stmt.execute(("x",)).rows) == [(1,), (4,)]
        assert stmt.execute(("y",)).rows == [(2,)]
        assert stmt.execute(("nope",)).rows == []

    def test_null_parameter_is_sql_null(self):
        db = make_db()
        # c = NULL is UNKNOWN for every row: empty result.
        assert db.execute("select a from t where c = ?",
                          params=(None,)).rows == []
        # ... in every mode.
        assert db.execute("select a from t where c = ?", mode=NAIVE,
                          params=(None,)).rows == []

    def test_parameter_in_select_list(self):
        db = make_db()
        result = db.execute("select a, ? from t where a = 1", params=(99,))
        assert result.rows == [(1, 99)]

    def test_parameter_in_correlated_subquery(self):
        db = make_db()
        sql = ("select a from t where a > "
               "(select min(a) from t as u where u.b = t.b and u.a > ?)")
        full = db.execute(sql, params=(0,))
        naive = db.execute(sql, mode=NAIVE, params=(0,))
        assert sorted(full.rows) == sorted(naive.rows) == [(4,)]

    def test_parameterized_index_seek(self):
        db = make_db()
        # Enough rows that the cost model prefers a seek over a scan.
        db.insert("t", [(i, f"k{i}", i) for i in range(10, 200)])
        db.create_index("ix_t_b", "t", ["b"])
        stmt = db.prepare("select a from t where b = ?")
        assert "IndexSeek" in db.explain("select a from t where b = ?")
        assert sorted(stmt.execute(("x",)).rows) == [(1,), (4,)]
        assert stmt.execute(("z",)).rows == [(3,)]
        assert stmt.execute(("k42",)).rows == [(42,)]

    def test_arity_and_shape_errors(self):
        db = make_db()
        with pytest.raises(ParameterError, match="expects 1"):
            db.execute("select a from t where a = ?")
        with pytest.raises(ParameterError, match="expects 1"):
            db.execute("select a from t where a = ?", params=(1, 2))
        with pytest.raises(ParameterError, match="takes no"):
            db.execute("select a from t", params=(1,))
        with pytest.raises(ParameterError, match="missing"):
            db.execute("select a from t where a = :x", params={})
        with pytest.raises(ParameterError, match="unknown"):
            db.execute("select a from t where a = :x",
                       params={"x": 1, "y": 2})
        with pytest.raises(ParameterError, match="mapping"):
            db.execute("select a from t where a = ?", params={"x": 1})
        with pytest.raises(ParameterError, match="string"):
            db.execute("select a from t where b = ?", params="x")


# -- differential: FULL vs NAIVE under randomized bindings -------------------

_PARAM_VALUES = st.one_of(st.none(), st.integers(-5, 50))


class TestDifferential:
    @given(lo=_PARAM_VALUES, hi=_PARAM_VALUES)
    @settings(max_examples=25, deadline=None)
    def test_range_predicate_agrees_across_modes(self, lo, hi):
        db = make_db()
        sql = "select a, c from t where c >= ? and c <= ?"
        expected = db.execute(sql, mode=NAIVE, params=(lo, hi))
        for mode in MODES.values():
            got = db.execute(sql, mode=mode, params=(lo, hi))
            assert sorted(got.rows, key=repr) == \
                sorted(expected.rows, key=repr), mode.name

    @given(threshold=_PARAM_VALUES)
    @settings(max_examples=25, deadline=None)
    def test_parameterized_subquery_agrees_across_modes(self, threshold):
        db = make_db()
        sql = ("select b, count(*) from t "
               "where a > (select min(a) from t as u "
               "           where u.b = t.b and u.c >= ?) "
               "group by b")
        expected = db.execute(sql, mode=NAIVE, params=(threshold,))
        full = db.execute(sql, mode=FULL, params=(threshold,))
        assert sorted(full.rows, key=repr) == \
            sorted(expected.rows, key=repr)


def _collect_params(node, acc=None):
    """All ast.Parameter nodes in a parsed statement (any order)."""
    if acc is None:
        acc = []
    if isinstance(node, ast.Parameter):
        acc.append(node)
    if hasattr(node, "__dataclass_fields__"):
        for name in node.__dataclass_fields__:
            _collect_params(getattr(node, name), acc)
    elif isinstance(node, (list, tuple)):
        for item in node:
            _collect_params(item, acc)
    return acc
