"""Unit tests for SQL types, NULL semantics and three-valued logic."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.datatypes import (DataType, Interval, common_supertype,
                                     infer_literal_type, negate_comparison,
                                     flip_comparison, sql_add, sql_and,
                                     sql_compare, sql_div, sql_mul, sql_not,
                                     sql_or, sql_sub, value_matches_type)

TRUTH = [True, False, None]


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False
        assert sql_and(None, False) is False
        assert sql_and(True, None) is None
        assert sql_and(None, None) is None

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(True, None) is True
        assert sql_or(None, True) is True
        assert sql_or(False, None) is None
        assert sql_or(None, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    @given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
    def test_de_morgan(self, a, b):
        assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))
        assert sql_not(sql_or(a, b)) == sql_and(sql_not(a), sql_not(b))

    @given(st.sampled_from(TRUTH), st.sampled_from(TRUTH),
           st.sampled_from(TRUTH))
    def test_and_associative(self, a, b, c):
        assert sql_and(sql_and(a, b), c) == sql_and(a, sql_and(b, c))

    @given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
    def test_commutativity(self, a, b):
        assert sql_and(a, b) == sql_and(b, a)
        assert sql_or(a, b) == sql_or(b, a)


class TestComparisons:
    def test_null_propagates(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert sql_compare(op, None, 1) is None
            assert sql_compare(op, 1, None) is None
            assert sql_compare(op, None, None) is None

    def test_basic_comparisons(self):
        assert sql_compare("=", 3, 3) is True
        assert sql_compare("<>", 3, 4) is True
        assert sql_compare("<", 3, 4) is True
        assert sql_compare(">=", 3, 3) is True
        assert sql_compare(">", 3, 4) is False

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            sql_compare("==", 1, 1)

    @given(st.integers(), st.integers())
    def test_negate_comparison_is_complement(self, a, b):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            original = sql_compare(op, a, b)
            negated = sql_compare(negate_comparison(op), a, b)
            assert original != negated

    @given(st.integers(), st.integers())
    def test_flip_comparison_swaps_operands(self, a, b):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert sql_compare(op, a, b) == sql_compare(flip_comparison(op), b, a)


class TestArithmetic:
    def test_null_propagation(self):
        assert sql_add(None, 1) is None
        assert sql_sub(1, None) is None
        assert sql_mul(None, None) is None
        assert sql_div(None, 0) is None

    def test_division(self):
        assert sql_div(6, 3) == 2
        assert isinstance(sql_div(6, 3), int)
        assert sql_div(7, 2) == 3.5
        with pytest.raises(ZeroDivisionError):
            sql_div(1, 0)

    def test_date_plus_interval_days(self):
        d = datetime.date(1998, 12, 1)
        assert sql_sub(d, Interval(days=90)) == datetime.date(1998, 9, 2)
        assert sql_add(d, Interval(days=31)) == datetime.date(1999, 1, 1)

    def test_date_plus_interval_months_clamps(self):
        d = datetime.date(1999, 1, 31)
        assert sql_add(d, Interval(months=1)) == datetime.date(1999, 2, 28)
        assert sql_add(d, Interval(months=3)) == datetime.date(1999, 4, 30)

    def test_interval_year_boundary(self):
        d = datetime.date(1993, 11, 15)
        assert sql_add(d, Interval(months=3)) == datetime.date(1994, 2, 15)


class TestTypes:
    def test_infer_literal_type(self):
        assert infer_literal_type(1) is DataType.INTEGER
        assert infer_literal_type(1.5) is DataType.FLOAT
        assert infer_literal_type("x") is DataType.VARCHAR
        assert infer_literal_type(True) is DataType.BOOLEAN
        assert infer_literal_type(datetime.date(2000, 1, 1)) is DataType.DATE
        assert infer_literal_type(Interval(months=1)) is DataType.INTERVAL

    def test_value_matches_type(self):
        assert value_matches_type(None, DataType.INTEGER)
        assert value_matches_type(5, DataType.INTEGER)
        assert not value_matches_type(True, DataType.INTEGER)
        assert value_matches_type(True, DataType.BOOLEAN)
        assert not value_matches_type(1, DataType.BOOLEAN)
        assert value_matches_type(5, DataType.DECIMAL)
        assert value_matches_type(5.5, DataType.DECIMAL)

    def test_common_supertype(self):
        assert common_supertype(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT
        assert common_supertype(DataType.INTEGER, DataType.DECIMAL) is DataType.DECIMAL
        assert common_supertype(DataType.DATE, DataType.DATE) is DataType.DATE
        with pytest.raises(TypeError):
            common_supertype(DataType.DATE, DataType.INTEGER)
