"""Unit tests for the catalog and the in-memory storage engine."""

import pytest

from repro.algebra import DataType
from repro.catalog import (Catalog, ColumnDef, IndexDef, TableDef,
                           compute_table_stats)
from repro.errors import CatalogError, ExecutionError
from repro.storage import Storage, StoredTable
from repro.storage.index import HashIndex, OrderedIndex


def people_def():
    return TableDef(
        "people",
        [ColumnDef("id", DataType.INTEGER, nullable=False),
         ColumnDef("name", DataType.VARCHAR, nullable=False),
         ColumnDef("age", DataType.INTEGER, nullable=True)],
        primary_key=("id",))


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        catalog.create_table(people_def())
        assert catalog.get_table("people").name == "people"
        assert catalog.get_table("PEOPLE").name == "people"  # case-insensitive

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table(people_def())
        with pytest.raises(CatalogError):
            catalog.create_table(people_def())

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().get_table("nope")

    def test_key_column_must_exist(self):
        with pytest.raises(CatalogError):
            TableDef("t", [ColumnDef("a", DataType.INTEGER)],
                     primary_key=("b",))

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(CatalogError):
            TableDef("t", [ColumnDef("a", DataType.INTEGER),
                           ColumnDef("a", DataType.INTEGER)])

    def test_indexes(self):
        catalog = Catalog()
        catalog.create_table(people_def())
        catalog.create_index(IndexDef("ix_age", "people", ("age",)))
        assert [ix.name for ix in catalog.indexes_on("people")] == ["ix_age"]
        with pytest.raises(CatalogError):
            catalog.create_index(IndexDef("ix_bad", "people", ("nope",)))

    def test_drop_table_removes_indexes(self):
        catalog = Catalog()
        catalog.create_table(people_def())
        catalog.create_index(IndexDef("ix_age", "people", ("age",)))
        catalog.drop_table("people")
        assert not catalog.has_table("people")
        with pytest.raises(CatalogError):
            catalog.get_index("ix_age")

    def test_invalid_index_kind(self):
        with pytest.raises(CatalogError):
            IndexDef("ix", "t", ("a",), kind="btree-ish")


class TestStoredTable:
    def test_insert_tuple_and_dict(self):
        table = StoredTable(people_def())
        table.insert((1, "alice", 30))
        table.insert({"id": 2, "name": "bob"})
        assert list(table.scan()) == [(1, "alice", 30), (2, "bob", None)]

    def test_not_null_enforced(self):
        table = StoredTable(people_def())
        with pytest.raises(ExecutionError):
            table.insert((1, None, 5))

    def test_type_checked(self):
        table = StoredTable(people_def())
        with pytest.raises(ExecutionError):
            table.insert((1, "alice", "not an int"))

    def test_primary_key_enforced(self):
        table = StoredTable(people_def())
        table.insert((1, "alice", 30))
        with pytest.raises(ExecutionError):
            table.insert((1, "bob", 31))

    def test_wrong_width_rejected(self):
        table = StoredTable(people_def())
        with pytest.raises(ExecutionError):
            table.insert((1, "x"))

    def test_unknown_dict_column_rejected(self):
        table = StoredTable(people_def())
        with pytest.raises(ExecutionError):
            table.insert({"id": 1, "name": "x", "nope": 2})

    def test_key_lookup_index_on_pk(self):
        table = StoredTable(people_def())
        table.insert((1, "alice", 30))
        table.insert((2, "bob", 31))
        index = table.key_lookup_index(["id"])
        assert index is not None
        assert index.lookup((2,)) == [1]

    def test_secondary_index_maintained(self):
        table = StoredTable(people_def())
        table.insert((1, "alice", 30))
        table.add_index(IndexDef("ix_age", "people", ("age",)))
        table.insert((2, "bob", 30))
        index = table.index("ix_age")
        assert sorted(index.lookup((30,))) == [0, 1]

    def test_statistics(self):
        table = StoredTable(people_def())
        table.insert_many([(1, "a", 10), (2, "b", 20), (3, "c", None)])
        stats = table.statistics()
        assert stats.row_count == 3
        age = stats.column("age")
        assert age.distinct_count == 2
        assert age.null_count == 1
        assert age.min_value == 10 and age.max_value == 20

    def test_statistics_cache_invalidated_on_insert(self):
        table = StoredTable(people_def())
        table.insert((1, "a", 10))
        assert table.statistics().row_count == 1
        table.insert((2, "b", 20))
        assert table.statistics().row_count == 2


class TestIndexes:
    def test_hash_index_null_never_matches(self):
        index = HashIndex([0])
        index.insert((None, "x"), 0)
        index.insert((1, "y"), 1)
        assert index.lookup((None,)) == []
        assert index.lookup((1,)) == [1]

    def test_ordered_index_range_scan(self):
        index = OrderedIndex([0])
        for position, key in enumerate([5, 1, 3, None, 2, 4]):
            index.insert((key,), position)
        in_order = [p for p in index.range_scan()]
        assert in_order == [1, 4, 2, 5, 0]  # positions of 1,2,3,4,5
        assert list(index.range_scan(low=(2,), high=(4,))) == [4, 2, 5]
        assert list(index.range_scan(low=(2,), high=(4,),
                                     low_inclusive=False,
                                     high_inclusive=False)) == [2]

    def test_ordered_index_lookup(self):
        index = OrderedIndex([0])
        index.insert((3,), 0)
        index.insert((3,), 1)
        index.insert((4,), 2)
        assert sorted(index.lookup((3,))) == [0, 1]
        assert index.lookup((None,)) == []


class TestStorage:
    def test_round_trip(self):
        storage = Storage()
        table = storage.create(people_def())
        table.insert((1, "a", None))
        assert storage.get("people") is table
        storage.drop("people")
        with pytest.raises(ExecutionError):
            storage.get("people")


class TestStatisticsHelpers:
    def test_compute_table_stats_empty(self):
        stats = compute_table_stats(["a"], [])
        assert stats.row_count == 0
        assert stats.column("a").distinct_count == 0

    def test_selectivity_equals(self):
        stats = compute_table_stats(["a"], [(1,), (2,), (2,), (None,)])
        col = stats.column("a")
        sel = col.selectivity_equals(4)
        assert sel == pytest.approx((3 / 4) / 2)

    def test_selectivity_range(self):
        stats = compute_table_stats(["a"], [(i,) for i in range(101)])
        col = stats.column("a")
        assert col.selectivity_range("<", 50, 101) == pytest.approx(0.5, abs=0.01)
        assert col.selectivity_range(">", 75, 101) == pytest.approx(0.25, abs=0.01)
