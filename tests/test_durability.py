"""Durability: WAL framing, recovery, checkpoints, and the offline CLI.

The crash schedules driven through fault injection live in
tests/test_durability_chaos.py; randomized interleavings with arbitrary
crash offsets live in tests/test_durability_properties.py.  This file
covers the deterministic contracts:

* the record frame (length + CRC32) round-trips and rejects corruption;
* torn-tail truncation restores exactly the committed prefix, for a cut
  at *every* byte offset of a real multi-record log;
* DDL and commits replay across reopen; checkpoints rotate the log and
  recovery layers the remaining records on top;
* the in-memory default (``path=None``) is byte-for-byte unaffected.
"""

from __future__ import annotations

import datetime
import os

import pytest

from repro import Database, DataType, DurabilityError
from repro.catalog.statistics import CardinalityCorrection
from repro.durability import (CHECKPOINT_FILENAME, WAL_FILENAME,
                              read_wal, scan_records)
from repro.durability.__main__ import main as durability_cli
from repro.durability.wal import (HEADER_BYTES, WriteAheadLog,
                                  decode_frame, encode_record)
from repro.errors import CatalogError, ExecutionError
from repro.stats_version import StatsSnapshot

COLUMNS = [("id", DataType.INTEGER), ("name", DataType.VARCHAR),
           ("born", DataType.DATE)]


def make_db(path, **kwargs):
    db = Database(path=str(path), **kwargs)
    db.create_table("t", COLUMNS, primary_key=["id"])
    return db


def row(i):
    return (i, f"name-{i}", datetime.date(2020, 1, 1 + (i % 28)))


def ids(db):
    return [r[0] for r in db.execute("select id from t order by id").rows]


# -- record framing ------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        record = {"lsn": 7, "kind": "commit",
                  "writes": {"t": [[1, "a", {"__date__": "2020-01-02"}]]}}
        data = encode_record(record)
        decoded = decode_frame(data)
        assert decoded is not None
        parsed, consumed = decoded
        assert parsed == record
        assert consumed == len(data)

    def test_flipped_byte_rejected(self):
        data = bytearray(encode_record({"lsn": 1, "kind": "commit"}))
        for position in range(len(data)):
            corrupt = bytearray(data)
            corrupt[position] ^= 0xFF
            assert decode_frame(bytes(corrupt)) is None, (
                f"corruption at byte {position} went undetected")

    def test_scan_stops_at_first_bad_frame(self):
        good = encode_record({"lsn": 1, "kind": "commit"})
        also_good = encode_record({"lsn": 2, "kind": "commit"})
        records, valid = scan_records(good + also_good + b"\x01garbage")
        assert [r["lsn"] for r in records] == [1, 2]
        assert valid == len(good) + len(also_good)

    def test_scan_rejects_non_record_json(self):
        # A checksum-valid frame whose payload is not a WAL record must
        # terminate the scan, not crash it or be silently replayed.
        good = encode_record({"lsn": 1, "kind": "commit"})
        from repro.durability.wal import frame_record
        stray = frame_record(b"[1,2,3]")
        records, valid = scan_records(good + stray)
        assert [r["lsn"] for r in records] == [1]
        assert valid == len(good)

    def test_wal_appender_tracks_good_boundary(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        first = wal.append({"lsn": 1, "kind": "commit"})
        second = wal.append({"lsn": 2, "kind": "commit"})
        assert second > first == wal.size - (second - first)
        wal.close()
        records, valid, total = read_wal(path)
        assert [r["lsn"] for r in records] == [1, 2]
        assert valid == total == second


# -- basic persistence ---------------------------------------------------------------


class TestPersistence:
    def test_commits_survive_reopen(self, tmp_path):
        db = make_db(tmp_path)
        db.insert("t", [row(1), row(2)])
        with db.session() as session:
            session.begin()
            session.insert("t", [row(3)])
            session.commit()
        db.close()
        reopened = Database(path=str(tmp_path))
        assert ids(reopened) == [1, 2, 3]
        # Rows round-trip bit-identically, dates included.
        assert reopened.execute(
            "select born from t where id = 1").scalar() == row(1)[2]
        reopened.close()

    def test_ddl_replays(self, tmp_path):
        db = make_db(tmp_path)
        db.create_table("gone", [("x", DataType.INTEGER)])
        db.create_index("ix_t_name", "t", ["name"])
        db.create_view("v", "select id from t where id > 1")
        db.create_view("doomed", "select id from t")
        db.drop_view("doomed")
        db.drop_table("gone")
        db.insert("t", [row(1), row(2)])
        db.close()
        reopened = Database(path=str(tmp_path))
        assert reopened.table_names() == ["t"]
        assert reopened.catalog.has_index("ix_t_name")
        assert not reopened.catalog.has_view("doomed")
        assert [r[0] for r in reopened.execute(
            "select id from v order by id").rows] == [2]
        reopened.close()

    def test_uncommitted_transaction_not_replayed(self, tmp_path):
        db = make_db(tmp_path)
        db.insert("t", [row(1)])
        session = db.session()
        session.begin()
        session.insert("t", [row(2)])
        # "Crash" with the transaction open: nothing was logged for it.
        db.close()
        reopened = Database(path=str(tmp_path))
        assert ids(reopened) == [1]
        reopened.close()

    def test_failed_insert_logs_nothing(self, tmp_path):
        db = make_db(tmp_path)
        db.insert("t", [row(1)])
        before = db.durability_status()["wal_bytes"]
        with pytest.raises(ExecutionError):
            db.insert("t", [row(1)])  # primary-key violation
        assert db.durability_status()["wal_bytes"] == before
        db.close()
        reopened = Database(path=str(tmp_path))
        assert ids(reopened) == [1]
        reopened.close()

    def test_ddl_error_messages_match_in_memory(self, tmp_path):
        durable = make_db(tmp_path)
        memory = Database()
        memory.create_table("t", COLUMNS, primary_key=["id"])
        cases = [
            lambda db: db.create_table("t", COLUMNS),
            lambda db: db.drop_table("missing"),
            lambda db: db.drop_view("missing"),
            lambda db: db.create_index("ix", "missing", ["id"]),
            lambda db: db.create_index("ix", "t", ["nope"]),
        ]
        for case in cases:
            with pytest.raises(CatalogError) as durable_error:
                case(durable)
            with pytest.raises(CatalogError) as memory_error:
                case(memory)
            assert str(durable_error.value) == str(memory_error.value)
        durable.close()

    def test_in_memory_default_untouched(self, tmp_path):
        db = Database()
        db.create_table("t", COLUMNS)
        db.insert("t", [row(1)])
        assert db.durability_status() is None
        assert not db.durable
        assert db.storage.wal is None
        with pytest.raises(DurabilityError):
            db.checkpoint()
        db.close()  # no-op, must not raise
        assert os.listdir(tmp_path) == []


# -- torn tails ----------------------------------------------------------------------


class TestTornTail:
    def test_truncation_at_every_byte_offset(self, tmp_path):
        """Cut the log at every possible byte and reopen.

        The committed prefix is tracked independently (WAL end offset
        per commit), so this asserts recovery's exact contract: a cut
        at offset k keeps precisely the commits whose record ended at
        or before k — at record boundaries and mid-byte alike.
        """
        db = make_db(tmp_path)
        boundaries = [(db.durability_status()["wal_bytes"], [])]
        committed = []
        for i in range(1, 6):
            db.insert("t", [row(i)])
            committed = committed + [i]
            boundaries.append(
                (db.durability_status()["wal_bytes"], committed))
        db.close()
        wal_path = tmp_path / WAL_FILENAME
        full = wal_path.read_bytes()
        assert boundaries[-1][0] == len(full)
        ddl_end = boundaries[0][0]
        for cut in range(ddl_end, len(full) + 1):
            wal_path.write_bytes(full[:cut])
            expected = max(ids for end, ids in boundaries if end <= cut)
            reopened = Database(path=str(tmp_path))
            assert ids(reopened) == expected, f"cut at byte {cut}"
            status = reopened.durability_status()
            assert status["recovery"]["truncated_bytes"] == (
                cut - max(end for end, _ in boundaries if end <= cut))
            # The torn tail was physically truncated: the file is again
            # exactly the valid prefix.
            assert os.path.getsize(wal_path) + status[
                "recovery"]["truncated_bytes"] == cut
            reopened.close()

    def test_append_after_torn_truncation_continues_cleanly(self, tmp_path):
        db = make_db(tmp_path)
        db.insert("t", [row(1)])
        db.close()
        wal_path = tmp_path / WAL_FILENAME
        wal_path.write_bytes(wal_path.read_bytes() + b"\xde\xad\xbe")
        reopened = Database(path=str(tmp_path))
        assert ids(reopened) == [1]
        reopened.insert("t", [row(2)])
        reopened.close()
        final = Database(path=str(tmp_path))
        assert ids(final) == [1, 2]
        final.close()


# -- checkpoints ---------------------------------------------------------------------


class TestCheckpoints:
    def test_manual_checkpoint_rotates_log(self, tmp_path):
        db = make_db(tmp_path)
        db.insert("t", [row(1), row(2)])
        status = db.durability_status()
        assert status["wal_bytes"] > 0
        assert db.checkpoint() is True
        status = db.durability_status()
        assert status["wal_bytes"] == 0
        assert status["last_checkpoint_lsn"] > 0
        db.insert("t", [row(3)])
        db.close()
        reopened = Database(path=str(tmp_path))
        assert ids(reopened) == [1, 2, 3]
        report = reopened.durability_status()["recovery"]
        assert report["checkpoint_lsn"] == status["last_checkpoint_lsn"]
        assert report["replayed_records"] == 1  # only the post-ckpt insert
        reopened.close()

    def test_size_trigger_checkpoints_automatically(self, tmp_path):
        db = make_db(tmp_path, checkpoint_bytes=256)
        for i in range(1, 30):
            db.insert("t", [row(i)])
        status = db.durability_status()
        assert status["last_checkpoint_lsn"] > 0
        assert status["wal_bytes"] < 256 * 4  # the log keeps rotating
        db.close()
        reopened = Database(path=str(tmp_path))
        assert ids(reopened) == list(range(1, 30))
        reopened.close()

    def test_checkpoint_preserves_corrections(self, tmp_path):
        db = make_db(tmp_path)
        db.insert("t", [row(1), row(2)])
        db.corrections.record(CardinalityCorrection(
            table="t", predicate_key="b>3", estimated_rows=10.0,
            actual_rows=2, q_error=5.0,
            snapshot=StatsSnapshot({"t": 2})))
        assert db.checkpoint() is True
        db.close()
        reopened = Database(path=str(tmp_path))
        restored = reopened.corrections.lookup("t", "b>3")
        assert restored is not None
        assert restored.actual_rows == 2
        assert restored.q_error == 5.0
        reopened.close()

    def test_stale_wal_records_skipped_after_checkpoint(self, tmp_path):
        """A crash between checkpoint publication and WAL reset leaves
        stale records in the log; replay must skip them by LSN."""
        db = make_db(tmp_path)
        db.insert("t", [row(1)])
        wal_before = (tmp_path / WAL_FILENAME).read_bytes()
        assert db.checkpoint() is True
        db.close()
        # Re-impose the pre-checkpoint log: every record is <= the
        # checkpoint LSN and must not be applied twice.
        (tmp_path / WAL_FILENAME).write_bytes(wal_before)
        reopened = Database(path=str(tmp_path))
        assert ids(reopened) == [1]
        assert reopened.durability_status()[
            "recovery"]["replayed_records"] == 0
        reopened.close()

    def test_checkpoint_while_busy_writer_is_skipped(self, tmp_path):
        db = make_db(tmp_path)
        db.insert("t", [row(1)])
        lock = db.storage.writer_lock("t")
        assert lock.acquire()
        try:
            assert db._durability.checkpoint(db, force=True,
                                             lock_timeout=0.05) is False
        finally:
            lock.release()
        assert db.checkpoint() is True
        db.close()


# -- the offline inspector -----------------------------------------------------------


class TestInspectorCli:
    def test_summary_and_records(self, tmp_path, capsys):
        db = make_db(tmp_path)
        db.insert("t", [row(1)])
        db.checkpoint()
        db.create_view("v", "select id from t")
        db.insert("t", [row(2)])
        db.close()
        assert durability_cli([str(tmp_path), "--records"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint: lsn=" in out
        assert "2 record(s)" in out
        assert "create_view" in out
        assert "commit" in out

    def test_reports_torn_tail(self, tmp_path, capsys):
        db = make_db(tmp_path)
        db.insert("t", [row(1)])
        db.close()
        wal_path = tmp_path / WAL_FILENAME
        wal_path.write_bytes(wal_path.read_bytes() + b"\x00\x01")
        assert durability_cli([str(tmp_path)]) == 0
        assert "TORN TAIL of 2 byte(s)" in capsys.readouterr().out

    def test_reports_corrupt_checkpoint(self, tmp_path, capsys):
        db = make_db(tmp_path)
        db.insert("t", [row(1)])
        db.checkpoint()
        db.close()
        ckpt = tmp_path / CHECKPOINT_FILENAME
        data = bytearray(ckpt.read_bytes())
        data[HEADER_BYTES + 2] ^= 0xFF
        ckpt.write_bytes(bytes(data))
        assert durability_cli([str(tmp_path)]) == 0
        assert "CORRUPT" in capsys.readouterr().out
