"""Plan cache behaviour: hits, LRU, DDL invalidation, staleness."""

import pytest

from repro import Database, DataType, PlanCache
from repro.plancache import CachedPlan, normalize_sql_key
from repro.stats_version import StatsSnapshot, capture, drifted


def make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.VARCHAR, False)],
                    primary_key=("a",))
    db.insert("t", [(1, "x"), (2, "y"), (3, "z")])
    return db


class TestKeyNormalization:
    def test_whitespace_and_case_insensitive(self):
        assert normalize_sql_key("SELECT  a FROM t") == \
            normalize_sql_key("select a\nfrom t")

    def test_distinct_statements_have_distinct_keys(self):
        assert normalize_sql_key("select 1") != normalize_sql_key("select 2")

    def test_string_literals_are_case_sensitive(self):
        assert normalize_sql_key("select 'A'") != \
            normalize_sql_key("select 'a'")

    def test_unlexable_text_falls_back_to_raw(self):
        assert normalize_sql_key("select $$$") == "select $$$"


class TestHitsAndMisses:
    def test_repeat_execution_hits(self):
        db = make_db()
        db.execute("select a from t")
        assert db.plan_cache.stats.misses == 1
        db.execute("select a from t")
        db.execute("SELECT a FROM t")  # same statement modulo lexing
        assert db.plan_cache.stats.hits == 2
        assert db.plan_cache.stats.misses == 1

    def test_modes_do_not_share_entries(self):
        db = make_db()
        db.execute("select a from t", mode="full")
        db.execute("select a from t", mode="naive")
        assert db.plan_cache.stats.misses == 2

    def test_engines_do_not_share_entries(self):
        # Regression: with the engine missing from the cache key, a
        # vectorized execute() after a tuple execute() of the same
        # statement replayed the tuple executable — same key,
        # incompatible executable type.
        db = make_db()
        first = db.execute("select a from t", engine="tuple")
        second = db.execute("select a from t", engine="vectorized")
        assert db.plan_cache.stats.misses == 2
        assert second.rows == first.rows
        db.execute("select a from t", engine="tuple")
        db.execute("select a from t", engine="vectorized")
        assert db.plan_cache.stats.hits == 2

    def test_prepared_statement_skips_replanning(self):
        db = make_db()
        stmt = db.prepare("select a from t where a = ?")
        assert db.plan_cache.stats.misses == 1
        for value in (1, 2, 3):
            stmt.execute((value,))
        assert db.plan_cache.stats.misses == 1
        assert db.plan_cache.stats.hits == 3

    def test_unknown_mode_name_rejected(self):
        db = make_db()
        with pytest.raises(ValueError, match="unknown execution mode"):
            db.execute("select a from t", mode="turbo")


class TestLRU:
    def test_eviction_beyond_capacity(self):
        db = make_db(plan_cache_capacity=2)
        db.execute("select 1 from t")
        db.execute("select 2 from t")
        db.execute("select 3 from t")
        assert len(db.plan_cache) == 2
        assert db.plan_cache.stats.evictions == 1
        # Oldest entry (select 1) was evicted: re-running it misses.
        misses = db.plan_cache.stats.misses
        db.execute("select 1 from t")
        assert db.plan_cache.stats.misses == misses + 1

    def test_touch_on_hit_protects_entry(self):
        db = make_db(plan_cache_capacity=2)
        db.execute("select 1 from t")
        db.execute("select 2 from t")
        db.execute("select 1 from t")  # touch: now `select 2` is LRU
        db.execute("select 3 from t")  # evicts `select 2`
        hits = db.plan_cache.stats.hits
        db.execute("select 1 from t")
        assert db.plan_cache.stats.hits == hits + 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestDDLInvalidation:
    """Every DDL verb must force a replan of cached statements."""

    def _prime(self, db):
        db.execute("select a from t")
        assert len(db.plan_cache) == 1

    def test_create_table(self):
        db = make_db()
        self._prime(db)
        db.create_table("u", [("x", DataType.INTEGER)])
        assert len(db.plan_cache) == 0

    def test_drop_table(self):
        db = make_db()
        db.create_table("u", [("x", DataType.INTEGER)])
        self._prime(db)
        db.drop_table("u")
        assert len(db.plan_cache) == 0

    def test_create_index_triggers_replan_to_better_plan(self):
        db = make_db()
        db.insert("t", [(i, f"k{i}") for i in range(10, 200)])
        stmt = db.prepare("select a from t where b = ?")
        assert "IndexSeek" not in db.explain("select a from t where b = ?")
        assert stmt.execute(("k42",)).rows == [(42,)]
        db.create_index("ix_t_b", "t", ["b"])
        # The prepared handle transparently picks up the new index.
        assert "IndexSeek" in db.explain("select a from t where b = ?")
        assert stmt.execute(("k42",)).rows == [(42,)]

    def test_create_view(self):
        db = make_db()
        self._prime(db)
        db.create_view("v", "select a from t")
        assert len(db.plan_cache) == 0

    def test_drop_view(self):
        db = make_db()
        db.create_view("v", "select a from t")
        self._prime(db)
        db.drop_view("v")
        assert len(db.plan_cache) == 0

    def test_catalog_version_bumps_on_every_verb(self):
        db = Database()
        versions = [db.catalog.version]
        db.create_table("t", [("a", DataType.INTEGER)])
        versions.append(db.catalog.version)
        db.create_index("ix", "t", ["a"])
        versions.append(db.catalog.version)
        db.create_view("v", "select a from t")
        versions.append(db.catalog.version)
        db.drop_view("v")
        versions.append(db.catalog.version)
        db.drop_table("t")
        versions.append(db.catalog.version)
        assert versions == sorted(set(versions)), versions

    def test_drop_and_recreate_table_replans(self):
        db = make_db()
        db.execute("select a, b from t")
        db.drop_table("t")
        db.create_table("t", [("a", DataType.INTEGER, False),
                              ("b", DataType.INTEGER, False)])
        db.insert("t", [(7, 70)])
        result = db.execute("select a, b from t")
        assert result.rows == [(7, 70)]
        assert db.plan_cache.stats.invalidations >= 1


class TestStaleness:
    def test_bulk_load_triggers_reoptimization(self):
        db = make_db()
        db.execute("select count(*) from t")  # planned against 3 rows
        db.insert("t", [(i, "w") for i in range(100, 400)])
        result = db.execute("select count(*) from t")
        assert result.scalar() == 303
        assert db.plan_cache.stats.stale == 1

    def test_small_drift_keeps_plan(self):
        db = make_db()
        db.insert("t", [(i, "w") for i in range(100, 200)])
        db.execute("select count(*) from t")
        db.insert("t", [(500, "w")])  # ~1% growth: below threshold
        db.execute("select count(*) from t")
        assert db.plan_cache.stats.stale == 0
        assert db.plan_cache.stats.hits == 1

    def test_drift_helper_relative_threshold(self):
        snapshot = capture(lambda name: {"t": 100}[name], ["t"])
        assert isinstance(snapshot, StatsSnapshot)
        assert not drifted(snapshot, lambda name: 120, threshold=0.5)
        assert drifted(snapshot, lambda name: 151, threshold=0.5)
        assert drifted(snapshot, lambda name: 20, threshold=0.5)

    def test_empty_table_snapshot_trips_on_first_insert(self):
        snapshot = capture(lambda name: 0, ["t"])
        assert drifted(snapshot, lambda name: 2, threshold=0.5)
        assert not drifted(snapshot, lambda name: 0, threshold=0.5)


class TestPlanCacheUnit:
    def _entry(self, sql_key="k", mode="full", version=0,
               tables=frozenset(), engine="tuple"):
        return CachedPlan(
            sql_key=sql_key, mode_name=mode, catalog_version=version,
            names=["a"], types=[DataType.INTEGER], parameters=(),
            plan=None, rel=None, executable=None,
            snapshot=StatsSnapshot({}), engine=engine, table_names=tables)

    def test_key_includes_engine(self):
        cache = PlanCache()
        cache.put(self._entry("q", engine="tuple"))
        assert cache.get("q", "full", 0, engine="vectorized") is None
        assert cache.get("q", "full", 0, engine="tuple") is not None

    def test_targeted_invalidation_by_table(self):
        cache = PlanCache()
        cache.put(self._entry("q1", tables=frozenset({"t"})))
        cache.put(self._entry("q2", tables=frozenset({"u"})))
        cache.put(self._entry("q3", tables=frozenset({"t", "u"})))
        removed = cache.invalidate("T")
        assert removed == 2
        assert len(cache) == 1
        assert cache.stats.invalidations == 2

    def test_full_invalidation(self):
        cache = PlanCache()
        cache.put(self._entry("q1"))
        cache.put(self._entry("q2"))
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_stats_reset(self):
        cache = PlanCache()
        cache.get("nope", "full", 0)
        assert cache.stats.misses == 1
        cache.stats.reset()
        assert cache.stats.misses == 0
