"""EXCEPT ALL (bag difference) through the full pipeline."""

from collections import Counter

import pytest

from repro import CORRELATED, FULL, NAIVE, Database, DataType
from repro.errors import BindError, SqlSyntaxError
from repro.sql import parse


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("a", DataType.INTEGER, False),
                                ("tag", DataType.VARCHAR, False)])
    database.create_table("u", [("b", DataType.INTEGER, False)])
    database.insert("t", [(1, "x"), (1, "x"), (2, "x"), (3, "x")])
    database.insert("u", [(1,), (3,), (3,)])
    return database


class TestExceptAll:
    def test_bag_difference_semantics(self, db):
        sql = "select a from t except all select b from u"
        for mode in (NAIVE, FULL, CORRELATED):
            result = db.execute(sql, mode)
            # {1,1,2,3} − {1,3,3} = {1,2}
            assert Counter(result.rows) == Counter([(1,), (2,)])

    def test_chained(self, db):
        sql = ("select a from t except all select b from u "
               "except all select 1")
        result = db.execute(sql, FULL)
        assert Counter(result.rows) == Counter([(2,)])

    def test_mixed_with_union_all(self, db):
        sql = ("select a from t union all select b from u "
               "except all select 1")
        result = db.execute(sql, FULL)
        # ({1,1,2,3} ∪ {1,3,3}) − {1} = {1,1,2,3,3,3}
        assert Counter(result.rows) == \
            Counter([(1,), (1,), (2,), (3,), (3,), (3,)])

    def test_plain_except_rejected(self):
        with pytest.raises(SqlSyntaxError, match="EXCEPT ALL"):
            parse("select 1 except select 2")

    def test_width_mismatch(self, db):
        with pytest.raises(BindError, match="widths"):
            db.execute("select a, tag from t except all select b from u")

    def test_subquery_with_except(self, db):
        sql = """select count(*) from t
                 where a in (select a from t except all select b from u)"""
        for mode in (NAIVE, FULL):
            assert db.execute(sql, mode).rows == [(3,)]  # a ∈ {1, 2}
