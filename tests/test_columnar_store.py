"""Unit tests for the native columnar storage layer.

Covers the encoding implementations (round-trip fidelity, including the
type-strict ``1`` vs ``1.0`` distinction), the seal-time encoding
heuristics, the :class:`ColumnStore` chunk/tail life cycle, the
:class:`RowView` row façade, and the per-chunk cache-invalidation
contract: writes touch only the tail, sealed chunks — and their decode /
pivot caches — are shared across copy-on-write versions.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FULL, NAIVE, Database, DataType
from repro.faultinject import fail_always, fail_at, is_active
from repro.storage import ColumnStore, RowView, StoredTable
from repro.storage.columnar import (DictColumn, PlainColumn, RLEColumn,
                                    choose_encoding, compute_zone,
                                    encode_column, seal_chunk)

# -- encodings ------------------------------------------------------------------

mixed_values = st.lists(
    st.one_of(st.none(), st.integers(-3, 3), st.booleans(),
              st.floats(allow_nan=False, allow_infinity=False,
                        width=16),
              st.sampled_from(["a", "bb", ""])),
    max_size=40)


class TestEncodings:
    @settings(max_examples=60, deadline=None, database=None)
    @given(values=mixed_values,
           kind=st.sampled_from(["plain", "dict", "rle"]))
    def test_round_trip_is_bit_identical(self, values, kind):
        encoded = encode_column(values, kind)
        decoded = encoded.decode()
        assert len(encoded) == len(values)
        assert [(v.__class__, v) for v in decoded] \
            == [(v.__class__, v) for v in values]

    def test_equal_but_differently_typed_values_stay_apart(self):
        # 1 == 1.0 == True in Python; the encodings must not merge them.
        values = [1, 1.0, True, 1, 1.0, True]
        for kind in ("dict", "rle"):
            decoded = encode_column(values, kind).decode()
            assert [type(v) for v in decoded] == [int, float, bool] * 2

    def test_dict_column_shares_slots(self):
        column = encode_column(["a", "b", "a", "a", "b"], "dict")
        assert isinstance(column, DictColumn)
        assert column.values == ["a", "b"]
        assert column.codes == [0, 1, 0, 0, 1]

    def test_rle_column_groups_runs(self):
        column = encode_column([7, 7, 7, None, None, 8], "rle")
        assert isinstance(column, RLEColumn)
        assert column.runs == [(7, 3), (None, 2), (8, 1)]

    def test_unhashable_values_fall_back_to_plain(self):
        values = [[1], [2]] * 10
        assert choose_encoding(values) == "plain"
        assert isinstance(encode_column(values, "dict"), PlainColumn)

    def test_choose_encoding_heuristics(self):
        # clustered: few runs relative to rows -> RLE
        assert choose_encoding([1] * 20 + [2] * 20) == "rle"
        # low NDV but unclustered -> dictionary
        assert choose_encoding([0, 1] * 20) == "dict"
        # high NDV -> plain
        assert choose_encoding(list(range(64))) == "plain"
        # tiny slices are never worth the indirection
        assert choose_encoding([1] * 15) == "plain"


class TestZoneComputation:
    def test_min_max_and_null_count(self):
        zone = compute_zone([3, None, 1, 9, None])
        assert (zone.min, zone.max) == (1, 9)
        assert zone.null_count == 2 and zone.nrows == 5

    def test_all_null_slice(self):
        zone = compute_zone([None, None])
        assert zone.min is None and zone.max is None
        assert zone.null_count == 2

    def test_incomparable_values_keep_exact_null_count(self):
        zone = compute_zone([1, "a", None, 2])
        assert zone.min is None and zone.max is None
        assert zone.null_count == 1 and zone.nrows == 4


# -- the store ------------------------------------------------------------------

class TestColumnStore:
    def build(self, nrows=10, chunk_rows=4) -> ColumnStore:
        store = ColumnStore(2, chunk_rows=chunk_rows)
        for i in range(nrows):
            store.append((i, i % 3))
        return store

    def test_append_seals_full_chunks(self):
        store = self.build(10, chunk_rows=4)
        assert len(store) == 10
        assert [chunk.nrows for chunk in store.chunks] == [4, 4]
        assert [unit.nrows for unit in store.scan_units()] == [4, 4, 2]

    def test_row_addressing_across_chunks_and_tail(self):
        store = self.build(10, chunk_rows=4)
        for i in range(10):
            assert store.row(i) == (i, i % 3)
        with pytest.raises(IndexError):
            store.row(10)
        assert list(store.iter_rows()) == [(i, i % 3) for i in range(10)]
        assert store.columns() == [list(range(10)),
                                   [i % 3 for i in range(10)]]

    def test_force_encodings_round_trips(self):
        store = self.build(10, chunk_rows=4)
        store.force_encodings(["rle", "dict"])
        assert all(chunk.encodings == ("plain", "dict")
                   or chunk.encodings == ("rle", "dict")
                   for chunk in store.chunks)
        assert list(store.iter_rows()) == [(i, i % 3) for i in range(10)]

    def test_force_encodings_validates(self):
        store = self.build(4, chunk_rows=4)
        with pytest.raises(ValueError):
            store.force_encodings(["plain"])       # wrong arity
        with pytest.raises(ValueError):
            store.force_encodings(["plain", "lz4"])  # unknown kind

    def test_clone_shares_sealed_chunks_and_copies_tail(self):
        store = self.build(10, chunk_rows=4)
        clone = store.clone()
        assert all(a is b for a, b in zip(store.chunks, clone.chunks))
        clone.append((99, 0))
        assert len(store) == 10 and len(clone) == 11
        assert store.row(9) == (9, 0)
        assert clone.row(10) == (99, 0)

    def test_zone_maps_cover_tail(self):
        store = self.build(10, chunk_rows=4)
        tail_unit = store.scan_units()[-1]
        assert (tail_unit.zones[0].min, tail_unit.zones[0].max) == (8, 9)


# -- the row façade -------------------------------------------------------------

class TestRowView:
    def table(self) -> StoredTable:
        db = Database(chunk_rows=4)
        db.create_table("t", [("a", DataType.INTEGER, False),
                              ("b", DataType.INTEGER, True)],
                        primary_key=("a",))
        db.insert("t", [(i, i * 10) for i in range(10)])
        return db.storage.get("t")

    def test_sequence_protocol(self):
        rows = self.table().rows
        assert isinstance(rows, RowView)
        assert len(rows) == 10
        assert rows[0] == (0, 0)
        assert rows[-1] == (9, 90)
        assert rows[3:6] == [(3, 30), (4, 40), (5, 50)]
        assert list(rows) == [(i, i * 10) for i in range(10)]
        with pytest.raises(IndexError):
            rows[10]

    def test_equality_against_lists_and_tuples(self):
        rows = self.table().rows
        expected = [(i, i * 10) for i in range(10)]
        assert rows == expected
        assert rows == tuple(expected)
        assert not (rows == expected[:-1])
        assert rows != expected[:-1]


# -- per-chunk cache invalidation -----------------------------------------------

class TestPerChunkCaches:
    """Writes must invalidate only the tail: sealed chunks keep their
    decoded-column and row-pivot caches across copy-on-write installs,
    so a write-heavy interleaving never re-pivots cold data."""

    def make_db(self) -> Database:
        db = Database(chunk_rows=4)
        db.create_table("t", [("a", DataType.INTEGER, False),
                              ("b", DataType.INTEGER, True)],
                        primary_key=("a",))
        db.insert("t", [(i, i % 3) for i in range(8)])
        return db

    def test_sealed_chunk_caches_survive_writes(self):
        db = self.make_db()
        # Warm the per-chunk caches via both engines.
        db.execute("select t.a, t.b from t", FULL, engine="vectorized")
        db.execute("select t.a, t.b from t", FULL, engine="tuple")
        before = db.storage.get("t")._store
        warmed_chunks = list(before.chunks)
        warmed_pivots = [chunk.rows() for chunk in warmed_chunks]
        warmed_columns = [chunk.column(0) for chunk in warmed_chunks]

        # Write-heavy interleaving: every insert installs a new version.
        for i in range(8, 20):
            db.insert("t", [(i, i % 3)])
            rows = db.execute("select t.a from t order by 1", FULL).rows
            assert rows == [(j,) for j in range(i + 1)]

        after = db.storage.get("t")._store
        # The original sealed chunks are the very same objects...
        assert after.chunks[:len(warmed_chunks)] == warmed_chunks
        # ...and their caches were never dropped: identical list objects.
        for chunk, pivot, column in zip(after.chunks, warmed_pivots,
                                        warmed_columns):
            assert chunk.rows() is pivot
            assert chunk.column(0) is column

    def test_new_chunks_sealed_from_interleaved_tail(self):
        db = self.make_db()
        for i in range(8, 20):
            db.insert("t", [(i, i % 3)])
        store = db.storage.get("t")._store
        assert [chunk.nrows for chunk in store.chunks] == [4] * 5
        assert list(store.iter_rows()) == [(i, i % 3) for i in range(20)]


# -- decode fault site ----------------------------------------------------------

class TestDecodeFaults:
    """``columnar.decode`` fires on the first touch of a sealed chunk's
    column; recovery falls back across engines with correct rows."""

    SQL = "select t.b, count(*) from t group by t.b"

    def fresh(self) -> Database:
        db = Database(chunk_rows=8)
        db.create_table("t", [("a", DataType.INTEGER, False),
                              ("b", DataType.INTEGER, True)],
                        primary_key=("a",))
        db.insert("t", [(i, i % 5) for i in range(40)])
        return db

    def test_one_shot_decode_fault_recovers(self):
        expected = Counter(self.fresh().execute(self.SQL, NAIVE).rows)
        db = self.fresh()  # cold caches: the reference must not warm them
        with fail_at("columnar.decode", n=1) as (trigger,):
            result = db.execute(self.SQL, FULL)
        assert trigger.fired
        assert not is_active()
        assert Counter(result.rows) == expected

    def test_persistent_decode_fault_surfaces(self):
        from repro import InjectedFault
        db = self.fresh()
        with fail_always("columnar.decode"):
            with pytest.raises(InjectedFault):
                db.execute(self.SQL, FULL)
