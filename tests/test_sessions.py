"""Session API: transactions, visibility, conflicts, lifecycle."""

import threading

import pytest

from repro import Database, DataType
from repro.errors import (ExecutionError, SessionClosed, TransactionConflict,
                          TransactionError)


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("a", DataType.INTEGER, False),
                                ("b", DataType.INTEGER, False)],
                          primary_key=("a",))
    database.insert("t", [(i, i % 3) for i in range(10)])
    return database


class TestAutocommit:
    def test_statements_see_committed_data(self, db):
        with db.session() as session:
            assert session.execute("select count(*) from t").scalar() == 10
            session.insert("t", [(100, 0)])
            assert session.execute("select count(*) from t").scalar() == 11

    def test_sessions_register_and_deregister(self, db):
        assert db.open_session_count == 0
        s1, s2 = db.session(), db.session()
        assert db.open_session_count == 2
        s1.close(); s2.close()
        assert db.open_session_count == 0

    def test_stats_accumulate(self, db):
        with db.session() as session:
            session.execute("select a from t where b = 0 order by a")
            session.insert("t", [(50, 1)])
            assert session.stats.queries == 1
            assert session.stats.rows_returned == 4
            assert session.stats.rows_inserted == 1


class TestTransactions:
    def test_read_your_own_writes_hidden_from_others(self, db):
        writer, reader = db.session(), db.session()
        writer.begin()
        writer.insert("t", [(100, 9)])
        assert writer.execute("select count(*) from t").scalar() == 11
        assert reader.execute("select count(*) from t").scalar() == 10
        writer.commit()
        assert reader.execute("select count(*) from t").scalar() == 11
        writer.close(); reader.close()

    def test_rollback_discards_writes(self, db):
        with db.session() as session:
            session.begin()
            session.insert("t", [(100, 9)])
            session.rollback()
            assert session.execute("select count(*) from t").scalar() == 10
        assert session.stats.rollbacks == 1

    def test_snapshot_pinned_at_begin(self, db):
        reader = db.session()
        reader.begin()
        db.insert("t", [(100, 9)])  # concurrent autocommit
        # The transaction still sees the world as of begin().
        assert reader.execute("select count(*) from t").scalar() == 10
        reader.commit()
        assert reader.execute("select count(*) from t").scalar() == 11
        reader.close()

    def test_double_begin_rejected(self, db):
        with db.session() as session:
            session.begin()
            with pytest.raises(TransactionError):
                session.begin()
            session.rollback()

    def test_commit_without_begin_rejected(self, db):
        with db.session() as session:
            with pytest.raises(TransactionError):
                session.commit()

    def test_rollback_without_begin_is_noop(self, db):
        with db.session() as session:
            session.rollback()

    def test_writer_conflict_detected(self, db):
        first = db.session()
        second = db.session(lock_timeout=0.1)
        first.begin()
        first.insert("t", [(100, 9)])
        second.begin()
        with pytest.raises(TransactionConflict):
            second.insert("t", [(101, 9)])
        assert second.stats.conflicts == 1
        second.rollback(); second.close()
        first.commit(); first.close()

    def test_lock_released_after_commit(self, db):
        first = db.session()
        first.begin()
        first.insert("t", [(100, 9)])
        first.commit()
        second = db.session(lock_timeout=0.5)
        second.begin()
        second.insert("t", [(101, 9)])
        second.commit()
        assert db.execute("select count(*) from t").scalar() == 12
        first.close(); second.close()

    def test_failed_statement_poisons_transaction(self, db):
        with db.session() as session:
            session.begin()
            session.insert("t", [(100, 9)])
            with pytest.raises(ExecutionError):
                session.insert("t", [(1, 0)])  # duplicate primary key
            with pytest.raises(TransactionError):
                session.commit()
            # The poisoned transaction rolled back: nothing landed.
            assert session.execute("select count(*) from t").scalar() == 10

    def test_multi_table_commit_is_atomic(self, db):
        db.create_table("u", [("k", DataType.INTEGER, False)],
                        primary_key=("k",))
        version_before = db.storage.data_version
        with db.session() as session:
            session.begin()
            session.insert("t", [(100, 9)])
            session.insert("u", [(1,)])
            session.commit()
        # Both tables landed under a single version bump.
        assert db.storage.data_version == version_before + 1
        assert db.execute("select count(*) from u").scalar() == 1

    def test_ddl_rejected_inside_transaction(self, db):
        with db.session() as session:
            session.begin()
            with pytest.raises(TransactionError):
                session.create_table("x", [("a", DataType.INTEGER)])
            with pytest.raises(TransactionError):
                session.drop_table("t")
            session.rollback()

    def test_concurrent_threads_conflict_cleanly(self, db):
        """Two threads racing to write the same table: exactly one wins
        immediately, the other either waits for the lock and then hits
        first-committer-wins or times out — never a deadlock."""
        barrier = threading.Barrier(2)
        outcomes: list[str] = []

        def contender(n: int) -> None:
            session = db.session(lock_timeout=2.0)
            session.begin()
            barrier.wait()
            try:
                session.insert("t", [(200 + n, 0)])
                session.commit()
                outcomes.append("committed")
            except TransactionConflict:
                session.rollback()
                outcomes.append("conflict")
            finally:
                session.close()

        threads = [threading.Thread(target=contender, args=(n,))
                   for n in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert sorted(outcomes) in (["committed", "committed"],
                                    ["committed", "conflict"])
        assert outcomes.count("committed") >= 1


class TestLifecycle:
    def test_closed_session_rejects_everything(self, db):
        session = db.session()
        session.close()
        with pytest.raises(SessionClosed):
            session.execute("select 1 from t")
        with pytest.raises(SessionClosed):
            session.begin()
        session.close()  # idempotent

    def test_close_rolls_back_open_transaction(self, db):
        session = db.session()
        session.begin()
        session.insert("t", [(100, 9)])
        session.close()
        assert db.execute("select count(*) from t").scalar() == 10

    def test_context_manager_commits_clean_exit(self, db):
        with db.session() as session:
            session.begin()
            session.insert("t", [(100, 9)])
        assert db.execute("select count(*) from t").scalar() == 11

    def test_context_manager_rolls_back_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.session() as session:
                session.begin()
                session.insert("t", [(100, 9)])
                raise RuntimeError("boom")
        assert db.execute("select count(*) from t").scalar() == 10
