"""Deliberately inverted two-lock fixture.

``ab()`` nests fixture.alpha -> fixture.beta (ascending: legal);
``ba()`` nests fixture.beta -> fixture.alpha (descending: a hierarchy
violation, and together with ``ab()`` a lock-order cycle).  The static
analyzer must report both, and the runtime race detector must raise on
whichever direction completes second.

This file lives under tests/fixtures (not src/) so the default
``check`` over the repro package never sees it; the CI gate runs it
explicitly with ``--expect-violations``.
"""

from repro.concurrency import TrackedLock

A = TrackedLock("fixture.alpha", level=210)
B = TrackedLock("fixture.beta", level=220)


def ab() -> None:
    """The sanctioned order: alpha (210) then beta (220)."""
    with A:
        with B:
            pass


def ba() -> None:
    """The inversion: beta (220) held while taking alpha (210)."""
    with B:
        with A:
            pass
