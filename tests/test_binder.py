"""Unit tests for the binder: name resolution, grouping, subquery binding."""

import pytest

from repro.algebra import (AggregateFunction, ColumnRef, ConstantScan,
                           DataType, ExistsSubquery, Get, GroupBy, InList,
                           InSubquery, Join, JoinKind, Max1row, Project,
                           QuantifiedComparison, ScalarGroupBy,
                           ScalarSubquery, Select, Sort, Top, UnionAll,
                           collect_nodes, explain)
from repro.binder import Binder
from repro.errors import BindError
from repro.sql import parse


@pytest.fixture
def binder(mini_catalog):
    return Binder(mini_catalog)


def bind(binder, sql):
    return binder.bind(parse(sql))


class TestBasicBinding:
    def test_simple_projection(self, binder):
        bound = bind(binder, "select c_custkey, c_name from customer")
        assert bound.names == ["c_custkey", "c_name"]
        assert isinstance(bound.rel, Project)
        assert isinstance(bound.rel.child, Get)

    def test_star_expansion(self, binder):
        bound = bind(binder, "select * from customer")
        assert bound.names == ["c_custkey", "c_name", "c_nationkey",
                               "c_acctbal"]

    def test_qualified_star(self, binder):
        bound = bind(binder, "select o.* from customer c, orders o")
        assert bound.names[0] == "o_orderkey"
        assert len(bound.names) == 5

    def test_select_without_from(self, binder):
        bound = bind(binder, "select 1 as one, 'x' as ex")
        scans = collect_nodes(bound.rel,
                              lambda n: isinstance(n, ConstantScan))
        assert len(scans) == 1
        assert bound.names == ["one", "ex"]

    def test_unknown_column(self, binder):
        with pytest.raises(BindError, match="unknown column"):
            bind(binder, "select nope from customer")

    def test_unknown_table(self, binder):
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            bind(binder, "select 1 from nope")

    def test_ambiguous_column(self, binder):
        with pytest.raises(BindError, match="ambiguous"):
            bind(binder, "select c_custkey from customer a, customer b")

    def test_alias_qualification_disambiguates(self, binder):
        bound = bind(binder, "select a.c_custkey from customer a, customer b")
        assert bound.names == ["c_custkey"]

    def test_duplicate_alias_rejected(self, binder):
        with pytest.raises(BindError, match="duplicate table alias"):
            bind(binder, "select 1 from customer a, orders a")

    def test_self_join_columns_distinct(self, binder):
        bound = bind(binder, "select a.c_custkey, b.c_custkey "
                             "from customer a, customer b")
        cols = bound.columns
        assert cols[0].cid != cols[1].cid

    def test_where_requires_boolean(self, binder):
        with pytest.raises(BindError, match="boolean"):
            bind(binder, "select 1 from customer where c_custkey + 1")

    def test_type_mismatch_comparison(self, binder):
        with pytest.raises(BindError, match="cannot compare"):
            bind(binder, "select 1 from customer where c_name = 5")

    def test_order_by_alias_and_limit(self, binder):
        bound = bind(binder, "select c_acctbal as bal from customer "
                             "order by bal desc limit 10")
        assert isinstance(bound.rel, Top)
        assert isinstance(bound.rel.child, Sort)
        assert bound.rel.child.keys[0][1] is False  # descending

    def test_order_by_underlying_column(self, binder):
        bound = bind(binder, "select c_name from customer order by c_name")
        assert isinstance(bound.rel, Sort)

    def test_distinct_becomes_groupby(self, binder):
        bound = bind(binder, "select distinct c_nationkey from customer")
        assert isinstance(bound.rel, GroupBy)
        assert bound.rel.aggregates == []

    def test_in_list_binding(self, binder):
        bound = bind(binder, "select 1 from part "
                             "where p_container in ('A', 'B')")
        select = collect_nodes(bound.rel,
                               lambda n: isinstance(n, Select))[0]
        assert isinstance(select.predicate, InList)

    def test_arithmetic_type_checks(self, binder):
        with pytest.raises(BindError, match="invalid arithmetic"):
            bind(binder, "select c_name + 1 from customer")


class TestGrouping:
    def test_vector_aggregate(self, binder):
        bound = bind(binder, "select o_custkey, sum(o_totalprice) "
                             "from orders group by o_custkey")
        gb = collect_nodes(bound.rel, lambda n: isinstance(n, GroupBy))[0]
        assert len(gb.group_columns) == 1
        assert gb.aggregates[0][1].func is AggregateFunction.SUM

    def test_scalar_aggregate(self, binder):
        bound = bind(binder, "select sum(o_totalprice) from orders")
        assert collect_nodes(bound.rel,
                             lambda n: isinstance(n, ScalarGroupBy))

    def test_non_grouped_column_rejected(self, binder):
        with pytest.raises(BindError, match="GROUP BY"):
            bind(binder, "select o_orderkey, sum(o_totalprice) "
                         "from orders group by o_custkey")

    def test_having_without_group_rejected(self, binder):
        with pytest.raises(BindError, match="HAVING"):
            bind(binder, "select o_orderkey from orders having o_orderkey > 1")

    def test_aggregate_in_where_rejected(self, binder):
        with pytest.raises(BindError, match="WHERE"):
            bind(binder, "select 1 from orders where sum(o_totalprice) > 5")

    def test_nested_aggregate_rejected(self, binder):
        with pytest.raises(BindError, match="nested"):
            bind(binder, "select sum(count(*)) from orders")

    def test_duplicate_aggregate_bound_once(self, binder):
        bound = bind(binder, "select sum(o_totalprice), sum(o_totalprice) "
                             "from orders")
        sgb = collect_nodes(bound.rel,
                            lambda n: isinstance(n, ScalarGroupBy))[0]
        assert len(sgb.aggregates) == 1

    def test_group_by_expression(self, binder):
        bound = bind(binder, "select o_custkey + 1, count(*) from orders "
                             "group by o_custkey + 1")
        gb = collect_nodes(bound.rel, lambda n: isinstance(n, GroupBy))[0]
        assert len(gb.group_columns) == 1

    def test_having_uses_aggregate(self, binder):
        bound = bind(binder, "select o_custkey from orders group by o_custkey "
                             "having 100 < sum(o_totalprice)")
        gb = collect_nodes(bound.rel, lambda n: isinstance(n, GroupBy))[0]
        assert gb.aggregates[0][1].func is AggregateFunction.SUM

    def test_expression_over_aggregates(self, binder):
        bound = bind(binder, "select sum(l_extendedprice) / 7.0 as avg_yearly "
                             "from lineitem")
        assert bound.names == ["avg_yearly"]

    def test_sum_requires_numeric(self, binder):
        with pytest.raises(BindError, match="numeric"):
            bind(binder, "select sum(c_name) from customer")

    def test_count_star_with_group(self, binder):
        bound = bind(binder, "select o_orderpriority, count(*) from orders "
                             "group by o_orderpriority")
        gb = collect_nodes(bound.rel, lambda n: isinstance(n, GroupBy))[0]
        assert gb.aggregates[0][1].func is AggregateFunction.COUNT_STAR


class TestSubqueryBinding:
    def test_correlated_scalar_subquery(self, binder):
        bound = bind(binder, """
            select c_custkey from customer
            where 1000000 < (select sum(o_totalprice) from orders
                             where o_custkey = c_custkey)""")
        select = collect_nodes(bound.rel,
                               lambda n: isinstance(n, Select))[0]
        assert select.contains_subquery()
        subqueries = [n for n in
                      select.predicate.children[1].relational_children]
        assert len(subqueries) == 1
        # correlated: the subquery references c_custkey from outside
        assert subqueries[0].outer_references()

    def test_scalar_aggregate_subquery_skips_max1row(self, binder):
        bound = bind(binder, """
            select c_custkey from customer
            where 1 < (select sum(o_totalprice) from orders)""")
        assert not collect_nodes(bound.rel,
                                 lambda n: isinstance(n, Max1row))

    def test_non_single_row_subquery_gets_max1row(self, binder):
        bound = bind(binder, """
            select c_name, (select o_orderkey from orders
                            where o_custkey = c_custkey)
            from customer""")
        assert collect_nodes(bound.rel, lambda n: isinstance(n, Max1row))

    def test_key_lookup_elides_max1row(self, binder):
        """Paper Section 2.4: the reversed query needs no Max1row because
        c_custkey is a declared key."""
        bound = bind(binder, """
            select o_orderkey, (select c_name from customer
                                where c_custkey = o_custkey)
            from orders""")
        assert not collect_nodes(bound.rel,
                                 lambda n: isinstance(n, Max1row))

    def test_exists_binding(self, binder):
        bound = bind(binder, """
            select o_orderkey from orders
            where exists (select * from lineitem
                          where l_orderkey = o_orderkey)""")
        select = collect_nodes(
            bound.rel, lambda n: isinstance(n, Select)
            and isinstance(n.predicate, ExistsSubquery))
        assert select

    def test_in_subquery_binding(self, binder):
        bound = bind(binder, """
            select p_partkey from part
            where p_partkey in (select l_partkey from lineitem)""")
        select = collect_nodes(
            bound.rel, lambda n: isinstance(n, Select)
            and isinstance(n.predicate, InSubquery))
        assert select

    def test_quantified_binding(self, binder):
        bound = bind(binder, """
            select s_suppkey from supplier
            where s_acctbal > all (select c_acctbal from customer)""")
        select = collect_nodes(
            bound.rel, lambda n: isinstance(n, Select)
            and isinstance(n.predicate, QuantifiedComparison))
        assert select

    def test_scalar_subquery_multiple_columns_rejected(self, binder):
        with pytest.raises(BindError, match="exactly one column"):
            bind(binder, "select (select c_custkey, c_name from customer) "
                         "from orders")

    def test_subquery_in_select_list(self, binder):
        bound = bind(binder, """
            select c_name,
                   (select sum(o_totalprice) from orders
                    where o_custkey = c_custkey) as total
            from customer""")
        assert bound.names == ["c_name", "total"]
        project = bound.rel
        assert isinstance(project, Project)
        assert project.contains_subquery()

    def test_correlated_subquery_in_having(self, binder):
        bound = bind(binder, """
            select o_custkey from orders group by o_custkey
            having sum(o_totalprice) >
                   (select avg(o_totalprice) from orders)""")
        assert bound.names == ["o_custkey"]


class TestDerivedTablesAndUnion:
    def test_derived_table(self, binder):
        bound = bind(binder, """
            select total from (select o_custkey,
                                      sum(o_totalprice) as total
                               from orders group by o_custkey) as agg
            where total > 100""")
        assert bound.names == ["total"]

    def test_derived_table_column_aliases(self, binder):
        bound = bind(binder, """
            select k from (select o_custkey from orders) as d (k)""")
        assert bound.names == ["k"]

    def test_derived_table_alias_count_mismatch(self, binder):
        with pytest.raises(BindError, match="aliases"):
            bind(binder, "select 1 from (select o_custkey, o_orderkey "
                         "from orders) as d (k)")

    def test_union_all(self, binder):
        bound = bind(binder, """
            select c_acctbal from customer
            union all
            select s_acctbal from supplier""")
        assert isinstance(bound.rel, UnionAll)
        assert bound.names == ["c_acctbal"]

    def test_union_width_mismatch(self, binder):
        with pytest.raises(BindError, match="widths"):
            bind(binder, "select c_custkey, c_name from customer "
                         "union all select s_suppkey from supplier")

    def test_left_outer_join_binding(self, binder):
        bound = bind(binder, """
            select c_custkey from customer
            left outer join orders on o_custkey = c_custkey""")
        joins = collect_nodes(bound.rel, lambda n: isinstance(n, Join))
        assert joins[0].kind is JoinKind.LEFT_OUTER
