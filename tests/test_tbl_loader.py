"""Round-trip tests for the dbgen .tbl loader/dumper."""

import pytest

from repro import Database, FULL
from repro.errors import ExecutionError
from repro.tpch import (QUERIES, create_tpch_schema, dump_tbl,
                        generate_tpch, load_tbl)


@pytest.fixture(scope="module")
def generated_db():
    db = Database()
    create_tpch_schema(db)
    generate_tpch(db, scale_factor=0.0005, seed=99)
    return db


class TestRoundTrip:
    def test_dump_then_load_identical(self, generated_db, tmp_path):
        dumped = dump_tbl(generated_db, tmp_path)
        assert dumped["lineitem"] > 0

        fresh = Database()
        create_tpch_schema(fresh)
        loaded = load_tbl(fresh, tmp_path)
        assert loaded == dumped
        for name in dumped:
            assert fresh.storage.get(name).rows == \
                generated_db.storage.get(name).rows

    def test_query_results_survive_round_trip(self, generated_db, tmp_path):
        dump_tbl(generated_db, tmp_path)
        fresh = Database()
        create_tpch_schema(fresh)
        load_tbl(fresh, tmp_path)
        for name in ("Q1", "Q6", "Q17"):
            assert fresh.execute(QUERIES[name], FULL).rows == \
                generated_db.execute(QUERIES[name], FULL).rows

    def test_subset_load(self, generated_db, tmp_path):
        dump_tbl(generated_db, tmp_path, tables=["region", "nation"])
        fresh = Database()
        create_tpch_schema(fresh)
        counts = load_tbl(fresh, tmp_path)
        assert set(counts) == {"region", "nation"}

    def test_missing_files_skipped(self, tmp_path):
        fresh = Database()
        create_tpch_schema(fresh)
        assert load_tbl(fresh, tmp_path) == {}


class TestMalformedInput:
    def test_wrong_field_count(self, tmp_path):
        (tmp_path / "region.tbl").write_text(
            "0|AFRICA|x|\n1|too|many|extra|fields|\n")
        fresh = Database()
        create_tpch_schema(fresh)
        with pytest.raises(ExecutionError, match="region.tbl:2"):
            load_tbl(fresh, tmp_path)

    def test_bad_integer(self, tmp_path):
        (tmp_path / "region.tbl").write_text("zero|AFRICA|x|\n")
        fresh = Database()
        create_tpch_schema(fresh)
        with pytest.raises(ExecutionError, match="region.tbl:1"):
            load_tbl(fresh, tmp_path)

    def test_empty_lines_ignored(self, tmp_path):
        (tmp_path / "region.tbl").write_text("0|AFRICA|x|\n\n1|AMERICA|y|\n")
        fresh = Database()
        create_tpch_schema(fresh)
        counts = load_tbl(fresh, tmp_path)
        assert counts["region"] == 2
