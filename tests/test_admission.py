"""Admission controller and resource pool behaviour."""

import threading
import time

import pytest

from repro.errors import ServerError, ServerOverloaded
from repro.server import AdmissionController, ResourcePool


class TestAdmission:
    def test_runs_submitted_work(self):
        with AdmissionController(max_workers=2) as admission:
            assert admission.run("s1", lambda: 40 + 2) == 42

    def test_exception_delivered_to_caller_only(self):
        with AdmissionController(max_workers=1) as admission:
            with pytest.raises(ValueError):
                admission.run("s1", lambda: (_ for _ in ()).throw(
                    ValueError("boom")))
            # The worker that ran the failing job is still alive.
            assert admission.run("s1", lambda: "ok") == "ok"
            assert admission.metrics()["failed"] == 1

    def test_sheds_when_queue_full(self):
        gate = threading.Event()
        admission = AdmissionController(max_workers=1, max_queue_depth=2)
        try:
            blocker = admission.submit("s1", gate.wait)
            deadline = time.monotonic() + 5
            while (admission.metrics()["active"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)  # wait for the worker to pick it up
            jobs = [admission.submit("s1", lambda: None) for _ in range(2)]
            with pytest.raises(ServerOverloaded) as excinfo:
                admission.submit("s1", lambda: None)
            assert excinfo.value.limit == 2
            assert admission.shed_count == 1
            gate.set()
            blocker.result(timeout=5)
            for job in jobs:
                job.result(timeout=5)
        finally:
            gate.set()
            admission.shutdown()

    def test_fair_round_robin_across_sessions(self):
        """With one worker, a burst from session A queued before a lone
        job from session B must not starve B: the rotation alternates, so
        B runs after at most one more A job."""
        gate = threading.Event()
        order: list[str] = []
        admission = AdmissionController(max_workers=1, max_queue_depth=32)
        try:
            blocker = admission.submit("warm", gate.wait)
            deadline = time.monotonic() + 5
            while (admission.metrics()["active"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            a_jobs = [admission.submit("a", lambda i=i: order.append(f"a{i}"))
                      for i in range(4)]
            b_job = admission.submit("b", lambda: order.append("b0"))
            gate.set()
            blocker.result(timeout=5)
            for job in a_jobs:
                job.result(timeout=5)
            b_job.result(timeout=5)
            assert order.index("b0") <= 1
        finally:
            gate.set()
            admission.shutdown()

    def test_shutdown_fails_queued_jobs(self):
        gate = threading.Event()
        admission = AdmissionController(max_workers=1, max_queue_depth=8)
        blocker = admission.submit("s1", gate.wait)
        deadline = time.monotonic() + 5
        while (admission.metrics()["active"] == 0
               and time.monotonic() < deadline):
            time.sleep(0.01)  # the worker must hold the blocker first
        queued = admission.submit("s1", lambda: "never")
        admission.shutdown(wait=False)
        with pytest.raises(ServerError):
            queued.result(timeout=5)
        gate.set()
        blocker.result(timeout=5)
        with pytest.raises(ServerError):
            admission.submit("s1", lambda: None)

    def test_metrics_counts(self):
        with AdmissionController(max_workers=2) as admission:
            for _ in range(5):
                admission.run("s1", lambda: None)
            metrics = admission.metrics()
            assert metrics["completed"] == 5
            assert metrics["queue_depth"] == 0
            assert metrics["shed"] == 0


class TestResourcePool:
    def test_unmetered_pool_grants_everything(self):
        pool = ResourcePool()
        with pool.lease(memory_rows=10**9, row_budget=10**9) as lease:
            assert lease.memory_rows == 10**9

    def test_lease_and_release_roundtrip(self):
        pool = ResourcePool(memory_rows=100, row_budget=1000)
        lease = pool.lease(memory_rows=60, row_budget=600)
        assert pool.available() == {"memory_rows": 40, "row_budget": 400}
        lease.release()
        assert pool.available() == {"memory_rows": 100, "row_budget": 1000}
        lease.release()  # idempotent
        assert pool.available() == {"memory_rows": 100, "row_budget": 1000}

    def test_requests_clamped_to_pool_total(self):
        pool = ResourcePool(memory_rows=50)
        with pool.lease(memory_rows=500) as lease:
            assert lease.memory_rows == 50

    def test_exhausted_pool_sheds_after_timeout(self):
        pool = ResourcePool(memory_rows=10)
        holder = pool.lease(memory_rows=10)
        with pytest.raises(ServerOverloaded):
            pool.lease(memory_rows=10, timeout=0.05)
        holder.release()
        with pool.lease(memory_rows=10, timeout=0.05):
            pass  # grantable again once released

    def test_waiter_wakes_on_release(self):
        pool = ResourcePool(row_budget=100)
        holder = pool.lease(row_budget=100)
        acquired = threading.Event()

        def waiter() -> None:
            with pool.lease(row_budget=50, timeout=5):
                acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        holder.release()
        thread.join(timeout=5)
        assert acquired.is_set()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ResourcePool(memory_rows=0)
        with pytest.raises(ValueError):
            AdmissionController(max_workers=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
