"""Zone-map soundness: pruning may never skip a qualifying chunk.

The property under test is the contract of ``compile_zone_filter``: when
the compiled test says *skip*, no row in that chunk can make the
conjunct TRUE under SQL three-valued semantics.  A brute-force row
oracle checks every pruned chunk over hypothesis-generated values,
operators, literals, parameters and chunk sizes — including mixed-type
columns (where min/max are unavailable and only NULL-count pruning
remains legal).  Regressions pin the write path: zone maps seen by a
query always describe the *current* version after ``install_many``.
"""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FULL, Database, DataType
from repro.algebra.columns import Column
from repro.algebra.scalar import (Comparison, ColumnRef, IsNull, Literal,
                                  Parameter, parameter_slot)
from repro.storage import ColumnStore
from repro.storage.columnar import compile_zone_filter, compute_zone

OPS = {"=": operator.eq, "<>": operator.ne, "<": operator.lt,
       "<=": operator.le, ">": operator.gt, ">=": operator.ge}


def satisfies(value, op, literal):
    """Row-level truth of ``value op literal`` under SQL semantics."""
    if value is None or literal is None:
        return False  # NULL comparison is never TRUE
    try:
        return bool(OPS[op](value, literal))
    except TypeError:
        return False  # incomparable operands cannot satisfy


cell = st.one_of(st.none(), st.integers(-5, 5),
                 st.floats(allow_nan=False, allow_infinity=False,
                           width=16),
                 st.sampled_from(["a", "m", "z"]))
values_strategy = st.lists(cell, min_size=1, max_size=30)
literal_strategy = st.one_of(st.none(), st.integers(-5, 5),
                             st.sampled_from(["a", "z"]))


def store_of(values, chunk_rows) -> tuple[ColumnStore, Column]:
    store = ColumnStore(1, chunk_rows=chunk_rows)
    for value in values:
        store.append((value,))
    return store, Column("a", DataType.INTEGER)


@settings(max_examples=200, deadline=None, database=None)
@given(values=values_strategy, op=st.sampled_from(sorted(OPS)),
       literal=literal_strategy, chunk_rows=st.integers(1, 8),
       mirrored=st.booleans())
def test_pruned_chunks_hold_no_qualifying_row(values, op, literal,
                                              chunk_rows, mirrored):
    store, column = store_of(values, chunk_rows)
    if mirrored:  # literal op column — compile must mirror the operator
        conjunct = Comparison(op, Literal(literal), ColumnRef(column))
        oracle_op = {"=": "=", "<>": "<>", "<": ">", "<=": ">=",
                     ">": "<", ">=": "<="}[op]
    else:
        conjunct = Comparison(op, ColumnRef(column), Literal(literal))
        oracle_op = op
    prune = compile_zone_filter(conjunct, {column.cid: 0})
    assert prune is not None
    for unit in store.scan_units():
        if prune(unit.zones, {}):
            assert not any(satisfies(v, oracle_op, literal)
                           for v in unit.columns()[0]), \
                f"pruned a chunk with a qualifying row: {op} {literal!r}"


@settings(max_examples=100, deadline=None, database=None)
@given(values=values_strategy, chunk_rows=st.integers(1, 8),
       negated=st.booleans())
def test_null_pruning_matches_brute_force(values, chunk_rows, negated):
    store, column = store_of(values, chunk_rows)
    prune = compile_zone_filter(IsNull(ColumnRef(column), negated),
                                {column.cid: 0})
    assert prune is not None
    for unit in store.scan_units():
        if prune(unit.zones, {}):
            qualifying = [v for v in unit.columns()[0]
                          if (v is not None) == negated]
            assert not qualifying


@settings(max_examples=100, deadline=None, database=None)
@given(values=values_strategy, op=st.sampled_from(sorted(OPS)),
       literal=literal_strategy, chunk_rows=st.integers(1, 8))
def test_parameter_pruning_resolves_at_run_time(values, op, literal,
                                                chunk_rows):
    store, column = store_of(values, chunk_rows)
    conjunct = Comparison(op, ColumnRef(column), Parameter(0))
    prune = compile_zone_filter(conjunct, {column.cid: 0})
    assert prune is not None
    params = {parameter_slot(0): literal}
    for unit in store.scan_units():
        if prune(unit.zones, params):
            assert not any(satisfies(v, op, literal)
                           for v in unit.columns()[0])
    # Plan-time compilation must refuse parameters: their value is
    # unknown, so no cost discount may depend on them.
    assert compile_zone_filter(conjunct, {column.cid: 0},
                               allow_params=False) is None


class TestPruningRules:
    """Pinned corner cases of the skip rules."""

    def column(self) -> Column:
        return Column("a", DataType.INTEGER)

    def compiled(self, conjunct, column):
        prune = compile_zone_filter(conjunct, {column.cid: 0})
        assert prune is not None
        return prune

    def test_null_literal_always_prunes(self):
        column = self.column()
        prune = self.compiled(
            Comparison("=", ColumnRef(column), Literal(None)), column)
        assert prune((compute_zone([1, 2, 3]),), {})

    def test_all_null_chunk_always_prunes(self):
        column = self.column()
        prune = self.compiled(
            Comparison("<", ColumnRef(column), Literal(99)), column)
        assert prune((compute_zone([None, None]),), {})

    def test_unavailable_min_max_never_prunes(self):
        column = self.column()
        prune = self.compiled(
            Comparison("=", ColumnRef(column), Literal(99)), column)
        assert not prune((compute_zone([1, "a"]),), {})

    def test_cross_type_comparison_never_prunes(self):
        column = self.column()
        prune = self.compiled(
            Comparison(">", ColumnRef(column), Literal(0)), column)
        assert not prune((compute_zone(["a", "z"]),), {})

    def test_not_equal_prunes_only_constant_chunks(self):
        column = self.column()
        prune = self.compiled(
            Comparison("<>", ColumnRef(column), Literal(7)), column)
        assert prune((compute_zone([7, 7, 7]),), {})
        assert not prune((compute_zone([7, 8]),), {})
        # NULL rows never satisfy <>, so a constant-plus-NULLs chunk
        # still prunes.
        assert prune((compute_zone([7, None, 7]),), {})

    def test_column_vs_column_is_not_prunable(self):
        column = self.column()
        other = Column("b", DataType.INTEGER)
        conjunct = Comparison("=", ColumnRef(column), ColumnRef(other))
        assert compile_zone_filter(
            conjunct, {column.cid: 0, other.cid: 1}) is None


# -- write-path regressions -----------------------------------------------------

def make_db(chunk_rows=4) -> Database:
    db = Database(chunk_rows=chunk_rows)
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.INTEGER, True)],
                    primary_key=("a",))
    db.insert("t", [(i, i % 3) for i in range(8)])
    return db


def test_zone_maps_track_installs():
    """A query must never consult stale zone maps: after ``install_many``
    publishes a version with new rows, a previously all-pruned filter
    must see them."""
    db = make_db()
    sql = "select t.a from t where t.a > 100"
    assert db.execute(sql, FULL, engine="vectorized").rows == []
    db.insert("t", [(200, 0)])  # clone → append → install_many
    assert db.execute(sql, FULL, engine="vectorized").rows == [(200,)]
    db.insert("t", [(300, 1), (400, 2)])
    assert db.execute(sql, FULL, engine="vectorized").rows \
        == [(200,), (300,), (400,)]


def test_tail_zone_cache_invalidated_by_append():
    db = make_db(chunk_rows=100)  # everything stays in the tail
    sql = "select t.a from t where t.a > 100"
    assert db.execute(sql, FULL, engine="vectorized").rows == []
    db.insert("t", [(200, 0)])
    assert db.execute(sql, FULL, engine="vectorized").rows == [(200,)]


def test_reseal_recomputes_zones():
    db = make_db()
    table = db.storage.get("t")
    table.force_encodings(["rle", "dict"])
    for unit in table.scan_units():
        lo, hi = unit.zones[0].min, unit.zones[0].max
        values = unit.columns()[0]
        assert lo == min(values) and hi == max(values)


@pytest.mark.parametrize("engine", ["tuple", "vectorized"])
def test_pruning_is_invisible_to_results(engine):
    db = make_db(chunk_rows=2)
    for sql, expected in [
        ("select t.a from t where t.a >= 6", [(6,), (7,)]),
        ("select t.a from t where t.a < 2", [(0,), (1,)]),
        ("select t.a from t where t.a = 3", [(3,)]),
        ("select count(*) from t where t.b is not null", [(8,)]),
    ]:
        assert db.execute(sql, FULL, engine=engine).rows == expected


class TestChunksSkippedCounter:
    """`EXPLAIN ANALYZE` surfaces zone-map pruning per scan node."""

    def scan_node(self, tree):
        if tree["op"].startswith("TableScan"):
            return tree
        for child in tree["children"]:
            found = self.scan_node(child)
            if found is not None:
                return found
        return None

    def test_pruned_scan_reports_chunks_skipped(self):
        db = make_db(chunk_rows=2)  # 8 rows -> 4 chunks
        payload = db.explain("select t.a from t where t.a >= 6", FULL,
                             analyze=True, format="dict",
                             engine="vectorized")
        scan = self.scan_node(payload["plan"])
        assert scan is not None
        assert scan["chunks_skipped"] == 3
        # Skipped rows are still charged to the scan's actual count.
        assert scan["actual_rows"] == 8
        rendered = db.explain("select t.a from t where t.a >= 6", FULL,
                              analyze=True, engine="vectorized")
        assert "skipped=3" in rendered

    def test_unpruned_scan_keeps_frozen_key_set(self):
        db = make_db(chunk_rows=2)
        payload = db.explain("select t.a from t where t.b >= 0", FULL,
                             analyze=True, format="dict",
                             engine="vectorized")
        scan = self.scan_node(payload["plan"])
        assert scan is not None
        # No pruning: the wire-frozen key set must be exactly intact.
        assert set(scan.keys()) == {"op", "estimated_rows", "actual_rows",
                                    "q_error", "children"}
