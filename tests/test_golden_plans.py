"""Golden plan snapshots: the optimizer's output, pinned.

Each golden file under ``tests/goldens/`` holds the
:func:`~repro.algebra.printer.plan_signature` of the FULL-mode physical
plan for one query — TPC-H Q2 and Q17 (the paper's two running
examples) and the three Figure 4 formulations of the Section 1.1
query.  Signatures normalize column ids to first-appearance ordinals,
so they are stable across processes and sessions; the plans themselves
are engine-independent (the tuple and vectorized engines compile the
same physical tree).

An intentional optimizer change updates the snapshots with::

    pytest tests/test_golden_plans.py --update-goldens

and the resulting diff documents exactly how the plans moved.  The
three Figure 4 formulations must additionally collapse to *one*
signature (paper Section 1.2, syntax independence).
"""

import pathlib
import re

import pytest

from repro import FULL, Database
from repro.algebra.printer import plan_signature
from repro.tpch import (QUERIES, create_tpch_schema, generate_tpch,
                        paper_example_formulations)

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def _slug(name: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")


def _cases() -> dict[str, str]:
    cases = {"tpch_q2": QUERIES["Q2"], "tpch_q17": QUERIES["Q17"]}
    for name, sql in paper_example_formulations().items():
        cases[f"fig4_{_slug(name)}"] = sql
    return cases


CASES = _cases()


@pytest.fixture(scope="module")
def golden_db() -> Database:
    # Deterministic instance: same seed, same stats, same plans.
    db = Database()
    create_tpch_schema(db)
    generate_tpch(db, scale_factor=0.001, seed=7)
    return db


@pytest.mark.parametrize("name", sorted(CASES))
def test_plan_matches_golden(golden_db, name, request):
    signature = plan_signature(golden_db.plan(CASES[name], FULL)) + "\n"
    path = GOLDEN_DIR / f"{name}.plan"
    if request.config.getoption("--update-goldens"):
        path.write_text(signature)
    assert path.exists(), \
        f"missing golden {path.name}; run pytest --update-goldens"
    expected = path.read_text()
    assert signature == expected, \
        f"plan for {name} drifted from {path.name}; if intentional, " \
        f"rerun with --update-goldens and review the diff"


def test_figure4_formulations_converge(golden_db):
    """Section 1.2: all three formulations produce the same strategy.

    Convergence is up to plan *skeleton* — cosmetic pass-through
    ComputeScalar wrappers differ between formulations (as in
    test_syntax_independence), so the full signatures are pinned per
    formulation by the golden files instead.
    """

    def skeleton(plan) -> str:
        text = re.sub(r"#\d+", "#x", repr(plan))
        return "\n".join(
            line.strip() for line in text.splitlines()
            if not line.strip().startswith("ComputeScalar("))

    skeletons = {
        name: skeleton(golden_db.plan(sql, FULL))
        for name, sql in paper_example_formulations().items()}
    assert len(set(skeletons.values())) == 1, skeletons


def test_goldens_have_no_strays():
    """Every checked-in golden corresponds to a known case."""
    known = {f"{name}.plan" for name in CASES}
    present = {p.name for p in GOLDEN_DIR.glob("*.plan")}
    assert present <= known, present - known
