"""Binder edge cases: grouped-context validation, ORDER BY resolution,
scope shadowing."""

import pytest

from repro import Database, DataType, FULL, NAIVE
from repro.binder import Binder
from repro.errors import BindError
from repro.sql import parse


@pytest.fixture
def binder(mini_catalog):
    return Binder(mini_catalog)


class TestGroupedContext:
    def test_subquery_on_nongrouped_column_rejected(self, binder):
        with pytest.raises(BindError, match="neither grouped"):
            binder.bind(parse("""
                select o_custkey from orders group by o_custkey
                having exists (select * from lineitem
                               where l_orderkey = o_orderkey)"""))

    def test_subquery_on_grouped_column_allowed(self, binder):
        bound = binder.bind(parse("""
            select o_custkey from orders group by o_custkey
            having exists (select * from customer
                           where c_custkey = o_custkey)"""))
        assert bound.names == ["o_custkey"]

    def test_case_over_aggregates(self, binder):
        bound = binder.bind(parse("""
            select o_custkey,
                   case when sum(o_totalprice) > 100.0 then 'big'
                        else 'small' end
            from orders group by o_custkey"""))
        assert len(bound.names) == 2

    def test_between_over_aggregate(self, binder):
        bound = binder.bind(parse("""
            select o_custkey from orders group by o_custkey
            having sum(o_totalprice) between 1.0 and 100.0"""))
        assert bound.names == ["o_custkey"]

    def test_arithmetic_on_group_column(self, binder):
        bound = binder.bind(parse("""
            select o_custkey + 1, count(*) from orders
            group by o_custkey"""))
        assert len(bound.names) == 2


class TestOrderByResolution:
    def test_ambiguous_alias_rejected(self, binder):
        with pytest.raises(BindError, match="ambiguous ORDER BY"):
            binder.bind(parse(
                "select c_custkey as x, c_nationkey as x from customer "
                "order by x"))

    def test_ordinal_out_of_range(self, binder):
        with pytest.raises(BindError, match="out of range"):
            binder.bind(parse("select c_custkey from customer order by 2"))

    def test_structural_match_of_expression(self, binder):
        bound = binder.bind(parse(
            "select c_acctbal * 2 from customer order by c_acctbal * 2"))
        assert bound.names == ["col1"]

    def test_order_by_hidden_column_trimmed(self, binder):
        bound = binder.bind(parse(
            "select c_name from customer order by c_acctbal"))
        assert [c.name for c in bound.columns] == ["c_name"]

    def test_distinct_order_by_unselected_rejected(self, binder):
        with pytest.raises(BindError, match="DISTINCT"):
            binder.bind(parse(
                "select distinct c_name from customer order by c_acctbal"))


class TestScopes:
    def test_inner_scope_shadows_outer(self):
        """A subquery using the same table name resolves its own columns
        before the outer ones."""
        db = Database()
        db.create_table("t", [("k", DataType.INTEGER, False),
                              ("v", DataType.INTEGER, False)],
                        primary_key=("k",))
        db.insert("t", [(1, 10), (2, 20)])
        sql = """select k from t
                 where v = (select max(v) from t)"""
        assert db.execute(sql, FULL).rows == [(2,)]
        assert db.execute(sql, NAIVE).rows == [(2,)]

    def test_qualified_outer_reference(self):
        db = Database()
        db.create_table("t", [("k", DataType.INTEGER, False),
                              ("v", DataType.INTEGER, False)],
                        primary_key=("k",))
        db.insert("t", [(1, 10), (2, 20)])
        sql = """select outer_t.k from t outer_t
                 where outer_t.v < (select sum(v) from t
                                    where t.k <> outer_t.k)"""
        # k=1: 10 < 20 ✓;  k=2: 20 < 10 ✗
        for mode in (FULL, NAIVE):
            assert db.execute(sql, mode).rows == [(1,)]
