"""Unit tests for the physical executor, one per operator, plus a
hypothesis differential between the compiled expression evaluator and the
naive interpreter's scalar evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (AggregateCall, AggregateFunction, Arithmetic,
                           And, Case, Column, ColumnRef, Comparison,
                           DataType, InList, IsNull, JoinKind, Like,
                           Literal, Negate, Not, Or, equals)
from repro.catalog import ColumnDef, TableDef
from repro.errors import ExecutionError, SubqueryReturnedMultipleRows
from repro.executor.expressions import build_layout, compile_expr
from repro.executor.naive import NaiveInterpreter
from repro.executor.physical import ExecutionContext, PhysicalExecutor
from repro.physical.plan import (PConstantScan, PDifference, PFilter,
                                 PHashAggregate, PHashJoin, PIndexSeek,
                                 PMax1row, PNestedLoopsJoin, PNLApply,
                                 PProject, PScalarAggregate, PSegmentApply,
                                 PSegmentRef, PSort, PStreamAggregate,
                                 PTableScan, PTop, PUnionAll)
from repro.storage import Storage


def make_storage():
    storage = Storage()
    table = storage.create(TableDef(
        "t",
        [ColumnDef("id", DataType.INTEGER, False),
         ColumnDef("grp", DataType.INTEGER, False),
         ColumnDef("val", DataType.INTEGER, True)],
        primary_key=("id",)))
    table.insert_many([
        (1, 10, 5), (2, 10, None), (3, 20, 7), (4, 20, 3), (5, 30, None)])
    return storage


def cols():
    return (Column("id", DataType.INTEGER, False),
            Column("grp", DataType.INTEGER, False),
            Column("val", DataType.INTEGER, True))


class TestScansAndFilters:
    def test_table_scan(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        plan = PTableScan("t", [cid, cgrp, cval])
        rows = PhysicalExecutor(storage).run(plan)
        assert len(rows) == 5

    def test_constant_scan(self):
        c = Column("x", DataType.INTEGER, False)
        plan = PConstantScan([c], [(1,), (2,)])
        assert PhysicalExecutor(Storage()).run(plan) == [(1,), (2,)]

    def test_filter_three_valued(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        plan = PFilter(scan, Comparison(">", ColumnRef(cval), Literal(4)))
        rows = PhysicalExecutor(storage).run(plan)
        # NULL val rows are dropped (UNKNOWN ≠ TRUE)
        assert sorted(r[0] for r in rows) == [1, 3]

    def test_project_computes(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        doubled = Column("d", DataType.INTEGER)
        plan = PProject(scan, [(doubled, Arithmetic(
            "*", ColumnRef(cid), Literal(2)))])
        rows = PhysicalExecutor(storage).run(plan)
        assert sorted(r[0] for r in rows) == [2, 4, 6, 8, 10]

    def test_index_seek_on_pk(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        plan = PIndexSeek("t", [cid, cgrp, cval], [cid], [Literal(3)])
        rows = PhysicalExecutor(storage).run(plan)
        assert rows == [(3, 20, 7)]

    def test_index_seek_missing_index(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        plan = PIndexSeek("t", [cid, cgrp, cval], [cgrp], [Literal(10)])
        with pytest.raises(ExecutionError, match="no index"):
            PhysicalExecutor(storage).run(plan)

    def test_index_seek_residual(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        plan = PIndexSeek("t", [cid, cgrp, cval], [cid], [Literal(2)],
                          residual=IsNull(ColumnRef(cval)))
        assert PhysicalExecutor(storage).run(plan) == [(2, 10, None)]


class TestJoins:
    def _scan_pair(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        c2 = (Column("id", DataType.INTEGER, False),
              Column("grp", DataType.INTEGER, False),
              Column("val", DataType.INTEGER, True))
        left = PTableScan("t", [cid, cgrp, cval])
        right = PTableScan("t", list(c2))
        return storage, left, right, (cid, cgrp, cval), c2

    def test_hash_join_inner(self):
        storage, left, right, (cid, cgrp, cval), c2 = self._scan_pair()
        plan = PHashJoin(JoinKind.INNER, left, right,
                         [ColumnRef(cgrp)], [ColumnRef(c2[1])])
        rows = PhysicalExecutor(storage).run(plan)
        # groups of sizes 2,2,1 → 4+4+1 pairs
        assert len(rows) == 9

    def test_hash_join_null_keys_never_match(self):
        storage, left, right, (cid, cgrp, cval), c2 = self._scan_pair()
        plan = PHashJoin(JoinKind.INNER, left, right,
                         [ColumnRef(cval)], [ColumnRef(c2[2])])
        rows = PhysicalExecutor(storage).run(plan)
        # non-null vals are unique → each matches itself only
        assert len(rows) == 3

    def test_hash_join_left_outer_pads(self):
        storage, left, right, (cid, cgrp, cval), c2 = self._scan_pair()
        plan = PHashJoin(JoinKind.LEFT_OUTER, left, right,
                         [ColumnRef(cval)], [ColumnRef(c2[2])])
        rows = PhysicalExecutor(storage).run(plan)
        padded = [r for r in rows if r[3] is None]
        assert len(rows) == 5 and len(padded) == 2

    def test_hash_join_semi_anti(self):
        storage, left, right, (cid, cgrp, cval), c2 = self._scan_pair()
        semi = PHashJoin(JoinKind.LEFT_SEMI, left, right,
                         [ColumnRef(cval)], [ColumnRef(c2[2])])
        anti = PHashJoin(JoinKind.LEFT_ANTI, left, right,
                         [ColumnRef(cval)], [ColumnRef(c2[2])])
        executor = PhysicalExecutor(storage)
        assert len(executor.run(semi)) == 3
        assert len(executor.run(anti)) == 2
        assert len(executor.run(semi)[0]) == 3  # left schema only

    def test_hash_join_residual(self):
        storage, left, right, (cid, cgrp, cval), c2 = self._scan_pair()
        plan = PHashJoin(JoinKind.INNER, left, right,
                         [ColumnRef(cgrp)], [ColumnRef(c2[1])],
                         residual=Comparison("<", ColumnRef(cid),
                                             ColumnRef(c2[0])))
        rows = PhysicalExecutor(storage).run(plan)
        assert all(r[0] < r[3] for r in rows)

    def test_nested_loops_non_equi(self):
        storage, left, right, (cid, cgrp, cval), c2 = self._scan_pair()
        plan = PNestedLoopsJoin(JoinKind.INNER, left, right,
                                Comparison("<", ColumnRef(cid),
                                           ColumnRef(c2[0])))
        rows = PhysicalExecutor(storage).run(plan)
        assert len(rows) == 10  # C(5,2)

    def test_nl_apply_binds_parameters(self):
        storage, left, right, (cid, cgrp, cval), c2 = self._scan_pair()
        # inner side: filter on the OUTER row's id (a parameter)
        inner = PFilter(right, Comparison("=", ColumnRef(c2[0]),
                                          ColumnRef(cid)))
        plan = PNLApply(JoinKind.INNER, left, inner)
        rows = PhysicalExecutor(storage).run(plan)
        assert len(rows) == 5
        assert all(r[0] == r[3] for r in rows)

    def test_nl_apply_left_outer_guard(self):
        storage, left, right, (cid, cgrp, cval), c2 = self._scan_pair()
        inner = PFilter(right, Comparison("=", ColumnRef(c2[0]),
                                          ColumnRef(cid)))
        guard = Comparison("<", ColumnRef(cid), Literal(3))
        plan = PNLApply(JoinKind.LEFT_OUTER, left, inner, guard=guard)
        rows = PhysicalExecutor(storage).run(plan)
        assert len(rows) == 5
        matched = [r for r in rows if r[3] is not None]
        assert sorted(r[0] for r in matched) == [1, 2]  # guard passed only


class TestAggregation:
    def test_scalar_aggregate(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        out = Column("s", DataType.INTEGER)
        cnt = Column("c", DataType.INTEGER)
        plan = PScalarAggregate(scan, [
            (out, AggregateCall(AggregateFunction.SUM, ColumnRef(cval))),
            (cnt, AggregateCall(AggregateFunction.COUNT_STAR))])
        assert PhysicalExecutor(storage).run(plan) == [(15, 5)]

    def test_scalar_aggregate_empty_input(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        filtered = PFilter(scan, Literal(False))
        out = Column("s", DataType.INTEGER)
        cnt = Column("c", DataType.INTEGER)
        plan = PScalarAggregate(filtered, [
            (out, AggregateCall(AggregateFunction.SUM, ColumnRef(cval))),
            (cnt, AggregateCall(AggregateFunction.COUNT_STAR))])
        assert PhysicalExecutor(storage).run(plan) == [(None, 0)]

    def test_hash_aggregate_groups(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        out = Column("s", DataType.INTEGER)
        plan = PHashAggregate(scan, [cgrp], [
            (out, AggregateCall(AggregateFunction.SUM, ColumnRef(cval)))])
        rows = dict(PhysicalExecutor(storage).run(plan))
        assert rows == {10: 5, 20: 10, 30: None}

    def test_stream_aggregate_matches_hash(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        out = Column("s", DataType.INTEGER)
        agg = [(out, AggregateCall(AggregateFunction.SUM, ColumnRef(cval)))]
        hashed = PHashAggregate(scan, [cgrp], agg)
        streamed = PStreamAggregate(
            PSort(scan, [(ColumnRef(cgrp), True)]), [cgrp], agg)
        executor = PhysicalExecutor(storage)
        assert sorted(executor.run(hashed)) == sorted(executor.run(streamed))

    def test_stream_aggregate_empty(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PFilter(PTableScan("t", [cid, cgrp, cval]), Literal(False))
        out = Column("s", DataType.INTEGER)
        plan = PStreamAggregate(
            PSort(scan, [(ColumnRef(cgrp), True)]), [cgrp],
            [(out, AggregateCall(AggregateFunction.SUM, ColumnRef(cval)))])
        assert PhysicalExecutor(storage).run(plan) == []

    def test_distinct_aggregate(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        out = Column("c", DataType.INTEGER)
        plan = PScalarAggregate(scan, [
            (out, AggregateCall(AggregateFunction.COUNT, ColumnRef(cgrp),
                                distinct=True))])
        assert PhysicalExecutor(storage).run(plan) == [(3,)]


class TestMiscOperators:
    def test_sort_and_top(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        plan = PTop(PSort(scan, [(ColumnRef(cval), False)]), 2)
        rows = PhysicalExecutor(storage).run(plan)
        assert [r[2] for r in rows] == [7, 5]

    def test_sort_nulls_first_ascending(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        plan = PSort(scan, [(ColumnRef(cval), True)])
        rows = PhysicalExecutor(storage).run(plan)
        assert rows[0][2] is None and rows[1][2] is None

    def test_max1row(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        single = PMax1row(PFilter(scan, equals(cid, Literal(1))))
        assert len(PhysicalExecutor(storage).run(single)) == 1
        multi = PMax1row(scan)
        with pytest.raises(SubqueryReturnedMultipleRows):
            PhysicalExecutor(storage).run(multi)

    def test_union_all_remaps(self):
        c1 = Column("x", DataType.INTEGER, False)
        c2 = Column("y", DataType.INTEGER, False)
        out = Column("z", DataType.INTEGER, False)
        a = PConstantScan([c1], [(1,)])
        b = PConstantScan([c2], [(2,), (3,)])
        plan = PUnionAll([a, b], [out], [[c1], [c2]])
        assert sorted(PhysicalExecutor(Storage()).run(plan)) == \
            [(1,), (2,), (3,)]

    def test_difference_bag_semantics(self):
        c1 = Column("x", DataType.INTEGER, False)
        c2 = Column("y", DataType.INTEGER, False)
        out = Column("z", DataType.INTEGER, False)
        a = PConstantScan([c1], [(1,), (1,), (2,)])
        b = PConstantScan([c2], [(1,)])
        plan = PDifference(a, b, [out], [c1], [c2])
        assert sorted(PhysicalExecutor(Storage()).run(plan)) == \
            [(1,), (2,)]

    def test_segment_apply_per_segment(self):
        storage = make_storage()
        cid, cgrp, cval = cols()
        scan = PTableScan("t", [cid, cgrp, cval])
        mirrors = [c.fresh_copy() for c in (cid, cgrp, cval)]
        ref = PSegmentRef(mirrors)
        out = Column("c", DataType.INTEGER)
        inner = PScalarAggregate(ref, [
            (out, AggregateCall(AggregateFunction.COUNT_STAR))])
        plan = PSegmentApply(scan, inner, [cgrp], mirrors)
        rows = dict(PhysicalExecutor(storage).run(plan))
        assert rows == {10: 2, 20: 2, 30: 1}

    def test_segment_ref_outside_raises(self):
        mirrors = [Column("m", DataType.INTEGER)]
        plan = PSegmentRef(mirrors)
        with pytest.raises(ExecutionError, match="segment"):
            PhysicalExecutor(Storage()).run(plan)


# ---------------------------------------------------------------------------
# Compiled expressions vs. the naive interpreter's evaluator
# ---------------------------------------------------------------------------

values3 = st.one_of(st.none(), st.integers(-3, 3))


def expr_strategy(columns):
    refs = st.sampled_from([ColumnRef(c) for c in columns])
    literals = st.builds(Literal, st.one_of(st.integers(-3, 3),
                                            st.booleans()))
    base = st.one_of(refs, literals)

    def extend(children):
        ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
        arith = st.sampled_from(["+", "-", "*"])
        return st.one_of(
            st.builds(lambda o, l, r: Comparison(o, l, r), ops,
                      refs, refs),
            st.builds(lambda o, l, r: Arithmetic(o, l, r), arith,
                      refs, refs),
            st.builds(lambda a: IsNull(a), refs),
            st.builds(lambda a: Negate(a), refs),
            st.builds(lambda c, v, e: Case([(c, v)], e),
                      children.filter(_is_boolean), refs, refs),
            st.builds(lambda a, b: And([a, b]),
                      children.filter(_is_boolean),
                      children.filter(_is_boolean)),
            st.builds(lambda a, b: Or([a, b]),
                      children.filter(_is_boolean),
                      children.filter(_is_boolean)),
            st.builds(lambda a: Not(a), children.filter(_is_boolean)),
            st.builds(lambda a, vs: InList(a, vs),
                      refs, st.lists(values3, min_size=1, max_size=3)),
        )

    return st.recursive(
        st.builds(lambda c: Comparison("=", ColumnRef(columns[0]), c),
                  literals),
        extend, max_leaves=8)


def _is_boolean(expr):
    return expr.dtype is DataType.BOOLEAN


class TestExpressionCompilerDifferential:
    @settings(max_examples=150, deadline=None)
    @given(data=st.data(), row=st.tuples(values3, values3, values3))
    def test_compiled_matches_naive(self, data, row):
        columns = [Column(n, DataType.INTEGER, True) for n in "abc"]
        expr = data.draw(expr_strategy(columns))
        layout = build_layout(columns)
        compiled = compile_expr(expr, layout)
        env = {c.cid: v for c, v in zip(columns, row)}
        naive = NaiveInterpreter(lambda name: [])
        assert compiled(tuple(row), {}) == naive.scalar(expr, env)
