"""Views: named queries expanded at bind time.

A view containing a correlated subquery must flatten exactly like the
inlined query — views ride the whole normalization pipeline.
"""

from collections import Counter

import pytest

from repro import CORRELATED, FULL, NAIVE, Database, DataType
from repro.errors import BindError, CatalogError


@pytest.fixture
def db():
    database = Database()
    database.create_table("customer",
                          [("c_custkey", DataType.INTEGER, False),
                           ("c_name", DataType.VARCHAR, False),
                           ("c_acctbal", DataType.FLOAT, False)],
                          primary_key=("c_custkey",))
    database.create_table("orders",
                          [("o_orderkey", DataType.INTEGER, False),
                           ("o_custkey", DataType.INTEGER, False),
                           ("o_totalprice", DataType.FLOAT, False)],
                          primary_key=("o_orderkey",))
    database.insert("customer", [(1, "alice", 10.0), (2, "bob", 20.0),
                                 (3, "carol", 30.0)])
    database.insert("orders", [(10, 1, 700000.0), (11, 1, 450000.0),
                               (12, 2, 5.0)])
    return database


class TestViews:
    def test_simple_view(self, db):
        db.create_view("rich", "select c_custkey, c_name from customer "
                               "where c_acctbal > 15.0")
        result = db.execute("select c_name from rich order by c_name")
        assert result.rows == [("bob",), ("carol",)]

    def test_view_with_aggregate(self, db):
        db.create_view("totals", """
            select o_custkey as custkey, sum(o_totalprice) as total
            from orders group by o_custkey""")
        result = db.execute("""
            select c_name from customer, totals
            where custkey = c_custkey and total > 1000000.0""")
        assert result.rows == [("alice",)]

    def test_view_with_correlated_subquery_flattens(self, db):
        db.create_view("big_spenders", """
            select c_custkey from customer
            where 1000000 < (select sum(o_totalprice) from orders
                             where o_custkey = c_custkey)""")
        for mode in (NAIVE, FULL, CORRELATED):
            assert db.execute("select * from big_spenders", mode).rows == \
                [(1,)]
        # fully decorrelated: no Apply in the optimized plan
        from repro.core.normalize import classify_query
        assert classify_query(db, "select * from big_spenders") == []

    def test_view_over_view(self, db):
        db.create_view("v1", "select c_custkey as k, c_acctbal as bal "
                             "from customer")
        db.create_view("v2", "select k from v1 where bal > 15.0")
        assert sorted(db.execute("select * from v2").rows) == [(2,), (3,)]

    def test_view_alias_and_self_join(self, db):
        db.create_view("v", "select c_custkey as k from customer")
        result = db.execute("""
            select a.k, b.k from v a, v b where a.k < b.k""")
        assert len(result.rows) == 3

    def test_recursive_view_rejected(self, db):
        db.catalog.create_view("loop_v", "select * from loop_v")
        with pytest.raises(BindError, match="recursive"):
            db.execute("select * from loop_v")

    def test_mutually_recursive_views_rejected(self, db):
        db.catalog.create_view("va", "select * from vb")
        db.catalog.create_view("vb", "select * from va")
        with pytest.raises(BindError, match="recursive"):
            db.execute("select * from va")

    def test_invalid_definition_rejected_eagerly(self, db):
        with pytest.raises(BindError):
            db.create_view("bad", "select nonexistent from customer")

    def test_name_collision_with_table(self, db):
        with pytest.raises(CatalogError, match="table"):
            db.create_view("customer", "select 1 as one")

    def test_failed_create_view_leaves_no_partial_state(self, db):
        # Regression: a rejected definition must not register the view,
        # and the engine must keep executing normally afterwards.
        with pytest.raises(CatalogError):
            db.create_view("customer", "select 1 as one")
        assert not db.catalog.has_view("customer")
        with pytest.raises(BindError):
            db.create_view("bad", "select no_such_column from customer")
        assert not db.catalog.has_view("bad")
        assert len(db.execute("select c_custkey from customer").rows) == 3

    def test_view_usable_immediately_and_after_cache_warmup(self, db):
        # Regression for the shadowed module-level `parse` import in
        # Database.create_view: creating a view mid-session (with cached
        # plans live) must validate and register correctly.
        db.execute("select c_name from customer")  # warm the plan cache
        db.create_view("names", "select c_name from customer")
        result = db.execute("select * from names order by c_name")
        assert result.rows == [("alice",), ("bob",), ("carol",)]

    def test_table_collision_with_view(self, db):
        db.create_view("v", "select 1 as one")
        with pytest.raises(CatalogError, match="view"):
            db.create_table("v", [("x", DataType.INTEGER)])

    def test_duplicate_output_names_need_aliases(self, db):
        db.catalog.create_view(
            "dup", "select c_custkey, c_custkey from customer")
        with pytest.raises(BindError, match="duplicate"):
            db.execute("select * from dup")

    def test_drop_view(self, db):
        db.create_view("v", "select 1 as one")
        db.drop_view("v")
        from repro.errors import CatalogError as CE
        with pytest.raises(CE):
            db.execute("select * from v")

    def test_subquery_against_view(self, db):
        db.create_view("totals", """
            select o_custkey as custkey, sum(o_totalprice) as total
            from orders group by o_custkey""")
        sql = """select c_name from customer
                 where exists (select * from totals
                               where custkey = c_custkey)"""
        reference = db.execute(sql, NAIVE)
        assert Counter(db.execute(sql, FULL).rows) == \
            Counter(reference.rows)
