"""Explicit errors for the constructs the engine deliberately rejects."""

import pytest

from repro import Database, DataType, FULL
from repro.errors import PlanError, SqlSyntaxError


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", [("a", DataType.INTEGER, False),
                                ("b", DataType.INTEGER, False)],
                          primary_key=("a",))
    database.create_table("u", [("c", DataType.INTEGER, False)],
                          primary_key=("c",))
    database.insert("t", [(1, 10)])
    database.insert("u", [(1,)])
    return database


class TestRejectedConstructs:
    def test_subquery_in_outer_join_on_clause(self, db):
        with pytest.raises(PlanError, match="join predicate"):
            db.execute("""
                select a from t left outer join u
                on c = (select max(a) from t)""", FULL)

    def test_subquery_in_sort_key(self, db):
        with pytest.raises(PlanError, match="sort key"):
            db.execute("""
                select a from t
                order by (select max(c) from u)""", FULL)

    def test_right_join_hint(self):
        from repro.sql import parse
        with pytest.raises(SqlSyntaxError, match="LEFT OUTER"):
            parse("select 1 from t right join u on a = c")

    def test_window_style_syntax_rejected(self):
        from repro.sql import parse
        with pytest.raises(SqlSyntaxError):
            parse("select rank() over (order by a) from t")


class TestSupportedCornerCases:
    def test_aggregate_in_order_by_scalar_query(self, db):
        result = db.execute(
            "select sum(b) from t order by sum(b)", FULL)
        assert result.rows == [(10,)]

    def test_subquery_in_inner_join_on_clause(self, db):
        """INNER-join ON subqueries are supported via select-over-cross."""
        result = db.execute("""
            select a from t join u on c = (select min(a) from t)""", FULL)
        assert result.rows == [(1,)]

    def test_having_with_only_aggregate_reference(self, db):
        result = db.execute("""
            select count(*) from t having count(*) > 0""", FULL)
        assert result.rows == [(1,)]
