"""Differential-testing oracle across the three execution engines.

The vectorized batch engine must be *bit-identical* to the tuple
iterator engine — same values, same row order — and both must agree
with the naive logical interpreter up to row order.  Two corpora drive
the comparison:

* a hypothesis grammar over the constructs the paper targets
  (correlated scalar subqueries, EXISTS / IN, aggregation with HAVING,
  outerjoins, CASE) on small NULL-rich integer tables, so equality is
  exact with no float-rounding escape hatch;
* the full TPC-H suite (plus the paper's Figure 4 formulation pairs)
  at a small scale factor.

The grammar sample is derandomized for the tier-1 run; setting
``REPRO_DIFF_DEEP=1`` switches to a randomized ≥200-example sweep for
CI.  Generated queries run on a ``batch_size=3`` database so every
operator crosses batch boundaries even on seven-row tables.
"""

import os
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (CORRELATED, DECORRELATE_ONLY, FULL, NAIVE, Database,
                   DataType)
from repro.tpch import (QUERIES, create_tpch_schema, generate_tpch,
                        paper_example_formulations)

DEEP = os.environ.get("REPRO_DIFF_DEEP", "").strip() not in ("", "0")
MAX_EXAMPLES = 250 if DEEP else 30

# -- schema and data -----------------------------------------------------------
#
# Integer-only columns: cross-engine equality is exact, never rounded.

T_COLS = ["t.grp", "t.val", "t.tag"]
S_COLS = ["s.ref", "s.amt"]
OPS = ["=", "<>", "<", "<=", ">", ">="]
AGGS = ["sum", "min", "max", "count", "avg"]


def build_db(t_rows, s_rows) -> Database:
    # batch_size=3 forces multi-batch execution even on tiny tables.
    db = Database(batch_size=3)
    db.create_table("t", [("id", DataType.INTEGER, False),
                          ("grp", DataType.INTEGER, True),
                          ("val", DataType.INTEGER, True),
                          ("tag", DataType.INTEGER, True)],
                    primary_key=("id",))
    db.create_table("s", [("sid", DataType.INTEGER, False),
                          ("ref", DataType.INTEGER, True),
                          ("amt", DataType.INTEGER, True)],
                    primary_key=("sid",))
    db.insert("t", [(i + 1, *row) for i, row in enumerate(t_rows)])
    db.insert("s", [(i + 1, *row) for i, row in enumerate(s_rows)])
    return db


nullable_int = st.one_of(st.none(), st.integers(0, 4))
t_rows_strategy = st.lists(st.tuples(nullable_int, nullable_int,
                                     nullable_int), max_size=7)
s_rows_strategy = st.lists(st.tuples(nullable_int, nullable_int),
                           max_size=7)

# -- query grammar -------------------------------------------------------------

literal = st.integers(0, 4).map(str)
t_col = st.sampled_from(T_COLS)
s_col = st.sampled_from(S_COLS)
op = st.sampled_from(OPS)
agg = st.sampled_from(AGGS)


@st.composite
def scalar_expr(draw):
    """A select-list expression over t's columns."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(t_col)
    if kind == 1:
        arith = draw(st.sampled_from(["+", "-", "*"]))
        return f"{draw(t_col)} {arith} {draw(literal)}"
    if kind == 2:
        return (f"case when {draw(t_col)} {draw(op)} {draw(literal)} "
                f"then {draw(t_col)} else {draw(literal)} end")
    return (f"(select {draw(agg)}(s.amt) from s "
            f"where s.ref = {draw(t_col)})")


@st.composite
def predicate(draw):
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return f"{draw(t_col)} {draw(op)} {draw(literal)}"
    if kind == 1:
        return f"{draw(t_col)} {draw(op)} {draw(t_col)}"
    if kind == 2:
        negated = "not " if draw(st.booleans()) else ""
        return f"{draw(t_col)} is {negated}null"
    if kind == 3:
        return f"{draw(t_col)} in ({draw(literal)}, {draw(literal)})"
    if kind == 4:
        negated = "not " if draw(st.booleans()) else ""
        return (f"{negated}exists (select * from s "
                f"where s.ref = {draw(t_col)})")
    if kind == 5:
        negated = "not " if draw(st.booleans()) else ""
        return (f"{draw(t_col)} {negated}in "
                f"(select s.amt from s where s.ref = {draw(t_col)})")
    return (f"{draw(t_col)} {draw(op)} (select {draw(agg)}(s.amt) "
            f"from s where s.ref = {draw(t_col)})")


@st.composite
def where_clause(draw):
    parts = draw(st.lists(predicate(), min_size=1, max_size=3))
    connector = draw(st.sampled_from([" and ", " or "]))
    return " where " + connector.join(f"({p})" for p in parts)


@st.composite
def query(draw):
    where = draw(where_clause()) if draw(st.booleans()) else ""
    shape = draw(st.integers(0, 4))
    if shape == 0:  # projection, optionally DISTINCT / ORDER+LIMIT
        # unique: the analyzer (correctly) flags duplicate output columns
        exprs = draw(st.lists(scalar_expr(), min_size=1, max_size=3,
                              unique=True))
        distinct = "distinct " if draw(st.booleans()) else ""
        sql = f"select {distinct}{', '.join(exprs)} from t{where}"
        if not distinct and draw(st.booleans()):
            # Ordering by every output column makes the LIMIT prefix a
            # deterministic multiset even when engines break ties
            # differently.
            keys = ", ".join(str(i + 1) for i in range(len(exprs)))
            sql += f" order by {keys} limit {draw(st.integers(0, 5))}"
        return sql
    if shape == 1:  # grouped aggregation, optional HAVING
        chosen = draw(agg)
        arg = "*" if chosen == "count" and draw(st.booleans()) else "t.val"
        having = ""
        if draw(st.booleans()):
            having = f" having {chosen}({arg}) {draw(op)} {draw(literal)}"
        return (f"select t.grp, {chosen}({arg}) from t{where} "
                f"group by t.grp{having}")
    if shape == 2:  # ungrouped (scalar) aggregation
        chosen = draw(st.lists(agg, min_size=1, max_size=2, unique=True))
        calls = ", ".join(f"{name}(t.val)" for name in chosen)
        return f"select {calls} from t{where}"
    if shape == 3:  # outerjoin, optionally aggregated above it
        join_kind = draw(st.sampled_from(["join", "left outer join"]))
        joined = (f"t {join_kind} s on s.ref = {draw(t_col)}")
        if draw(st.booleans()):
            return (f"select t.grp, count(s.sid), {draw(agg)}(s.amt) "
                    f"from {joined}{where} group by t.grp")
        return f"select t.id, t.val, s.amt from {joined}{where}"
    # correlated scalar subquery in the select list (Q17's shape)
    return (f"select t.id, (select {draw(agg)}(s.amt) from s "
            f"where s.ref = {draw(t_col)}) from t{where}")


ALL_MODES = (FULL, DECORRELATE_ONLY, CORRELATED)


def assert_engines_agree(db: Database, sql: str) -> None:
    reference = Counter(db.execute(sql, NAIVE).rows)
    for mode in ALL_MODES:
        tuple_rows = db.execute(sql, mode, engine="tuple").rows
        vector_rows = db.execute(sql, mode, engine="vectorized").rows
        assert vector_rows == tuple_rows, \
            f"vectorized != tuple under {mode.name} on: {sql}"
        assert Counter(tuple_rows) == reference, \
            f"{mode.name} != naive on: {sql}"


@settings(max_examples=MAX_EXAMPLES, deadline=None, derandomize=not DEEP,
          database=None)
@given(t_rows=t_rows_strategy, s_rows=s_rows_strategy, sql=query())
def test_generated_queries_agree(t_rows, s_rows, sql):
    assert_engines_agree(build_db(t_rows, s_rows), sql)


def test_regression_corpus():
    """Hand-picked shapes that exercised real divergences during
    development: empty inputs, all-NULL keys, guarded division,
    duplicate-heavy joins, zero-limit Top."""
    db = build_db([(None, None, None), (1, 2, 3), (1, None, 0),
                   (2, 0, 0), (None, 4, 1)],
                  [(None, None), (1, 1), (1, None), (2, 0), (4, 4)])
    corpus = [
        "select t.grp, sum(t.val), count(distinct t.tag) from t"
        " group by t.grp",
        "select count(*), count(t.val), avg(t.val) from t",
        "select t.id, s.amt from t left outer join s on s.ref = t.grp",
        "select t.grp, min(s.amt) from t left outer join s"
        " on s.ref = t.grp group by t.grp",
        # the oracle's first catch: local/global split below an outer
        # join turned count of an all-padded group into NULL
        "select t.grp, count(s.sid), sum(s.amt) from t"
        " left outer join s on s.ref = t.grp group by t.grp",
        "select t.id, (select sum(s.amt) from s where s.ref = t.grp)"
        " from t",
        "select t.id from t where exists"
        " (select * from s where s.ref = t.grp)",
        "select t.id from t where t.val not in"
        " (select s.amt from s where s.ref = t.grp)",
        "select case when t.val > 0 then t.tag / t.val else 0 end"
        " from t",
        "select distinct t.grp, t.val from t",
        "select t.val from t order by 1 limit 0",
        "select t.val from t where t.grp is null order by 1 limit 2",
        "select t.grp from t except all select s.ref from s",
        "select t.grp from t union all select s.ref from s",
    ]
    for sql in corpus:
        assert_engines_agree(db, sql)


def test_engines_agree_on_empty_tables():
    db = build_db([], [])
    for sql in ("select t.val from t",
                "select count(*), sum(t.val) from t",
                "select t.grp, sum(t.val) from t group by t.grp",
                "select t.id, s.amt from t left outer join s"
                " on s.ref = t.grp"):
        assert_engines_agree(db, sql)


# -- TPC-H corpus --------------------------------------------------------------

@pytest.fixture(scope="module")
def tpch_db():
    db = Database(batch_size=256)
    create_tpch_schema(db)
    generate_tpch(db, scale_factor=0.001, seed=7)
    return db


@pytest.fixture(scope="module")
def tiny_tpch_db():
    """Smallest instance, for the quadratic naive oracle."""
    db = Database()
    create_tpch_schema(db)
    generate_tpch(db, scale_factor=0.0001, seed=11)
    return db


class TestTpchCorpus:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_vectorized_bit_identical_to_tuple(self, tpch_db, name):
        sql = QUERIES[name]
        for mode in ALL_MODES:
            reference = tpch_db.execute(sql, mode, engine="tuple")
            result = tpch_db.execute(sql, mode, engine="vectorized")
            assert result.rows == reference.rows, \
                f"{name} under {mode.name}"
            assert result.names == reference.names

    # Same subset as test_tpch.TestQueryCorrectness: the remaining
    # queries are intractable under naive (cross-product) evaluation.
    NAIVE_FEASIBLE = ("Q1", "Q4", "Q6", "Q11", "Q12", "Q13", "Q14",
                      "Q15", "Q16", "Q17", "Q19", "Q22")

    @pytest.mark.parametrize("name", NAIVE_FEASIBLE)
    def test_vectorized_agrees_with_naive(self, tiny_tpch_db, name):
        reference = tiny_tpch_db.execute(QUERIES[name], NAIVE)
        result = tiny_tpch_db.execute(QUERIES[name], FULL,
                                      engine="vectorized")
        assert _rounded(result.rows) == _rounded(reference.rows)

    def test_paper_formulations_bit_identical(self, tpch_db):
        for name, sql in paper_example_formulations().items():
            reference = tpch_db.execute(sql, FULL, engine="tuple")
            result = tpch_db.execute(sql, FULL, engine="vectorized")
            assert result.rows == reference.rows, name


def _rounded(rows, digits=6):
    return Counter(
        tuple(round(v, digits) if isinstance(v, float) else v
              for v in row)
        for row in rows)
