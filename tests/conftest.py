"""Shared pytest fixtures: a miniature TPC-H-shaped catalog and database."""

import pytest

from repro.algebra import DataType
from repro.catalog import Catalog, ColumnDef, TableDef


def build_mini_catalog() -> Catalog:
    """customer / orders / lineitem / part / supplier / partsupp subset."""
    catalog = Catalog()
    catalog.create_table(TableDef(
        "customer",
        [ColumnDef("c_custkey", DataType.INTEGER, False),
         ColumnDef("c_name", DataType.VARCHAR, False),
         ColumnDef("c_nationkey", DataType.INTEGER, False),
         ColumnDef("c_acctbal", DataType.FLOAT, False)],
        primary_key=("c_custkey",)))
    catalog.create_table(TableDef(
        "orders",
        [ColumnDef("o_orderkey", DataType.INTEGER, False),
         ColumnDef("o_custkey", DataType.INTEGER, False),
         ColumnDef("o_totalprice", DataType.FLOAT, False),
         ColumnDef("o_orderdate", DataType.DATE, False),
         ColumnDef("o_orderpriority", DataType.VARCHAR, False)],
        primary_key=("o_orderkey",)))
    catalog.create_table(TableDef(
        "lineitem",
        [ColumnDef("l_orderkey", DataType.INTEGER, False),
         ColumnDef("l_partkey", DataType.INTEGER, False),
         ColumnDef("l_suppkey", DataType.INTEGER, False),
         ColumnDef("l_linenumber", DataType.INTEGER, False),
         ColumnDef("l_quantity", DataType.FLOAT, False),
         ColumnDef("l_extendedprice", DataType.FLOAT, False)],
        primary_key=("l_orderkey", "l_linenumber")))
    catalog.create_table(TableDef(
        "part",
        [ColumnDef("p_partkey", DataType.INTEGER, False),
         ColumnDef("p_name", DataType.VARCHAR, False),
         ColumnDef("p_brand", DataType.VARCHAR, False),
         ColumnDef("p_container", DataType.VARCHAR, False),
         ColumnDef("p_retailprice", DataType.FLOAT, False)],
        primary_key=("p_partkey",)))
    catalog.create_table(TableDef(
        "supplier",
        [ColumnDef("s_suppkey", DataType.INTEGER, False),
         ColumnDef("s_name", DataType.VARCHAR, False),
         ColumnDef("s_acctbal", DataType.FLOAT, False)],
        primary_key=("s_suppkey",)))
    catalog.create_table(TableDef(
        "partsupp",
        [ColumnDef("ps_partkey", DataType.INTEGER, False),
         ColumnDef("ps_suppkey", DataType.INTEGER, False),
         ColumnDef("ps_supplycost", DataType.FLOAT, False),
         ColumnDef("ps_availqty", DataType.INTEGER, False)],
        primary_key=("ps_partkey", "ps_suppkey")))
    # A table with nullable columns for NULL-semantics tests.
    catalog.create_table(TableDef(
        "nully",
        [ColumnDef("n_id", DataType.INTEGER, False),
         ColumnDef("n_a", DataType.INTEGER, True),
         ColumnDef("n_b", DataType.INTEGER, True)],
        primary_key=("n_id",)))
    return catalog


@pytest.fixture
def mini_catalog() -> Catalog:
    return build_mini_catalog()


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/* with the plans the optimizer "
             "produces now (review the diff before committing)")
