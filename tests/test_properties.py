"""Unit tests for derived properties: keys, FDs, null-rejection, max1row."""

from repro.algebra import (AggregateCall, AggregateFunction, And, Apply,
                           Arithmetic, Case, Column, ColumnRef, Comparison,
                           ConstantScan, DataType, FDSet, Get, GroupBy,
                           IsNull, Join, JoinKind, Literal, Max1row, Not, Or,
                           Project, ScalarGroupBy, Select, Top, derive_fds,
                           derive_keys, equals, functionally_determines,
                           key_within, max_one_row, null_rejected_columns,
                           strict_columns, ColumnSet)

from .helpers import customer_scan, orders_scan


class TestFDSet:
    def test_closure_transitivity(self):
        fds = FDSet()
        fds.add({1}, {2})
        fds.add({2}, {3})
        assert fds.closure({1}) == {1, 2, 3}
        assert fds.determines({1}, {3})
        assert not fds.determines({3}, {1})

    def test_constants_in_closure(self):
        fds = FDSet()
        fds.add_constant(7)
        assert 7 in fds.closure(set())

    def test_equivalence(self):
        fds = FDSet()
        fds.add_equivalence(1, 2)
        assert fds.determines({1}, {2})
        assert fds.determines({2}, {1})

    def test_compound_determinant(self):
        fds = FDSet()
        fds.add({1, 2}, {3})
        assert not fds.determines({1}, {3})
        assert fds.determines({1, 2}, {3})

    def test_project_keeps_contained_fds(self):
        fds = FDSet()
        fds.add({1}, {2, 3})
        projected = fds.project({1, 2})
        assert projected.determines({1}, {2})
        assert not projected.determines({1}, {3})


class TestKeys:
    def test_get_declared_key(self):
        get, (ck, _, _) = customer_scan()
        assert derive_keys(get) == [frozenset({ck.cid})]

    def test_join_combines_keys(self):
        cust, (ck, _, _) = customer_scan()
        orders, (ok, ock, _) = orders_scan()
        join = Join(JoinKind.INNER, cust, orders, equals(ock, ck))
        assert frozenset({ck.cid, ok.cid}) in derive_keys(join)

    def test_semi_join_keeps_left_keys(self):
        cust, (ck, _, _) = customer_scan()
        orders, _ = orders_scan()
        join = Join(JoinKind.LEFT_SEMI, cust, orders)
        assert derive_keys(join) == [frozenset({ck.cid})]

    def test_groupby_groups_are_key(self):
        orders, (_, ock, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = GroupBy(orders, [ock], [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        assert frozenset({ock.cid}) in derive_keys(gb)

    def test_scalar_groupby_empty_key(self):
        orders, (_, _, price) = orders_scan()
        total = Column("total", DataType.FLOAT)
        gb = ScalarGroupBy(orders, [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        assert derive_keys(gb) == [frozenset()]

    def test_project_drops_keys_not_in_output(self):
        cust, (ck, cn, _) = customer_scan()
        proj = Project.passthrough(cust, [cn])
        assert derive_keys(proj) == []
        proj2 = Project.passthrough(cust, [ck, cn])
        assert derive_keys(proj2) == [frozenset({ck.cid})]

    def test_key_within(self):
        cust, (ck, cn, _) = customer_scan()
        assert key_within(cust, ColumnSet.of(ck, cn)) == frozenset({ck.cid})
        assert key_within(cust, ColumnSet.of(cn)) is None

    def test_minimality_filters_supersets(self):
        get, (ck, _, _) = customer_scan()
        top = Top(get, 1)
        assert derive_keys(top) == [frozenset()]


class TestFDDerivation:
    def test_select_equality_adds_fd(self):
        cust, (ck, cn, cnk) = customer_scan()
        sel = Select(cust, equals(cn, cnk))
        fds = derive_fds(sel)
        assert fds.determines({cn.cid}, {cnk.cid})
        assert fds.determines({cnk.cid}, {cn.cid})

    def test_key_determines_everything(self):
        cust, (ck, cn, cnk) = customer_scan()
        assert functionally_determines(
            cust, ColumnSet.of(ck), ColumnSet.of(cn, cnk))

    def test_constant_binding(self):
        cust, (ck, cn, _) = customer_scan()
        sel = Select(cust, equals(cn, Literal("alice")))
        fds = derive_fds(sel)
        assert cn.cid in fds.closure(set())

    def test_projection_computed_column_fd(self):
        cust, (ck, cn, _) = customer_scan()
        twice = Column("twice", DataType.INTEGER)
        proj = Project.extend(cust, [(twice, Arithmetic(
            "*", ColumnRef(ck), Literal(2)))])
        assert derive_fds(proj).determines({ck.cid}, {twice.cid})

    def test_join_equality_propagates(self):
        cust, (ck, _, _) = customer_scan()
        orders, (_, ock, _) = orders_scan()
        join = Join(JoinKind.INNER, cust, orders, equals(ock, ck))
        fds = derive_fds(join)
        assert fds.determines({ock.cid}, {ck.cid})


class TestNullRejection:
    def test_comparison_rejects_both_sides(self):
        a = Column("a", DataType.INTEGER)
        b = Column("b", DataType.INTEGER)
        pred = Comparison("<", ColumnRef(a), ColumnRef(b))
        assert null_rejected_columns(pred) == {a.cid, b.cid}

    def test_paper_example_having_condition(self):
        x = Column("x", DataType.FLOAT)
        pred = Comparison("<", Literal(1000000), ColumnRef(x))
        assert x.cid in null_rejected_columns(pred)

    def test_arithmetic_is_strict(self):
        a = Column("a", DataType.INTEGER)
        expr = Arithmetic("+", ColumnRef(a), Literal(1))
        assert strict_columns(expr) == {a.cid}
        pred = Comparison("=", expr, Literal(5))
        assert a.cid in null_rejected_columns(pred)

    def test_and_unions(self):
        a, b = Column("a", DataType.INTEGER), Column("b", DataType.INTEGER)
        pred = And([Comparison("=", ColumnRef(a), Literal(1)),
                    Comparison("=", ColumnRef(b), Literal(2))])
        assert null_rejected_columns(pred) == {a.cid, b.cid}

    def test_or_intersects(self):
        a, b = Column("a", DataType.INTEGER), Column("b", DataType.INTEGER)
        pred = Or([Comparison("=", ColumnRef(a), Literal(1)),
                   And([Comparison("=", ColumnRef(a), Literal(2)),
                        Comparison("=", ColumnRef(b), Literal(2))])])
        assert null_rejected_columns(pred) == {a.cid}

    def test_is_null_does_not_reject(self):
        a = Column("a", DataType.INTEGER)
        assert null_rejected_columns(IsNull(ColumnRef(a))) == frozenset()
        assert a.cid in null_rejected_columns(
            IsNull(ColumnRef(a), negated=True))

    def test_not_rejects_strict_argument(self):
        a = Column("a", DataType.INTEGER)
        pred = Not(Comparison("=", ColumnRef(a), Literal(1)))
        assert a.cid in null_rejected_columns(pred)

    def test_case_is_not_strict(self):
        a = Column("a", DataType.INTEGER)
        expr = Case([(IsNull(ColumnRef(a)), Literal(0))], Literal(1))
        assert strict_columns(expr) == frozenset()


class TestMaxOneRow:
    def test_scalar_groupby(self):
        orders, (_, _, price) = orders_scan()
        total = Column("t", DataType.FLOAT)
        gb = ScalarGroupBy(orders, [(total, AggregateCall(
            AggregateFunction.SUM, ColumnRef(price)))])
        assert max_one_row(gb)

    def test_key_equality_lookup(self):
        cust, (ck, cn, _) = customer_scan()
        assert max_one_row(Select(cust, equals(ck, Literal(5))))
        assert not max_one_row(Select(cust, equals(cn, Literal("x"))))

    def test_key_equality_to_outer_parameter(self):
        """The paper's example: customer looked up by key from an order row
        needs no Max1row."""
        cust, (ck, cn, _) = customer_scan()
        _, (_, ock, _) = orders_scan()
        lookup = Select(cust, equals(ck, ock))  # ock is an outer parameter
        assert max_one_row(lookup)

    def test_plain_scan_is_not(self):
        cust, _ = customer_scan()
        assert not max_one_row(cust)

    def test_top_one(self):
        cust, _ = customer_scan()
        assert max_one_row(Top(cust, 1))
        assert not max_one_row(Top(cust, 5))

    def test_constant_scan(self):
        assert max_one_row(ConstantScan([], [()]))
        assert not max_one_row(ConstantScan(
            [Column("x", DataType.INTEGER)], [(1,), (2,)]))

    def test_max1row_itself(self):
        cust, _ = customer_scan()
        assert max_one_row(Max1row(cust))
