"""Setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (which build an editable wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` use the legacy ``setup.py develop``
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
