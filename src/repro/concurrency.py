"""Unified locking substrate: named, levelled locks + a runtime race detector.

Every lock in the engine is a :class:`TrackedLock` / :class:`TrackedRLock`
(or a :class:`TrackedCondition` wrapping one) declared in :data:`HIERARCHY`
with a *name* and a *level*.  The discipline is the classic lock-ordering
rule made explicit and mechanically checkable (the same move PR 3 made for
plan invariants):

* A thread may only acquire a lock whose level is **strictly greater**
  than the highest level it already holds (re-entrant re-acquisition of
  the same :class:`TrackedRLock` is always allowed).
* **Same-level** acquisition is allowed only for locks whose spec sets
  ``timeout_required`` (per-table writer locks, shard stripes) and only
  with a **bounded** acquire — a timeout converts a potential deadlock
  into a clean :class:`~repro.errors.TransactionConflict`-style failure.

Two checkers enforce this:

* The **static pass** (:mod:`repro.analysis.concurrency`) extracts every
  acquisition from the source tree, builds the held-while-acquiring
  graph, and reports cycles, hierarchy violations, unbounded same-level
  acquires, blocking calls under hot locks, and unguarded mutations of
  registered shared fields.  ``python -m repro.analysis.concurrency
  check`` is a CI hard gate.
* The **runtime race detector** (opt-in: ``REPRO_RACE=1``) records every
  acquisition with its call stack, detects hierarchy violations and
  lock-order inversions the moment they happen, and raises a
  :class:`LockOrderViolation` whose blame report names both locks, both
  threads and both acquisition sites.  With the detector off — the
  default — a ``TrackedLock`` costs one module-global read per
  operation and no bookkeeping at all.

Cross-thread hand-off (a server acquires a writer lock on an admission
worker and releases it on the connection thread at commit) is supported:
held-lock bookkeeping is keyed globally by lock identity, not in
thread-local storage.
"""

from __future__ import annotations

import os
import sys
import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "HIERARCHY", "LockSpec", "LockOrderViolation", "RaceDetector",
    "TrackedCondition", "TrackedLock", "TrackedRLock", "detector",
    "install_detector", "level_of", "race_detection", "spec_for",
    "uninstall_detector",
]


class LockOrderViolation(RuntimeError):
    """A lock-order / hierarchy violation detected at runtime.

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in the
    engine (degradation ladder, wire error mapping, chaos recovery) may
    absorb it — a violation is a bug in the engine, never a query error.
    """

    def __init__(self, message: str, report: str = "") -> None:
        super().__init__(message if not report
                         else f"{message}\n{report}")
        self.report = report


# ---------------------------------------------------------------------------
# Declared hierarchy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LockSpec:
    """One declared lock (or family of locks) in the global hierarchy."""

    #: Exact lock name; for ``dynamic`` specs, instances are named
    #: ``"<name>:<qualifier>"`` (e.g. ``storage.writer:orders``).
    name: str
    #: Hierarchy level.  Acquisition order must be strictly ascending.
    level: int
    #: True when many instances share this spec (per-table, per-shard).
    dynamic: bool = False
    #: Same-level multiple acquisition is legal for this spec, but every
    #: acquire must be *bounded* (carry a timeout) so a cross-order race
    #: resolves as a timeout instead of a deadlock.
    timeout_required: bool = False
    #: Hot locks serialize fast paths; blocking calls (fsync, socket IO,
    #: unbounded waits) must never run while one is held.
    hot: bool = False
    #: True for re-entrant locks.
    reentrant: bool = False
    doc: str = ""


#: The global lock hierarchy, lowest level acquired first.  The static
#: pass and the runtime detector both key off this single declaration;
#: adding a lock anywhere in the engine means adding a row here (see
#: DESIGN.md "Concurrency invariants").
HIERARCHY: tuple[LockSpec, ...] = (
    LockSpec("db.ddl", 10, reentrant=True,
             doc="Serializes DDL end to end (validate -> log -> apply); "
                 "shared by Database and DurabilityManager."),
    LockSpec("storage.writer", 20, dynamic=True, timeout_required=True,
             doc="Per-table single-writer lock serializing installs; "
                 "transactions and the checkpointer may hold several, so "
                 "every acquire must be bounded."),
    LockSpec("wal.log", 30,
             doc="Serializes WAL appends and LSN assignment; fsync runs "
                 "under it by design (log order = durability order)."),
    LockSpec("storage.tables", 40, reentrant=True, hot=True,
             doc="Guards the table-version map and data_version."),
    LockSpec("catalog.schema", 50, reentrant=True, hot=True,
             doc="Guards table/view/index definitions and the schema "
                 "version."),
    LockSpec("stats.corrections", 55, hot=True,
             doc="Guards the runtime cardinality-correction store."),
    LockSpec("matview.stats", 58, hot=True,
             doc="Materialized-view manager observability counters."),
    LockSpec("plancache.shard", 60, dynamic=True, hot=True,
             doc="One LRU stripe of the plan cache."),
    LockSpec("plancache.stats", 62, hot=True,
             doc="Plan-cache counters (hits/misses/evictions)."),
    LockSpec("admission.queue", 70, hot=True,
             doc="Admission-controller queues, rotation and counters "
                 "(condition variable)."),
    LockSpec("server.pool", 72,
             doc="Global resource-pool budget (condition variable)."),
    LockSpec("morsel.pool", 73,
             doc="Lazy construction of the shared morsel helper pool."),
    LockSpec("morsel.queue", 74, dynamic=True, hot=True,
             doc="Per-query morsel work queue: task cursor, ordered "
                 "results, error/cancel flags (condition variable)."),
    LockSpec("dbapi.pool", 80,
             doc="DB-API connection-pool free list (condition variable)."),
    LockSpec("wire.active", 84, hot=True,
             doc="In-flight request counter of the wire server."),
    LockSpec("wire.conns", 86,
             doc="Connection-thread registry of the wire server."),
    LockSpec("db.sessions", 90, hot=True,
             doc="Open-session registry of a Database."),
    LockSpec("feedback.stats", 92, hot=True,
             doc="Feedback-loop observability counters."),
    LockSpec("algebra.columns", 95, hot=True,
             doc="Global column-id counter (leaf; nothing may be "
                 "acquired while holding it)."),
)

_SPEC_BY_NAME: dict[str, LockSpec] = {s.name: s for s in HIERARCHY}


def spec_for(name: str) -> LockSpec:
    """Resolve a lock *instance* name to its declared spec.

    Exact match first; otherwise the prefix before ``:`` must name a
    ``dynamic`` spec (``storage.writer:orders`` -> ``storage.writer``).
    """
    spec = _SPEC_BY_NAME.get(name)
    if spec is not None:
        return spec
    base, _, qualifier = name.partition(":")
    spec = _SPEC_BY_NAME.get(base)
    if spec is not None and spec.dynamic and qualifier:
        return spec
    raise ValueError(
        f"lock name {name!r} is not declared in the hierarchy; add a "
        f"LockSpec to repro.concurrency.HIERARCHY (or pass level=)")


def level_of(name: str) -> int:
    return spec_for(name).level


# ---------------------------------------------------------------------------
# Runtime race detector
# ---------------------------------------------------------------------------

def _call_site(skip: int = 2, limit: int = 10) -> tuple[tuple[str, int, str],
                                                        ...]:
    """A cheap call-stack summary: (filename, lineno, function) frames,
    innermost first.  Avoids :mod:`traceback`'s source-line loading —
    capture cost bounds the detector's overhead on the commit path."""
    try:
        frame = sys._getframe(skip)
    except ValueError:  # shallower stack than skip
        return ()
    frames: list[tuple[str, int, str]] = []
    while frame is not None and len(frames) < limit:
        code = frame.f_code
        frames.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(frames)


def _render_site(stack: tuple[tuple[str, int, str], ...],
                 indent: str = "    ") -> str:
    if not stack:
        return f"{indent}<no stack recorded>"
    return "\n".join(f"{indent}{fn}:{line} in {func}()"
                     for fn, line, func in stack)


@dataclass
class _Held:
    """One acquisition currently held somewhere in the process.

    The lock itself is referenced *weakly*: tests that simulate crashes
    abandon transactions (and whole databases) with locks still held, and
    a dead lock's entry must not poison later ordering checks — once the
    lock object is unreachable, no thread can ever wait on it again, so
    it cannot participate in a deadlock.
    """

    ref: "weakref.ref[TrackedLock] | weakref.ref[TrackedRLock]"
    lock_id: int
    name: str
    level: int
    spec: LockSpec
    bounded: bool
    stack: tuple[tuple[str, int, str], ...]
    thread_ident: int
    thread_name: str
    count: int = 1  # re-entrant depth for TrackedRLock


@dataclass
class _Edge:
    """First recorded held-while-acquiring pair (for inversion blame)."""

    held_name: str
    acquired_name: str
    bounded: bool
    held_stack: tuple[tuple[str, int, str], ...]
    acquire_stack: tuple[tuple[str, int, str], ...]
    thread_name: str
    count: int = 1


@dataclass
class Violation:
    """One detected hierarchy violation or lock-order inversion."""

    kind: str           # "hierarchy" | "inversion" | "same-level"
    message: str
    report: str


class RaceDetector:
    """Records acquisitions, checks ordering, dumps blame reports.

    ``mode="strict"`` raises :class:`LockOrderViolation` at the faulty
    acquisition; ``mode="warn"`` only collects into :attr:`violations`.
    Bounded *inversions* (both directions acquired with timeouts — the
    sanctioned first-committer-wins pattern on writer locks) are recorded
    in :attr:`bounded_inversions` but never raised: the timeout is the
    deadlock-freedom argument.
    """

    def __init__(self, mode: str = "strict") -> None:
        if mode not in ("strict", "warn"):
            raise ValueError("detector mode must be 'strict' or 'warn'")
        self.mode = mode
        # The detector's own mutex is deliberately a *raw* lock: it must
        # not recurse into the tracking machinery it implements.
        self._mu = threading.Lock()
        self._held_by_lock: dict[int, _Held] = {}       # id(lock) -> held
        self._held_by_thread: dict[int, list[int]] = {}  # ident -> [id(lock)]
        self._edges: dict[tuple[str, str], _Edge] = {}
        self.violations: list[Violation] = []
        self.bounded_inversions: list[tuple[_Edge, _Edge]] = []
        self.acquisitions = 0

    # -- bookkeeping (called from TrackedLock) -------------------------------------

    def _prune_dead_locked(self) -> None:
        """Drop entries whose lock object has been garbage-collected
        (abandoned by a crash-simulation test).  Caller holds ``_mu``."""
        dead = [lock_id for lock_id, entry in self._held_by_lock.items()
                if entry.ref() is None]
        for lock_id in dead:
            entry = self._held_by_lock.pop(lock_id)
            bucket = self._held_by_thread.get(entry.thread_ident)
            if bucket is not None:
                try:
                    bucket.remove(lock_id)
                except ValueError:
                    pass
                if not bucket:
                    del self._held_by_thread[entry.thread_ident]

    def before_acquire(self, lock: "TrackedLock | TrackedRLock",
                       blocking: bool, timeout: float) -> None:
        """Order checks run *before* blocking on the inner lock, so a
        violation is reported instead of deadlocking."""
        if not blocking or timeout == 0:
            return  # try-acquire can never deadlock
        violation = self._order_violation(lock, timeout)
        if violation is not None:
            # A held entry may belong to an abandoned lock trapped in a
            # reference cycle (crash-simulation tests drop databases with
            # transactions open).  Collect and re-check once before
            # blaming anyone; this path only runs when a violation is
            # about to be reported, so the clean path never pays for it.
            import gc
            gc.collect()
            violation = self._order_violation(lock, timeout)
        if violation is not None:
            self._report(violation)

    def _order_violation(self, lock: "TrackedLock | TrackedRLock",
                         timeout: float) -> Optional[Violation]:
        ident = threading.get_ident()
        bounded = timeout is not None and timeout >= 0
        with self._mu:
            self._prune_dead_locked()
            held_ids = self._held_by_thread.get(ident, ())
            if not held_ids:
                return None
            held = [self._held_by_lock[i] for i in held_ids
                    if i in self._held_by_lock]
            if not held:
                return None
            for entry in held:
                if entry.lock_id == id(lock):
                    if lock.spec.reentrant:
                        return None  # re-entrant re-acquisition
                    break
            return self._check_order(lock, bounded, held)

    def on_acquired(self, lock: "TrackedLock | TrackedRLock",
                    blocking: bool, timeout: float) -> None:
        ident = threading.get_ident()
        bounded = blocking and timeout is not None and timeout >= 0
        stack = _call_site(skip=3)
        with self._mu:
            self._prune_dead_locked()
            self.acquisitions += 1
            existing = self._held_by_lock.get(id(lock))
            if existing is not None:
                existing.count += 1  # re-entrant
                return
            entry = _Held(ref=weakref.ref(lock), lock_id=id(lock),
                          name=lock.name, level=lock.level, spec=lock.spec,
                          bounded=bounded, stack=stack,
                          thread_ident=ident,
                          thread_name=threading.current_thread().name)
            for held_id in self._held_by_thread.get(ident, ()):
                other = self._held_by_lock.get(held_id)
                if other is not None:
                    self._record_edge(other, entry)
            self._held_by_lock[id(lock)] = entry
            self._held_by_thread.setdefault(ident, []).append(id(lock))

    def on_release(self, lock: "TrackedLock | TrackedRLock") -> None:
        with self._mu:
            entry = self._held_by_lock.get(id(lock))
            if entry is None:
                return  # acquired before the detector was installed
            entry.count -= 1
            if entry.count > 0:
                return
            del self._held_by_lock[id(lock)]
            bucket = self._held_by_thread.get(entry.thread_ident)
            if bucket is not None:
                try:
                    bucket.remove(id(lock))
                except ValueError:
                    pass
                if not bucket:
                    del self._held_by_thread[entry.thread_ident]

    # -- checks --------------------------------------------------------------------

    def _check_order(self, lock: "TrackedLock | TrackedRLock",
                     bounded: bool,
                     held: list[_Held]) -> Optional[Violation]:
        """Caller holds ``self._mu``."""
        top = max(held, key=lambda e: e.level)
        if lock.level < top.level:
            return self._hierarchy_violation(lock, top)
        if lock.level == top.level and top.lock_id != id(lock):
            same = top
            if lock.spec.timeout_required and same.spec.timeout_required \
                    and bounded:
                return None  # sanctioned bounded same-level group
            return Violation(
                kind="same-level",
                message=(f"unbounded same-level acquisition: "
                         f"{lock.name!r} (level {lock.level}) while "
                         f"holding {same.name!r} "
                         f"(level {same.level})"),
                report=self._blame(same, lock))
        return None

    def _hierarchy_violation(self, lock: "TrackedLock | TrackedRLock",
                             held: _Held) -> Violation:
        return Violation(
            kind="hierarchy",
            message=(f"lock hierarchy violation: acquiring "
                     f"{lock.name!r} (level {lock.level}) while holding "
                     f"{held.name!r} (level {held.level})"),
            report=self._blame(held, lock))

    def _record_edge(self, held: _Held,
                     acquiring: _Held) -> None:
        """Caller holds ``self._mu``.  Records the edge and flags an
        inversion when the reverse edge was seen earlier."""
        key = (held.name, acquiring.name)
        edge = self._edges.get(key)
        if edge is not None:
            edge.count += 1
            return
        edge = _Edge(held_name=held.name,
                     acquired_name=acquiring.name,
                     bounded=acquiring.bounded,
                     held_stack=held.stack,
                     acquire_stack=acquiring.stack,
                     thread_name=acquiring.thread_name)
        self._edges[key] = edge
        reverse = self._edges.get((key[1], key[0]))
        if reverse is None or key[0] == key[1]:
            return
        if edge.bounded and reverse.bounded:
            self.bounded_inversions.append((edge, reverse))
            return
        violation = Violation(
            kind="inversion",
            message=(f"lock-order inversion: {key[0]!r} -> {key[1]!r} "
                     f"here, but {key[1]!r} -> {key[0]!r} was acquired "
                     f"earlier"),
            report=self._render_inversion(edge, reverse))
        # _mu is held; defer raising until after release to keep the
        # detector re-entrant-safe.
        self.violations.append(violation)
        if self.mode == "strict":
            raise LockOrderViolation(violation.message, violation.report)

    # -- blame reports -------------------------------------------------------------

    def _blame(self, held: _Held,
               acquiring: "TrackedLock | TrackedRLock") -> str:
        lines = [
            "lock-order blame report",
            f"  cycle: {held.name} -> {acquiring.name} "
            f"-> {held.name} (hierarchy levels "
            f"{held.level} -> {acquiring.level})",
            f"  thread {threading.current_thread().name!r} acquiring "
            f"{acquiring.name!r} at:",
            _render_site(_call_site(skip=4)),
            f"  while holding {held.name!r} (acquired by thread "
            f"{held.thread_name!r}) at:",
            _render_site(held.stack),
        ]
        return "\n".join(lines)

    def _render_inversion(self, edge: _Edge, reverse: _Edge) -> str:
        lines = [
            "lock-order inversion blame report",
            f"  cycle: {edge.held_name} -> {edge.acquired_name} "
            f"-> {edge.held_name}",
            f"  thread {edge.thread_name!r} acquired "
            f"{edge.acquired_name!r} while holding {edge.held_name!r}:",
            _render_site(edge.acquire_stack),
            f"    ({edge.held_name!r} held from:)",
            _render_site(edge.held_stack, indent="      "),
            f"  thread {reverse.thread_name!r} earlier acquired "
            f"{reverse.acquired_name!r} while holding "
            f"{reverse.held_name!r}:",
            _render_site(reverse.acquire_stack),
            f"    ({reverse.held_name!r} held from:)",
            _render_site(reverse.held_stack, indent="      "),
        ]
        return "\n".join(lines)

    def _report(self, violation: Violation) -> None:
        with self._mu:
            self.violations.append(violation)
        if self.mode == "strict":
            raise LockOrderViolation(violation.message, violation.report)

    # -- observability -------------------------------------------------------------

    def edges(self) -> list[tuple[str, str, int]]:
        with self._mu:
            return [(e.held_name, e.acquired_name, e.count)
                    for e in self._edges.values()]

    def report(self) -> str:
        """Render every recorded violation plus the sanctioned bounded
        inversions (empty string when nothing was recorded)."""
        with self._mu:
            violations = list(self.violations)
            bounded = list(self.bounded_inversions)
        sections = [f"[{v.kind}] {v.message}\n{v.report}"
                    for v in violations]
        sections.extend(
            f"[bounded-inversion] {e.held_name!r} <-> {r.held_name!r} "
            f"(both bounded; resolved by first-committer-wins)\n"
            + self._render_inversion(e, r)
            for e, r in bounded)
        return "\n\n".join(sections)


#: The installed detector, or ``None`` (the zero-overhead default).
_DETECTOR: Optional[RaceDetector] = None
_DETECTOR_GUARD = threading.Lock()


def detector() -> Optional[RaceDetector]:
    return _DETECTOR


def install_detector(mode: str = "strict") -> RaceDetector:
    """Install a fresh global detector (replacing any existing one)."""
    global _DETECTOR
    with _DETECTOR_GUARD:
        _DETECTOR = RaceDetector(mode)
        return _DETECTOR


def uninstall_detector() -> None:
    global _DETECTOR
    with _DETECTOR_GUARD:
        _DETECTOR = None


class race_detection:
    """Context manager: run a block under a fresh race detector.

    ::

        with race_detection() as det:
            ...concurrent code...
        assert not det.violations
    """

    def __init__(self, mode: str = "strict") -> None:
        self.mode = mode
        self.detector: Optional[RaceDetector] = None
        self._previous: Optional[RaceDetector] = None

    def __enter__(self) -> RaceDetector:
        global _DETECTOR
        with _DETECTOR_GUARD:
            self._previous = _DETECTOR
            self.detector = RaceDetector(self.mode)
            _DETECTOR = self.detector
        return self.detector

    def __exit__(self, *exc_info: Any) -> None:
        global _DETECTOR
        with _DETECTOR_GUARD:
            if _DETECTOR is self.detector:
                _DETECTOR = self._previous


def _env_mode() -> Optional[str]:
    raw = os.environ.get("REPRO_RACE", "").strip().lower()
    if raw in ("1", "on", "strict", "true"):
        return "strict"
    if raw == "warn":
        return "warn"
    return None


_mode = _env_mode()
if _mode is not None:
    install_detector(_mode)
del _mode


# ---------------------------------------------------------------------------
# Tracked locks
# ---------------------------------------------------------------------------

class TrackedLock:
    """A named, levelled ``threading.Lock``.

    Drop-in for the subset of the ``Lock`` API the engine uses
    (``acquire(blocking, timeout)``, ``release``, context manager,
    ``locked``).  ``_is_owned`` makes it a valid ``threading.Condition``
    carrier lock.  Cross-thread release is legal (writer-lock hand-off);
    pass ``assert_owner=True`` for locks that must be released by their
    acquiring thread — violated only under an installed detector.
    """

    __slots__ = ("name", "level", "spec", "assert_owner", "_inner",
                 "_owner", "__weakref__")

    _lock_factory: Callable[[], Any] = staticmethod(threading.Lock)

    def __init__(self, name: str, level: Optional[int] = None,
                 assert_owner: bool = False) -> None:
        if level is None:
            self.spec = spec_for(name)
            self.level = self.spec.level
        else:
            base, _, qualifier = name.partition(":")
            self.spec = LockSpec(base, level, dynamic=bool(qualifier))
            self.level = level
        self.name = name
        self.assert_owner = assert_owner
        self._inner = self._lock_factory()
        self._owner: Optional[int] = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        det = _DETECTOR
        if det is not None:
            det.before_acquire(self, blocking, timeout)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            if det is not None:
                det.on_acquired(self, blocking, timeout)
        return acquired

    def release(self) -> None:
        det = _DETECTOR
        if det is not None:
            if (self.assert_owner and self._owner is not None
                    and self._owner != threading.get_ident()):
                raise LockOrderViolation(
                    f"lock {self.name!r} released by thread "
                    f"{threading.current_thread().name!r} but acquired "
                    f"by another thread (assert_owner)")
            det.on_release(self)
        self._owner = None
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def _is_owned(self) -> bool:
        """``threading.Condition`` support."""
        return self._owner == threading.get_ident()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, "
                f"level={self.level})")


class TrackedRLock(TrackedLock):
    """A named, levelled re-entrant lock."""

    __slots__ = ("_depth",)

    _lock_factory = staticmethod(threading.RLock)

    def __init__(self, name: str, level: Optional[int] = None,
                 assert_owner: bool = False) -> None:
        super().__init__(name, level, assert_owner)
        if not self.spec.reentrant:
            self.spec = LockSpec(
                self.spec.name, self.spec.level, dynamic=self.spec.dynamic,
                timeout_required=self.spec.timeout_required,
                hot=self.spec.hot, reentrant=True, doc=self.spec.doc)
        self._depth = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        det = _DETECTOR
        if det is not None and self._owner != threading.get_ident():
            det.before_acquire(self, blocking, timeout)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._depth += 1
            if det is not None:
                det.on_acquired(self, blocking, timeout)
        return acquired

    def release(self) -> None:
        det = _DETECTOR
        if det is not None:
            det.on_release(self)
        self._depth -= 1
        if self._depth == 0:
            self._owner = None
        self._inner.release()

    def locked(self) -> bool:
        return self._depth > 0

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()


class TrackedCondition(threading.Condition):
    """A ``Condition`` whose carrier lock is a :class:`TrackedLock`.

    ``wait``/``notify`` behave exactly like the stdlib's; the carrier's
    ``_is_owned`` keeps ``Condition`` from probing ownership with an
    untracked try-acquire.
    """

    def __init__(self, name: str, level: Optional[int] = None) -> None:
        self.name = name
        super().__init__(TrackedLock(name, level))


def iter_specs() -> Iterator[LockSpec]:
    """The declared hierarchy, lowest level first (CLI/listing hook)."""
    return iter(sorted(HIERARCHY, key=lambda s: s.level))


@dataclass
class _FieldGuard:
    """Declares that mutations of ``cls.field`` require ``cls.lock_attr``
    to be held.  Consumed by the static pass (guarded-field lint); kept
    here so the runtime hierarchy and the static registry live in one
    module and cannot drift apart."""

    class_name: str
    lock_attr: str
    fields: tuple[str, ...]
    doc: str = ""


#: Shared mutable state and its guarding lock, per class.  The static
#: pass flags any mutation of a listed field outside a ``with
#: self.<lock_attr>`` block (``__init__`` is exempt: the object is not
#: yet shared).
GUARDED_FIELDS: tuple[_FieldGuard, ...] = (
    _FieldGuard("Storage", "_lock",
                ("_tables", "_writer_locks", "data_version")),
    _FieldGuard("Catalog", "_lock",
                ("_tables", "_indexes", "_views", "_matviews",
                 "version")),
    _FieldGuard("CorrectionStore", "_lock", ("_entries", "version")),
    _FieldGuard("_Shard", "lock", ("entries",)),
    _FieldGuard("AdmissionController", "_cv",
                ("_queues", "_rotation", "_closed", "_active", "_shed",
                 "_completed", "_failed")),
    _FieldGuard("ResourcePool", "_cv",
                ("_memory_available", "_rows_available")),
    _FieldGuard("MorselQueue", "_cv",
                ("_next_task", "_results", "_error", "_cancelled")),
    _FieldGuard("QueryServer", "_active_lock", ("_active_requests",)),
    _FieldGuard("Database", "_sessions_lock", ("_open_sessions",)),
    _FieldGuard("FeedbackLoop", "_lock",
                ("plans_recorded", "corrections_recorded",
                 "plans_invalidated", "dropped")),
    _FieldGuard("ConnectionPool", "_cv", ("_free", "_closed")),
    _FieldGuard("MatViewManager", "_stats_lock",
                ("rewrites", "maintained_commits", "refreshes",
                 "auto_created")),
)
