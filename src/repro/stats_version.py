"""Table-statistics snapshots for plan-cache staleness detection.

A cached plan was costed against the table sizes that existed when it was
optimized.  If those sizes drift far enough, the optimizer might pick a
different plan today (join order, index seek vs scan, hash vs stream
aggregate), so the cached plan should be thrown away and rebuilt.  This
module provides the snapshot taken at plan time and the drift test applied
on every cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

#: Relative row-count change that invalidates a cached plan.  0.5 means a
#: table must grow or shrink by more than half its planned size before the
#: plan is considered stale — generous enough that steady trickle inserts
#: do not thrash the cache, tight enough that a bulk load forces a re-cost.
DEFAULT_DRIFT_THRESHOLD = 0.5

RowCountOf = Callable[[str], int]


@dataclass(frozen=True)
class StatsSnapshot:
    """Row counts of the tables a plan references, frozen at plan time."""

    row_counts: Mapping[str, int]

    def tables(self) -> Iterable[str]:
        return self.row_counts.keys()


def capture(row_count_of: RowCountOf,
            table_names: Iterable[str]) -> StatsSnapshot:
    """Snapshot the current row counts of ``table_names``."""
    return StatsSnapshot({name: row_count_of(name)
                          for name in sorted(set(table_names))})


def drifted(snapshot: StatsSnapshot, row_count_of: RowCountOf,
            threshold: float = DEFAULT_DRIFT_THRESHOLD) -> bool:
    """True when any snapshotted table's size moved beyond ``threshold``.

    The change is measured relative to the planned size, with empty tables
    treated as size 1 so that any insert into a planned-empty table trips
    the check (going from 0 rows to any data invalidates every cardinality
    estimate the optimizer made).
    """
    for name, planned in snapshot.row_counts.items():
        current = row_count_of(name)
        if abs(current - planned) > threshold * max(planned, 1):
            return True
    return False
