"""Scalar expression compilation for the physical executor.

``compile_expr`` turns a scalar expression into a Python closure
``fn(row, params) -> value`` where ``row`` is a tuple laid out according to
the operator's column list and ``params`` maps correlation-parameter column
ids to values (bound by ``PNLApply``).  Compiling once per operator keeps
the per-row cost to plain closure calls.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..algebra.datatypes import (ARITHMETIC_FUNCTIONS, sql_and, sql_compare,
                                 sql_not, sql_or)
from ..algebra.scalar import (AggregateCall, And, Arithmetic, Case,
                              ColumnRef, Comparison, Extract, InList,
                              IsNull, Like, Literal, Negate, Not, Or,
                              Parameter, ScalarExpr, parameter_slot)
from ..errors import ExecutionError
from .naive import like_match

Layout = Mapping[int, int]
Compiled = Callable[[tuple, Mapping[int, Any]], Any]


def compile_expr(expr: ScalarExpr, layout: Layout) -> Compiled:
    """Compile ``expr`` against a row layout (column id → tuple position)."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row, params: value

    if isinstance(expr, ColumnRef):
        cid = expr.column.cid
        if cid in layout:
            position = layout[cid]
            return lambda row, params: row[position]

        def read_param(row: tuple, params: Mapping[int, Any]) -> Any:
            try:
                return params[cid]
            except KeyError:
                raise ExecutionError(
                    f"unbound column/parameter {expr.column!r}") from None
        return read_param

    if isinstance(expr, Parameter):
        slot = parameter_slot(expr.index)
        label = expr.sql()

        def read_query_param(row: tuple, params: Mapping[int, Any]) -> Any:
            try:
                return params[slot]
            except KeyError:
                raise ExecutionError(
                    f"unbound query parameter {label}") from None
        return read_query_param

    if isinstance(expr, Comparison):
        op = expr.op
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        return lambda row, params: sql_compare(
            op, left(row, params), right(row, params))

    if isinstance(expr, And):
        compiled = [compile_expr(a, layout) for a in expr.args]

        def eval_and(row: tuple, params: Mapping[int, Any]) -> Any:
            result: Any = True
            for fn in compiled:
                result = sql_and(result, fn(row, params))
                if result is False:
                    return False
            return result
        return eval_and

    if isinstance(expr, Or):
        compiled = [compile_expr(a, layout) for a in expr.args]

        def eval_or(row: tuple, params: Mapping[int, Any]) -> Any:
            result: Any = False
            for fn in compiled:
                result = sql_or(result, fn(row, params))
                if result is True:
                    return True
            return result
        return eval_or

    if isinstance(expr, Not):
        inner = compile_expr(expr.arg, layout)
        return lambda row, params: sql_not(inner(row, params))

    if isinstance(expr, IsNull):
        inner = compile_expr(expr.arg, layout)
        if expr.negated:
            return lambda row, params: inner(row, params) is not None
        return lambda row, params: inner(row, params) is None

    if isinstance(expr, Arithmetic):
        fn = ARITHMETIC_FUNCTIONS[expr.op]
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        return lambda row, params: fn(left(row, params), right(row, params))

    if isinstance(expr, Negate):
        inner = compile_expr(expr.arg, layout)

        def negate(row: tuple, params: Mapping[int, Any]) -> Any:
            value = inner(row, params)
            return None if value is None else -value
        return negate

    if isinstance(expr, Case):
        compiled_whens = [(compile_expr(c, layout), compile_expr(v, layout))
                          for c, v in expr.whens]
        otherwise = (compile_expr(expr.otherwise, layout)
                     if expr.otherwise is not None else None)

        def eval_case(row: tuple, params: Mapping[int, Any]) -> Any:
            for cond, value in compiled_whens:
                if cond(row, params) is True:
                    return value(row, params)
            if otherwise is not None:
                return otherwise(row, params)
            return None
        return eval_case

    if isinstance(expr, Extract):
        inner = compile_expr(expr.arg, layout)
        part = expr.part

        def eval_extract(row: tuple, params: Mapping[str, Any]) -> Any:
            value = inner(row, params)
            if value is None:
                return None
            return getattr(value, part)
        return eval_extract

    if isinstance(expr, Like):
        inner = compile_expr(expr.arg, layout)
        pattern = expr.pattern
        negated = expr.negated

        def eval_like(row: tuple, params: Mapping[int, Any]) -> Any:
            value = inner(row, params)
            if value is None:
                return None
            matched = like_match(pattern, value)
            return not matched if negated else matched
        return eval_like

    if isinstance(expr, InList):
        inner = compile_expr(expr.arg, layout)
        values = expr.values
        has_null = any(v is None for v in values)
        non_null = frozenset(v for v in values if v is not None)
        negated = expr.negated

        def eval_in(row: tuple, params: Mapping[int, Any]) -> Any:
            value = inner(row, params)
            if value is None:
                return None
            result: Any
            if value in non_null:
                result = True
            elif has_null:
                result = None
            else:
                result = False
            return sql_not(result) if negated else result
        return eval_in

    if isinstance(expr, AggregateCall):
        raise ExecutionError(
            "aggregate call cannot be compiled as a row expression")

    raise ExecutionError(
        f"cannot compile {type(expr).__name__}; physical plans must be "
        f"normalized (no embedded subqueries)")


def build_layout(columns) -> dict[int, int]:
    """Column id → tuple position for an operator's output."""
    return {c.cid: i for i, c in enumerate(columns)}
