"""Naive logical-tree interpreter.

Directly interprets a *logical* operator tree, including the
pre-normalization form with relational subtrees embedded in scalar
expressions — the "straightforward execution ... 'nested loops style' ...
mutual recursion between the relational and the scalar execution
components" of paper Section 2.1.

It plays two roles in this reproduction:

* the **correlated execution** baseline of Figure 1 (and of the benchmark
  configurations), and
* the **correctness oracle**: it is an independent implementation of SQL
  semantics against which the normalized/optimized pipeline is
  differentially tested.

Rows are dictionaries from column id to value; clarity over speed is the
point here.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Iterator

from ..algebra.aggregates import descriptor
from ..algebra.columns import Column
from ..algebra.datatypes import (ARITHMETIC_FUNCTIONS, sql_and, sql_compare,
                                 sql_not, sql_or)
from ..algebra.relational import (Apply, ConstantScan, Difference, Get,
                                  GroupBy, Join, JoinKind, LocalGroupBy,
                                  Max1row, Project, RelationalOp,
                                  ScalarGroupBy, SegmentApply, SegmentRef,
                                  Select, Sort, Top, UnionAll)
from ..algebra.scalar import (AggregateCall, And, Arithmetic, Case,
                              ColumnRef, Comparison, ExistsSubquery,
                              Extract, InList, InSubquery, IsNull, Like,
                              Literal, Negate, Not, Or, Parameter,
                              QuantifiedComparison, ScalarExpr,
                              ScalarSubquery, parameter_slot)
from ..errors import ExecutionError, SubqueryReturnedMultipleRows

Row = dict[int, Any]


class NaiveInterpreter:
    """Evaluates logical trees against a table provider.

    ``table_provider`` maps a table name to an iterable of value tuples in
    declaration order (e.g. ``storage.get(name).rows``).
    """

    def __init__(self, table_provider: Callable[[str], Iterable[tuple]],
                 governor=None, profile: dict | None = None) -> None:
        self._table_provider = table_provider
        self._segments: dict[frozenset[int], list[Row]] = {}
        #: Optional ResourceGovernor; base-table scans are metered, which
        #: also covers correlated re-evaluation (each re-open rescans).
        self._governor = governor
        #: Optional ``dict[int, int]``: actual rows produced per logical
        #: node (keyed by ``id(node)``), for EXPLAIN ANALYZE in naive
        #: mode.  ``None`` disables counting — ``rows`` then forwards
        #: straight to the dispatch with no per-row wrapper.
        self._profile = profile

    # -- public API --------------------------------------------------------------

    def run(self, rel: RelationalOp,
            params: Iterable[Any] | None = None) -> list[tuple]:
        """Execute and return rows as tuples in output-column order.

        ``params`` binds query parameters (slot order); they live in the
        environment under negative keys (``parameter_slot``), disjoint
        from column ids.
        """
        from .. import faultinject
        faultinject.hit("executor.naive")
        governor = self._governor
        if governor is not None:
            governor.start()
        env: Row = {}
        if params is not None:
            for i, value in enumerate(params):
                env[parameter_slot(i)] = value
        columns = rel.output_columns()
        source = self.rows(rel, env)
        if governor is not None:
            source = governor.guard(source)
        result = [tuple(row[c.cid] for c in columns) for row in source]
        if governor is not None:
            governor.check_deadline()
        return result

    # -- relational evaluation ----------------------------------------------------

    def rows(self, rel: RelationalOp, env: Row) -> Iterator[Row]:
        """Evaluate ``rel`` with outer parameter bindings ``env``.

        With profiling enabled the produced rows are counted per logical
        node (correlated re-evaluation accumulates, mirroring the
        physical engines' per-open accumulation under NLApply).
        """
        source = self._rows(rel, env)
        if self._profile is None:
            return source
        return self._counted(source, id(rel))

    def _counted(self, source: Iterable[Row], key: int) -> Iterator[Row]:
        n = 0
        try:
            for row in source:
                n += 1
                yield row
        finally:
            profile = self._profile
            if profile is not None:
                profile[key] = profile.get(key, 0) + n

    def _rows(self, rel: RelationalOp, env: Row) -> Iterator[Row]:
        """Dispatch: evaluate one logical operator.

        Yields rows lazily: a Select over a cross product filters row by
        row instead of materializing the product (still naive — no
        indexes, no reordering — but not needlessly exploding memory).
        """
        if isinstance(rel, Get):
            return self._scan(rel)
        if isinstance(rel, ConstantScan):
            return (dict(zip((c.cid for c in rel.columns), row))
                    for row in rel.rows)
        if isinstance(rel, SegmentRef):
            key = frozenset(c.cid for c in rel.columns)
            try:
                return (dict(r) for r in self._segments[key])
            except KeyError:
                raise ExecutionError(
                    "SegmentRef evaluated outside SegmentApply") from None
        if isinstance(rel, Select):
            return (row for row in self.rows(rel.child, env)
                    if self.scalar(rel.predicate, {**env, **row}) is True)
        if isinstance(rel, Project):
            def project():
                for row in self.rows(rel.child, env):
                    merged = {**env, **row}
                    yield {c.cid: self.scalar(e, merged)
                           for c, e in rel.items}
            return project()
        if isinstance(rel, Join):
            return self._join(rel, env)
        if isinstance(rel, Apply):
            return self._apply(rel, env)
        if isinstance(rel, SegmentApply):
            return self._segment_apply(rel, env)
        if isinstance(rel, ScalarGroupBy):
            return self._scalar_groupby(rel, env)
        if isinstance(rel, (GroupBy, LocalGroupBy)):
            return self._groupby(rel, env)
        if isinstance(rel, Max1row):
            def max1():
                produced = 0
                for row in self.rows(rel.child, env):
                    produced += 1
                    if produced > 1:
                        raise SubqueryReturnedMultipleRows()
                    yield row
            return max1()
        if isinstance(rel, Sort):
            return self._sort(rel, env)
        if isinstance(rel, Top):
            import itertools
            return itertools.islice(self.rows(rel.child, env),
                                    rel.offset, rel.offset + rel.count)
        if isinstance(rel, UnionAll):
            return self._union_all(rel, env)
        if isinstance(rel, Difference):
            return self._difference(rel, env)
        raise ExecutionError(f"naive interpreter: unsupported operator "
                             f"{type(rel).__name__}")

    def _scan(self, rel: Get) -> Iterator[Row]:
        cids = [c.cid for c in rel.columns]
        source = self._table_provider(rel.table_name)
        if self._governor is not None:
            source = self._governor.guard_scan(source)
        for values in source:
            yield dict(zip(cids, values))

    def _join(self, rel: Join, env: Row) -> Iterator[Row]:
        right_rows = list(self.rows(rel.right, env))
        for left_row in self.rows(rel.left, env):
            yield from _combine(
                rel.kind, [left_row], right_rows, rel.predicate,
                rel.right.output_columns(),
                lambda pred, row: self.scalar(pred, {**env, **row}))

    def _apply(self, rel: Apply, env: Row) -> Iterator[Row]:
        right_cids = [c.cid for c in rel.right.output_columns()]
        for left_row in self.rows(rel.left, env):
            inner_env = {**env, **left_row}
            if rel.guard is not None and \
                    self.scalar(rel.guard, inner_env) is not True:
                # Conditional execution (paper §2.4): the subexpression is
                # not evaluated at all; the row is NULL-padded.
                padded = dict(left_row)
                padded.update({cid: None for cid in right_cids})
                yield padded
                continue
            right_rows = list(self.rows(rel.right, inner_env))
            yield from _combine(
                rel.kind, [left_row], right_rows, rel.predicate,
                rel.right.output_columns(),
                lambda pred, row: self.scalar(pred, {**inner_env, **row}))

    def _segment_apply(self, rel: SegmentApply, env: Row) -> list[Row]:
        left_rows = self.rows(rel.left, env)
        seg_cids = [c.cid for c in rel.segment_columns]
        left_cids = [c.cid for c in rel.left.output_columns()]
        inner_cids = [c.cid for c in rel.inner_columns]
        ref_key = frozenset(inner_cids)

        segments: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        for row in left_rows:
            key = tuple(row[cid] for cid in seg_cids)
            if key not in segments:
                segments[key] = []
                order.append(key)
            segments[key].append(
                {ic: row[lc] for lc, ic in zip(left_cids, inner_cids)})

        result: list[Row] = []
        previous = self._segments.get(ref_key)
        try:
            for key in order:
                self._segments[ref_key] = segments[key]
                for right_row in self.rows(rel.right, env):
                    out = dict(zip(seg_cids, key))
                    out.update(right_row)
                    result.append(out)
        finally:
            if previous is None:
                self._segments.pop(ref_key, None)
            else:
                self._segments[ref_key] = previous
        return result

    def _scalar_groupby(self, rel: ScalarGroupBy, env: Row) -> list[Row]:
        rows = list(self.rows(rel.child, env))
        out: Row = {}
        for column, call in rel.aggregates:
            out[column.cid] = self._fold(call, rows, env)
        return [out]

    def _groupby(self, rel: GroupBy | LocalGroupBy, env: Row) -> list[Row]:
        rows = self.rows(rel.child, env)
        group_cids = [c.cid for c in rel.group_columns]
        groups: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        for row in rows:
            key = tuple(row[cid] for cid in group_cids)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        result = []
        for key in order:
            out = dict(zip(group_cids, key))
            for column, call in rel.aggregates:
                out[column.cid] = self._fold(call, groups[key], env)
            result.append(out)
        return result

    def _fold(self, call: AggregateCall, rows: list[Row], env: Row) -> Any:
        desc = descriptor(call.func)
        state = desc.initial()
        seen: set | None = set() if call.distinct else None
        for row in rows:
            if call.argument is None:
                value = None  # count(*): value ignored
            else:
                value = self.scalar(call.argument, {**env, **row})
            if seen is not None:
                if value in seen:
                    continue
                seen.add(value)
            state = desc.step(state, value)
        return desc.final(state)

    def _sort(self, rel: Sort, env: Row) -> list[Row]:
        rows = self.rows(rel.child, env)

        def sort_key(row: Row):
            parts = []
            for expr, ascending in rel.keys:
                value = self.scalar(expr, {**env, **row})
                parts.append(_SortValue(value, ascending))
            return parts

        return sorted(rows, key=sort_key)

    def _union_all(self, rel: UnionAll, env: Row) -> list[Row]:
        out_cids = [c.cid for c in rel.columns]
        result = []
        for source, imap in zip(rel.inputs, rel.input_maps):
            source_cids = [c.cid for c in imap]
            for row in self.rows(source, env):
                result.append({out: row[src]
                               for out, src in zip(out_cids, source_cids)})
        return result

    def _difference(self, rel: Difference, env: Row) -> list[Row]:
        out_cids = [c.cid for c in rel.columns]
        left_cids = [c.cid for c in rel.left_map]
        right_cids = [c.cid for c in rel.right_map]
        from collections import Counter

        right_counter: Counter = Counter()
        for row in self.rows(rel.right, env):
            right_counter[tuple(_hashable(row[cid]) for cid in right_cids)] += 1
        result = []
        for row in self.rows(rel.left, env):
            key = tuple(_hashable(row[cid]) for cid in left_cids)
            if right_counter[key] > 0:
                right_counter[key] -= 1
                continue
            result.append({out: row[src]
                           for out, src in zip(out_cids, left_cids)})
        return result

    # -- scalar evaluation -----------------------------------------------------

    def scalar(self, expr: ScalarExpr, env: Row) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Parameter):
            try:
                return env[parameter_slot(expr.index)]
            except KeyError:
                raise ExecutionError(
                    f"unbound query parameter {expr.sql()}") from None
        if isinstance(expr, ColumnRef):
            try:
                return env[expr.column.cid]
            except KeyError:
                raise ExecutionError(
                    f"unbound column {expr.column!r}") from None
        if isinstance(expr, Comparison):
            return sql_compare(expr.op, self.scalar(expr.left, env),
                               self.scalar(expr.right, env))
        if isinstance(expr, And):
            result: Any = True
            for arg in expr.args:
                result = sql_and(result, self.scalar(arg, env))
                if result is False:
                    return False
            return result
        if isinstance(expr, Or):
            result = False
            for arg in expr.args:
                result = sql_or(result, self.scalar(arg, env))
                if result is True:
                    return True
            return result
        if isinstance(expr, Not):
            return sql_not(self.scalar(expr.arg, env))
        if isinstance(expr, IsNull):
            is_null = self.scalar(expr.arg, env) is None
            return not is_null if expr.negated else is_null
        if isinstance(expr, Arithmetic):
            return ARITHMETIC_FUNCTIONS[expr.op](
                self.scalar(expr.left, env), self.scalar(expr.right, env))
        if isinstance(expr, Negate):
            value = self.scalar(expr.arg, env)
            return None if value is None else -value
        if isinstance(expr, Case):
            for condition, value in expr.whens:
                if self.scalar(condition, env) is True:
                    return self.scalar(value, env)
            if expr.otherwise is not None:
                return self.scalar(expr.otherwise, env)
            return None
        if isinstance(expr, Like):
            value = self.scalar(expr.arg, env)
            if value is None:
                return None
            matched = like_match(expr.pattern, value)
            return not matched if expr.negated else matched
        if isinstance(expr, Extract):
            value = self.scalar(expr.arg, env)
            if value is None:
                return None
            return getattr(value, expr.part)
        if isinstance(expr, InList):
            return self._in_list(expr, env)
        if isinstance(expr, ScalarSubquery):
            rows = list(self.rows(expr.query, env))
            if len(rows) > 1:
                raise SubqueryReturnedMultipleRows()
            if not rows:
                return None
            (column,) = expr.query.output_columns()
            return rows[0][column.cid]
        if isinstance(expr, ExistsSubquery):
            exists = any(True for _ in self.rows(expr.query, env))
            return not exists if expr.negated else exists
        if isinstance(expr, InSubquery):
            return self._in_subquery(expr, env)
        if isinstance(expr, QuantifiedComparison):
            return self._quantified(expr, env)
        if isinstance(expr, AggregateCall):
            raise ExecutionError(
                "aggregate evaluated outside a GroupBy operator")
        raise ExecutionError(f"naive interpreter: unsupported expression "
                             f"{type(expr).__name__}")

    def _in_list(self, expr: InList, env: Row) -> Any:
        needle = self.scalar(expr.arg, env)
        result: Any = False
        for value in expr.values:
            result = sql_or(result, sql_compare("=", needle, value))
            if result is True:
                break
        return sql_not(result) if expr.negated else result

    def _in_subquery(self, expr: InSubquery, env: Row) -> Any:
        needle = self.scalar(expr.needle, env)
        (column,) = expr.query.output_columns()
        result: Any = False
        for row in self.rows(expr.query, env):
            result = sql_or(result, sql_compare("=", needle, row[column.cid]))
            if result is True:
                break
        return sql_not(result) if expr.negated else result

    def _quantified(self, expr: QuantifiedComparison, env: Row) -> Any:
        needle = self.scalar(expr.needle, env)
        (column,) = expr.query.output_columns()
        if expr.quantifier == "ANY":
            result: Any = False
            for row in self.rows(expr.query, env):
                result = sql_or(result, sql_compare(
                    expr.op, needle, row[column.cid]))
                if result is True:
                    break
            return result
        result = True
        for row in self.rows(expr.query, env):
            result = sql_and(result, sql_compare(
                expr.op, needle, row[column.cid]))
            if result is False:
                break
        return result


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _combine(kind: JoinKind, left_rows: list[Row], right_rows: list[Row],
             predicate, right_columns: list[Column],
             evaluate) -> list[Row]:
    """Combine left and right row sets under a join kind + predicate."""
    result: list[Row] = []
    right_cids = [c.cid for c in right_columns]
    for left_row in left_rows:
        matches = []
        for right_row in right_rows:
            combined = {**left_row, **right_row}
            if predicate is None or evaluate(predicate, combined) is True:
                matches.append(combined)
        if kind is JoinKind.INNER:
            result.extend(matches)
        elif kind is JoinKind.LEFT_OUTER:
            if matches:
                result.extend(matches)
            else:
                padded = dict(left_row)
                padded.update({cid: None for cid in right_cids})
                result.append(padded)
        elif kind is JoinKind.LEFT_SEMI:
            if matches:
                result.append(dict(left_row))
        elif kind is JoinKind.LEFT_ANTI:
            if not matches:
                result.append(dict(left_row))
        else:  # pragma: no cover
            raise ExecutionError(f"unsupported join kind {kind}")
    return result


class _SortValue:
    """Sort wrapper: NULLs first on ascending, last on descending."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_SortValue") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return self.ascending
        if b is None:
            return not self.ascending
        if self.ascending:
            return a < b
        return b < a

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortValue) and other.value == self.value


def _hashable(value: Any) -> Any:
    return value


def like_match(pattern: str, value: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""
    regex = _like_regex(pattern)
    return regex.fullmatch(value) is not None


_LIKE_CACHE: dict[str, re.Pattern] = {}


def _like_regex(pattern: str) -> re.Pattern:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("".join(parts), re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled
