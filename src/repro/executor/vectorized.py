"""Vectorized (batch-at-a-time) physical plan executor.

The third execution engine: instead of pulling one tuple at a time
(:mod:`.physical`), operators exchange :class:`Batch` objects — a list of
column value lists plus an explicit row count — of at most ``batch_size``
rows (default 1024).  Scans slice column chunks straight off storage,
filters compact batches conjunct-by-conjunct (predicate short-circuiting
at batch granularity), hash join and hash aggregation build on column
arrays, and ``SegmentApply`` binds whole column segments (the paper's
Section 3.4 segmented execution, batched).

Correctness contract: results are *identical*, row for row, to the tuple
executor — same values (shared scalar semantics via
:mod:`.vector_expressions`), same fold order inside aggregates, same
output order.  The differential oracle (tests/test_differential.py)
enforces this across randomly generated queries and the TPC-H corpus.

Operators whose work is inherently per-row — correlated ``NLApply``,
uncorrelated nested loops, full sorts and Top-N — bridge to row form and
reuse the tuple executor's loops; the batched representation pays off on
the scan/filter/project/hash-join/aggregate spine, which is where the
decorrelated plans of the paper spend their time.

Invariants:

* operators never yield empty batches (a scan of an empty table yields
  nothing);
* column lists inside a batch are immutable by convention — operators
  share them freely (a project may return its input's column object) and
  always allocate fresh lists for new data;
* batches are *at most* ``batch_size`` rows from scans, but joins may
  emit larger batches (one output batch per probe batch).

Resource governance is cooperative like the tuple engine, charged per
batch instead of per row: scans consume their chunk sizes, hash builds /
sorts / segment buffers hold and release their materialized row counts,
and the top-level driver meters result rows batch-wise.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from .. import faultinject
from ..algebra.aggregates import AggregateFunction, descriptor
from ..algebra.columns import Column
from ..algebra.relational import JoinKind
from ..algebra.scalar import AggregateCall, parameter_slot
from ..errors import ExecutionError, SubqueryReturnedMultipleRows
from ..physical.plan import (PConstantScan, PDifference, PFilter,
                             PHashAggregate, PHashJoin, PIndexSeek,
                             PMax1row, PNestedLoopsJoin, PNLApply, PProject,
                             PScalarAggregate, PSegmentApply, PSegmentRef,
                             PSort, PStreamAggregate, PTableScan, PTop,
                             PTopN, PUnionAll, PhysicalOp)
from ..storage.columnar import ScanUnit, compile_zone_filters
from ..storage.table import Storage
from .expressions import build_layout, compile_expr
from .morsel import run_morsels
from .naive import _SortValue
from .physical import (ExecutionContext, PhysicalExecutor, _loop_join_row,
                       _TopNEntry)
from .vector_expressions import compile_vector, split_conjuncts

DEFAULT_BATCH_SIZE = 1024


def _contains_segment_ref(plan: PhysicalOp) -> bool:
    if isinstance(plan, PSegmentRef):
        return True
    return any(_contains_segment_ref(c) for c in plan.children)


class Batch:
    """A horizontal slice of a relation in columnar form.

    ``columns[c][i]`` is row ``i``'s value for output column position
    ``c``; ``nrows`` is explicit so zero-column batches (pure-existence
    streams) keep their cardinality.
    """

    __slots__ = ("columns", "nrows")

    def __init__(self, columns: list[list], nrows: int) -> None:
        self.columns = columns
        self.nrows = nrows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({len(self.columns)} cols x {self.nrows} rows)"


def take_batch(batch: Batch, indexes: list[int]) -> Batch:
    """Select rows by position.  ``indexes`` must be strictly increasing
    (a filter mask), so a full-length selection is the identity and the
    input batch is returned unchanged."""
    if len(indexes) == batch.nrows:
        return batch
    return Batch([[col[i] for i in indexes] for col in batch.columns],
                 len(indexes))


def batch_rows(batch: Batch) -> list[tuple]:
    """The batch pivoted back to row tuples."""
    if batch.columns:
        return list(zip(*batch.columns))
    return [()] * batch.nrows


def rows_to_batches(rows: Iterator[tuple], ncols: int,
                    size: int) -> Iterator[Batch]:
    """Re-batch a row stream into column chunks of at most ``size``."""
    while True:
        chunk = list(itertools.islice(rows, size))
        if not chunk:
            return
        if ncols:
            yield Batch([list(c) for c in zip(*chunk)], len(chunk))
        else:
            yield Batch([], len(chunk))


def columns_to_batches(columns: list[list], total: int,
                       size: int) -> Iterator[Batch]:
    """Chunk materialized output columns into batches."""
    if total == 0:
        return
    if total <= size:
        yield Batch(columns, total)
        return
    for start in range(0, total, size):
        stop = min(start + size, total)
        yield Batch([col[start:stop] for col in columns], stop - start)


def _key_iter(batch: Batch, positions: list[int]):
    """Per-row key tuples over the given column positions."""
    if positions:
        return zip(*[batch.columns[p] for p in positions])
    return itertools.repeat((), batch.nrows)


class _VecExecutable:
    """A prepared operator: ``batches(ctx)`` yields output batches."""

    __slots__ = ("batches",)

    def __init__(self,
                 batches: Callable[[ExecutionContext], Iterator[Batch]]):
        self.batches = batches


def _count_batches(source: Iterator[Batch], profile: dict,
                   key: int) -> Iterator[Batch]:
    """Accumulate ``batch.nrows`` per batch into ``profile[key]`` — the
    vectorized engine counts at batch granularity, never per row."""
    n = 0
    try:
        for batch in source:
            n += batch.nrows
            yield batch
    finally:
        profile[key] = profile.get(key, 0) + n


def _vec_profiled(inner: Callable[[ExecutionContext], Iterator[Batch]],
                  key: int) -> Callable[[ExecutionContext], Iterator[Batch]]:
    """Batch-engine twin of the tuple engine's ``_profiled`` wrapper:
    with ``ctx.profile`` unset the raw batch iterator is returned and
    the per-batch path is unchanged."""
    def batches(ctx: ExecutionContext) -> Iterator[Batch]:
        profile = ctx.profile
        if profile is None:
            return inner(ctx)
        return _count_batches(inner(ctx), profile, key)
    return batches


class VectorizedExecutor:
    """Executes physical plans batch-at-a-time against a storage engine.

    Accepts exactly the plans the tuple executor accepts and produces
    identical row lists; only the evaluation shape differs.  No spilling:
    hash aggregation keeps all groups in memory (the tuple engine is the
    spill-capable path).
    """

    def __init__(self, storage: Storage,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 morsel_workers: int = 1) -> None:
        if batch_size < 1:
            raise ExecutionError("batch_size must be at least 1")
        if morsel_workers < 1:
            raise ExecutionError("morsel_workers must be at least 1")
        self._storage = storage
        self._batch_size = batch_size
        self._morsel_workers = morsel_workers
        # Row-engine sibling for the inner side of correlated Apply: it
        # re-executes per outer row over a handful of rows, where batch
        # assembly costs more than it saves (and row form keeps the
        # tuple engine's lazy inner-side semantics).
        self._row_executor = PhysicalExecutor(storage)

    # -- driving ----------------------------------------------------------------

    def run(self, plan: PhysicalOp,
            params: Sequence[Any] | None = None,
            governor=None) -> list[tuple]:
        return self.run_prepared(self.prepare(plan), params, governor)

    def run_prepared(self, executable: _VecExecutable,
                     params: Sequence[Any] | None = None,
                     governor=None, storage=None,
                     profile: dict | None = None) -> list[tuple]:
        """Execute a prepared plan; same contract as the tuple engine's
        ``run_prepared`` (slot-ordered ``params``, cooperative governor,
        rows returned as tuples, optional ``storage`` view override,
        optional per-node ``profile`` row counting)."""
        faultinject.hit("executor.open.vectorized")
        ctx = ExecutionContext(
            governor, storage if storage is not None else self._storage,
            profile)
        if params is not None:
            for i, value in enumerate(params):
                ctx.params[parameter_slot(i)] = value
        out: list[tuple] = []
        if governor is None:
            for batch in executable.batches(ctx):
                out.extend(batch_rows(batch))
            return out
        governor.start()
        for batch in executable.batches(ctx):
            governor.consume_rows(batch.nrows)
            out.extend(batch_rows(batch))
        governor.check_deadline()
        return out

    # -- preparation ------------------------------------------------------------

    def prepare(self, plan: PhysicalOp) -> _VecExecutable:
        method = getattr(self, "_prepare_" + type(plan).__name__, None)
        if method is None:
            raise ExecutionError(
                f"no vectorized executor for physical operator "
                f"{type(plan).__name__}")
        executable = method(plan)
        executable.batches = _vec_profiled(executable.batches, id(plan))
        return executable

    # -- leaves -----------------------------------------------------------------

    def _prepare_PTableScan(self, plan: PTableScan) -> _VecExecutable:
        self._storage.get(plan.table_name)  # validate eagerly
        return _VecExecutable(self._make_scan(plan, None))

    def _make_scan(self, plan: PTableScan, predicate
                   ) -> Callable[[ExecutionContext], Iterator[Batch]]:
        """A scan source over native storage chunks, optionally fused
        with a filter predicate.

        With a predicate, each chunk's zone maps are consulted first: a
        chunk no row of which can satisfy the predicate is skipped
        without decoding.  Skipped rows are still charged to the
        governor and to the scan node's profile count, so `EXPLAIN
        ANALYZE` actuals and budget accounting stay identical to the
        tuple engine (which scans every row).

        With ``morsel_workers > 1`` multi-chunk scans fan chunks out as
        morsels over the shared helper pool (see :mod:`.morsel`); the
        ordered merge plus consumer-side governor/profile charging keep
        parallel output and accounting bit-identical to serial.
        """
        name = plan.table_name
        size = self._batch_size
        if predicate is not None:
            layout = build_layout(plan.columns)
            conjunct_exprs = split_conjuncts(predicate)
            filters = [compile_vector(c, layout) for c in conjunct_exprs]
            prunes = compile_zone_filters(conjunct_exprs, layout)
        else:
            filters = []
            prunes = []
        fused = predicate is not None
        scan_key = id(plan)
        workers = self._morsel_workers

        def process_unit(unit: ScanUnit, params
                         ) -> tuple[list[tuple[int, Optional[Batch]]], bool]:
            """Decode and filter one storage chunk.  Returns the ordered
            (rows_charged, surviving_batch_or_None) steps plus whether
            the chunk was zone-map pruned without decoding — pure, so it
            may run on a morsel helper thread."""
            if prunes and any(fn(unit.zones, params) for fn in prunes):
                return [(unit.nrows, None)], True
            cols = unit.columns()
            total = unit.nrows
            steps: list[tuple[int, Optional[Batch]]] = []
            for start in range(0, total, size):
                stop = min(start + size, total)
                if stop - start == total:
                    # whole-chunk batch: share the decoded lists
                    batch: Optional[Batch] = Batch(cols, total)
                else:
                    batch = Batch([col[start:stop] for col in cols],
                                  stop - start)
                nrows = stop - start
                for conjunct in filters:
                    mask = conjunct(batch, params)
                    keep = [i for i, v in enumerate(mask) if v is True]
                    if not keep:
                        batch = None
                        break
                    batch = take_batch(batch, keep)
                steps.append((nrows, batch))
            return steps, False

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            table = ctx.storage.get(name)
            units = table.scan_units()
            governor = ctx.governor
            profile = ctx.profile if fused else None
            params = ctx.params
            scanned = 0
            skipped = 0
            try:
                if workers > 1 and len(units) > 1:
                    per_unit: Iterator[tuple] = run_morsels(
                        len(units),
                        lambda i: process_unit(units[i], params),
                        workers - 1)
                else:
                    per_unit = (process_unit(unit, params)
                                for unit in units)
                for steps, pruned in per_unit:
                    if pruned:
                        skipped += 1
                    for charged, batch in steps:
                        if governor is not None:
                            governor.consume_rows(charged)
                        scanned += charged
                        if batch is not None:
                            yield batch
            finally:
                if profile is not None:
                    profile[scan_key] = profile.get(scan_key, 0) + scanned
                    if skipped:
                        # Keyed off-row so the frozen per-node wire stats
                        # stay untouched when nothing was skipped.
                        skip_key = ("chunks_skipped", scan_key)
                        profile[skip_key] = (profile.get(skip_key, 0)
                                             + skipped)
        return batches

    def _prepare_PIndexSeek(self, plan: PIndexSeek) -> _VecExecutable:
        table = self._storage.get(plan.table_name)
        name = plan.table_name
        names = [c.name for c in plan.key_columns]
        if table.key_lookup_index(names) is None:
            raise ExecutionError(
                f"no index on {plan.table_name}({', '.join(names)})")
        key_fns = [compile_expr(e, {}) for e in plan.key_exprs]
        position_for = {table.definition.column_index(c.name): fn
                        for c, fn in zip(plan.key_columns, key_fns)}
        residual = (compile_vector(plan.residual,
                                   build_layout(plan.columns))
                    if plan.residual is not None else None)
        empty = ()
        # Per-version index memo, swapped atomically (see the tuple
        # engine's _prepare_PIndexSeek for the concurrency argument).
        resolved: tuple = (None, None)

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            nonlocal resolved
            table = ctx.storage.get(name)
            cached_table, index = resolved
            if table is not cached_table:
                index = table.key_lookup_index(names)
                if index is None:
                    raise ExecutionError(
                        f"no index on {name}({', '.join(names)})")
                resolved = (table, index)
            governor = ctx.governor
            values = {p: fn(empty, ctx.params)
                      for p, fn in position_for.items()}
            key = tuple(values[p] for p in index.positions)
            positions = index.lookup(key)
            if not positions:
                return
            if governor is not None:
                governor.consume_rows(len(positions))
            fetched = [table.rows[p] for p in positions]
            batch = Batch([list(c) for c in zip(*fetched)], len(fetched))
            if residual is not None:
                mask = residual(batch, ctx.params)
                keep = [i for i, v in enumerate(mask) if v is True]
                if not keep:
                    return
                batch = take_batch(batch, keep)
            yield batch
        return _VecExecutable(batches)

    def _prepare_PConstantScan(self, plan: PConstantScan) -> _VecExecutable:
        data = list(plan.rows)
        constant = (Batch([list(c) for c in zip(*data)], len(data))
                    if data else None)

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            if constant is not None:
                yield constant
        return _VecExecutable(batches)

    def _prepare_PSegmentRef(self, plan: PSegmentRef) -> _VecExecutable:
        key = frozenset(c.cid for c in plan.columns)

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            try:
                segment = ctx.segments[key]
            except KeyError:
                raise ExecutionError(
                    "segment reference outside SegmentApply") from None
            yield segment
        return _VecExecutable(batches)

    # -- row-level operators ----------------------------------------------------

    def _prepare_PFilter(self, plan: PFilter) -> _VecExecutable:
        if isinstance(plan.child, PTableScan):
            # Fuse filter into the scan: zone-map chunk skipping plus
            # decode-and-filter morsels.  The scan node's profile count
            # is maintained inside the fused source.
            self._storage.get(plan.child.table_name)  # validate eagerly
            return _VecExecutable(
                self._make_scan(plan.child, plan.predicate))
        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        conjuncts = [compile_vector(c, layout)
                     for c in split_conjuncts(plan.predicate)]

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            params = ctx.params
            for batch in child.batches(ctx):
                for predicate in conjuncts:
                    mask = predicate(batch, params)
                    keep = [i for i, v in enumerate(mask) if v is True]
                    if not keep:
                        batch = None
                        break
                    batch = take_batch(batch, keep)
                if batch is not None:
                    yield batch
        return _VecExecutable(batches)

    def _prepare_PProject(self, plan: PProject) -> _VecExecutable:
        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        fns = [compile_vector(e, layout) for _, e in plan.items]

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            params = ctx.params
            for batch in child.batches(ctx):
                yield Batch([fn(batch, params) for fn in fns], batch.nrows)
        return _VecExecutable(batches)

    # -- joins ------------------------------------------------------------------

    def _prepare_PHashJoin(self, plan: PHashJoin) -> _VecExecutable:
        left = self.prepare(plan.left)
        right = self.prepare(plan.right)
        left_layout = build_layout(plan.left.columns)
        right_layout = build_layout(plan.right.columns)
        left_key_fns = [compile_vector(e, left_layout)
                        for e in plan.left_keys]
        right_key_fns = [compile_vector(e, right_layout)
                         for e in plan.right_keys]
        combined_layout = build_layout(
            list(plan.left.columns) + list(plan.right.columns))
        residual = (compile_vector(plan.residual, combined_layout)
                    if plan.residual is not None else None)
        kind = plan.kind
        n_right = len(plan.right.columns)
        left_only = kind.left_only_output

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            params = ctx.params
            governor = ctx.governor
            # Build on the right: accumulate columns, bucket row indexes.
            # Rows with a NULL key part can never match and are dropped.
            right_cols: list[list] = [[] for _ in range(n_right)]
            buckets: dict[tuple, list[int]] = {}
            setdefault = buckets.setdefault
            total = 0
            built = 0
            for rb in right.batches(ctx):
                keys = list(zip(*[fn(rb, params) for fn in right_key_fns]))
                valid = [i for i, k in enumerate(keys) if None not in k]
                if not valid:
                    continue
                if len(valid) == rb.nrows:
                    for col, vals in zip(right_cols, rb.columns):
                        col.extend(vals)
                else:
                    for col, vals in zip(right_cols, rb.columns):
                        col.extend([vals[i] for i in valid])
                for pos, i in enumerate(valid, start=total):
                    setdefault(keys[i], []).append(pos)
                total += len(valid)
                if governor is not None:
                    governor.hold_rows(len(valid))
                    built += len(valid)
            pad_index = total
            if kind is JoinKind.LEFT_OUTER:
                for col in right_cols:
                    col.append(None)
            get_bucket = buckets.get
            empty_bucket: tuple = ()
            try:
                for lb in left.batches(ctx):
                    keys = zip(*[fn(lb, params) for fn in left_key_fns])
                    li: list[int] = []
                    ri: list[int] = []
                    if residual is None:
                        for i, k in enumerate(keys):
                            bucket = (empty_bucket if None in k
                                      else get_bucket(k, empty_bucket))
                            if kind is JoinKind.INNER:
                                if bucket:
                                    li.extend([i] * len(bucket))
                                    ri.extend(bucket)
                            elif kind is JoinKind.LEFT_OUTER:
                                if bucket:
                                    li.extend([i] * len(bucket))
                                    ri.extend(bucket)
                                else:
                                    li.append(i)
                                    ri.append(pad_index)
                            elif kind is JoinKind.LEFT_SEMI:
                                if bucket:
                                    li.append(i)
                            else:  # LEFT_ANTI
                                if not bucket:
                                    li.append(i)
                    else:
                        # Gather all candidate pairs, evaluate the
                        # residual once over the candidate batch, then
                        # emit per left row in bucket order.
                        cli: list[int] = []
                        cri: list[int] = []
                        bounds: list[tuple[int, int]] = []
                        for i, k in enumerate(keys):
                            bucket = (empty_bucket if None in k
                                      else get_bucket(k, empty_bucket))
                            start = len(cri)
                            if bucket:
                                cli.extend([i] * len(bucket))
                                cri.extend(bucket)
                            bounds.append((start, len(cri)))
                        if cri:
                            candidates = Batch(
                                [[col[i] for i in cli]
                                 for col in lb.columns] +
                                [[col[j] for j in cri]
                                 for col in right_cols],
                                len(cri))
                            mask = residual(candidates, params)
                        else:
                            mask = []
                        for i, (start, stop) in enumerate(bounds):
                            if kind is JoinKind.INNER:
                                for pos in range(start, stop):
                                    if mask[pos] is True:
                                        li.append(cli[pos])
                                        ri.append(cri[pos])
                            elif kind is JoinKind.LEFT_OUTER:
                                matched = False
                                for pos in range(start, stop):
                                    if mask[pos] is True:
                                        li.append(cli[pos])
                                        ri.append(cri[pos])
                                        matched = True
                                if not matched:
                                    li.append(i)
                                    ri.append(pad_index)
                            elif kind is JoinKind.LEFT_SEMI:
                                for pos in range(start, stop):
                                    if mask[pos] is True:
                                        li.append(i)
                                        break
                            else:  # LEFT_ANTI
                                if not any(mask[pos] is True
                                           for pos in range(start, stop)):
                                    li.append(i)
                    if not li:
                        continue
                    out_cols = [[col[i] for i in li] for col in lb.columns]
                    if not left_only:
                        out_cols += [[col[j] for j in ri]
                                     for col in right_cols]
                    yield Batch(out_cols, len(li))
            finally:
                if governor is not None:
                    governor.release_rows(built)
        return _VecExecutable(batches)

    def _prepare_PNestedLoopsJoin(self,
                                  plan: PNestedLoopsJoin) -> _VecExecutable:
        left = self.prepare(plan.left)
        right = self.prepare(plan.right)
        combined_layout = build_layout(
            list(plan.left.columns) + list(plan.right.columns))
        predicate = (compile_expr(plan.predicate, combined_layout)
                     if plan.predicate is not None else None)
        kind = plan.kind
        pad = (None,) * len(plan.right.columns)
        ncols = len(plan.columns)
        size = self._batch_size

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            params = ctx.params
            governor = ctx.governor
            materialized: list[tuple] = []
            for rb in right.batches(ctx):
                if governor is not None:
                    governor.hold_rows(rb.nrows)
                materialized.extend(batch_rows(rb))

            def generate() -> Iterator[tuple]:
                for lb in left.batches(ctx):
                    for row in batch_rows(lb):
                        yield from _loop_join_row(row, materialized,
                                                  predicate, params,
                                                  kind, pad)
            try:
                yield from rows_to_batches(generate(), ncols, size)
            finally:
                if governor is not None:
                    governor.release_rows(len(materialized))
        return _VecExecutable(batches)

    def _prepare_PNLApply(self, plan: PNLApply) -> _VecExecutable:
        left = self.prepare(plan.left)
        # Inner side runs on the row engine unless it reads a segment
        # bound by an enclosing vectorized SegmentApply (segments are
        # stored as batches, which only vectorized SegmentRef can read).
        if _contains_segment_ref(plan.right):
            right_vec = self.prepare(plan.right)

            def inner_factory(ctx: ExecutionContext) -> Iterator[tuple]:
                for rb in right_vec.batches(ctx):
                    yield from batch_rows(rb)
        else:
            right_rows = self._row_executor.prepare(plan.right)
            inner_factory = right_rows.rows
        left_cids = [c.cid for c in plan.left.columns]
        left_layout = build_layout(plan.left.columns)
        combined_layout = build_layout(
            list(plan.left.columns) + list(plan.right.columns))
        predicate = (compile_expr(plan.predicate, combined_layout)
                     if plan.predicate is not None else None)
        guard = (compile_expr(plan.guard, left_layout)
                 if plan.guard is not None else None)
        kind = plan.kind
        pad = (None,) * len(plan.right.columns)
        ncols = len(plan.columns)
        size = self._batch_size

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            params = ctx.params
            governor = ctx.governor
            interval = min(64, governor.check_interval) if governor else 0
            state = {"pending": 0}

            def generate() -> Iterator[tuple]:
                for lb in left.batches(ctx):
                    for row in batch_rows(lb):
                        if governor is not None:
                            state["pending"] += 1
                            if state["pending"] >= interval:
                                governor.consume_rows(state["pending"])
                                state["pending"] = 0
                        if guard is not None and \
                                guard(row, params) is not True:
                            yield row + pad  # §2.4: inner never evaluated
                            continue
                        for cid, value in zip(left_cids, row):
                            params[cid] = value
                        yield from _loop_join_row(row, inner_factory(ctx),
                                                  predicate, params,
                                                  kind, pad)
            try:
                yield from rows_to_batches(generate(), ncols, size)
            finally:
                if state["pending"]:
                    governor.consume_rows(state["pending"])
        return _VecExecutable(batches)

    # -- aggregation ------------------------------------------------------------

    def _prepare_PHashAggregate(self, plan: PHashAggregate) -> _VecExecutable:
        return self._prepare_grouped(plan.child, plan.group_columns,
                                     plan.aggregates)

    def _prepare_grouped(self, child_plan: PhysicalOp,
                         group_columns: Sequence[Column],
                         aggregates) -> _VecExecutable:
        child = self.prepare(child_plan)
        layout = build_layout(child_plan.columns)
        group_positions = [layout[c.cid] for c in group_columns]
        arg_fns, specs = _aggregate_specs(aggregates, layout)
        n_args = len(arg_fns)
        n_groups_cols = len(group_positions)
        size = self._batch_size

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            params = ctx.params
            governor = ctx.governor
            groups: dict[tuple, int] = {}
            keys_list: list[tuple] = []
            counts: list[int] = []
            stores: list[list[list]] = [[] for _ in range(n_args)]
            get_gid = groups.get
            held = 0
            try:
                for batch in child.batches(ctx):
                    valcols = [fn(batch, params) for fn in arg_fns]
                    keys = _key_iter(batch, group_positions)
                    fresh = 0
                    if n_args == 1:
                        store0 = stores[0]
                        col0 = valcols[0]
                        for i, key in enumerate(keys):
                            gid = get_gid(key)
                            if gid is None:
                                gid = len(keys_list)
                                groups[key] = gid
                                keys_list.append(key)
                                counts.append(0)
                                store0.append([])
                                fresh += 1
                            counts[gid] += 1
                            store0[gid].append(col0[i])
                    elif n_args == 0:
                        for key in keys:
                            gid = get_gid(key)
                            if gid is None:
                                gid = len(keys_list)
                                groups[key] = gid
                                keys_list.append(key)
                                counts.append(0)
                                fresh += 1
                            counts[gid] += 1
                    else:
                        for i, key in enumerate(keys):
                            gid = get_gid(key)
                            if gid is None:
                                gid = len(keys_list)
                                groups[key] = gid
                                keys_list.append(key)
                                counts.append(0)
                                for store in stores:
                                    store.append([])
                                fresh += 1
                            counts[gid] += 1
                            for store, col in zip(stores, valcols):
                                store[gid].append(col[i])
                    # Memory scales with distinct groups, not input rows:
                    # charge per new group, batched.
                    if governor is not None and fresh:
                        governor.hold_rows(fresh)
                        held += fresh
                n_groups = len(keys_list)
                if n_groups == 0:
                    return
                if n_groups_cols:
                    out_cols = [list(c) for c in zip(*keys_list)]
                else:
                    out_cols = []
                for reduce_fn, arg_index in specs:
                    if arg_index is None:
                        out_cols.append([reduce_fn(None, counts[g])
                                         for g in range(n_groups)])
                    else:
                        store = stores[arg_index]
                        out_cols.append([reduce_fn(store[g], counts[g])
                                         for g in range(n_groups)])
                yield from columns_to_batches(out_cols, n_groups, size)
            finally:
                if governor is not None:
                    governor.release_rows(held)
        return _VecExecutable(batches)

    def _prepare_PStreamAggregate(self,
                                  plan: PStreamAggregate) -> _VecExecutable:
        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        group_positions = [layout[c.cid] for c in plan.group_columns]
        arg_fns, specs = _aggregate_specs(plan.aggregates, layout)
        n_args = len(arg_fns)
        n_out = len(plan.columns)
        size = self._batch_size
        unset = object()

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            params = ctx.params
            out_cols: list[list] = [[] for _ in range(n_out)]
            emitted = 0
            current_key: Any = unset
            count = 0
            vals: list[list] = [[] for _ in range(n_args)]

            def finalize() -> None:
                nonlocal emitted
                position = 0
                for part in current_key:
                    out_cols[position].append(part)
                    position += 1
                for reduce_fn, arg_index in specs:
                    value = reduce_fn(
                        vals[arg_index] if arg_index is not None else None,
                        count)
                    out_cols[position].append(value)
                    position += 1
                emitted += 1

            for batch in child.batches(ctx):
                valcols = [fn(batch, params) for fn in arg_fns]
                for i, key in enumerate(_key_iter(batch, group_positions)):
                    if key != current_key:
                        if current_key is not unset:
                            finalize()
                        current_key = key
                        count = 0
                        vals = [[] for _ in range(n_args)]
                    count += 1
                    for store, col in zip(vals, valcols):
                        store.append(col[i])
            if current_key is not unset:
                finalize()
            yield from columns_to_batches(out_cols, emitted, size)
        return _VecExecutable(batches)

    def _prepare_PScalarAggregate(self,
                                  plan: PScalarAggregate) -> _VecExecutable:
        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        arg_fns, specs = _aggregate_specs(plan.aggregates, layout)
        n_args = len(arg_fns)

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            params = ctx.params
            count = 0
            vals: list[list] = [[] for _ in range(n_args)]
            for batch in child.batches(ctx):
                valcols = [fn(batch, params) for fn in arg_fns]
                count += batch.nrows
                for store, col in zip(vals, valcols):
                    store.extend(col)
            # Exactly one output row, even over empty input.
            yield Batch(
                [[reduce_fn(vals[arg_index]
                            if arg_index is not None else None, count)]
                 for reduce_fn, arg_index in specs],
                1)
        return _VecExecutable(batches)

    # -- ordering and limits ----------------------------------------------------

    def _prepare_PSort(self, plan: PSort) -> _VecExecutable:
        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        compiled = [(compile_expr(e, layout), asc) for e, asc in plan.keys]
        ncols = len(plan.columns)
        size = self._batch_size

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            params = ctx.params
            governor = ctx.governor

            def sort_key(row: tuple):
                return [_SortValue(fn(row, params), asc)
                        for fn, asc in compiled]
            data: list[tuple] = []
            for batch in child.batches(ctx):
                if governor is not None:
                    governor.hold_rows(batch.nrows)
                data.extend(batch_rows(batch))
            try:
                data.sort(key=sort_key)
                yield from rows_to_batches(iter(data), ncols, size)
            finally:
                if governor is not None:
                    governor.release_rows(len(data))
        return _VecExecutable(batches)

    def _prepare_PTop(self, plan: PTop) -> _VecExecutable:
        child = self.prepare(plan.child)
        count = plan.count
        offset = plan.offset

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            to_skip = offset
            remaining = count
            if remaining <= 0:
                return
            for batch in child.batches(ctx):
                if to_skip >= batch.nrows:
                    to_skip -= batch.nrows
                    continue
                start = to_skip
                to_skip = 0
                stop = min(batch.nrows, start + remaining)
                if start == 0 and stop == batch.nrows:
                    out = batch
                else:
                    out = Batch([col[start:stop] for col in batch.columns],
                                stop - start)
                remaining -= out.nrows
                yield out
                if remaining <= 0:
                    return
        return _VecExecutable(batches)

    def _prepare_PTopN(self, plan: PTopN) -> _VecExecutable:
        import heapq

        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        compiled = [(compile_expr(e, layout), asc) for e, asc in plan.keys]
        keep = plan.count + plan.offset
        offset = plan.offset
        ncols = len(plan.columns)
        size = self._batch_size

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            if keep == 0:
                return
            params = ctx.params

            def sort_key(row: tuple):
                return [_SortValue(fn(row, params), asc)
                        for fn, asc in compiled]
            heap: list = []
            sequence = 0
            for batch in child.batches(ctx):
                for row in batch_rows(batch):
                    entry = _TopNEntry(sort_key(row), sequence, row)
                    sequence += 1
                    if len(heap) < keep:
                        heapq.heappush(heap, entry)
                    elif heap[0].worse_than(entry):
                        heapq.heapreplace(heap, entry)
            ordered = sorted(heap, key=lambda e: (e.key, e.sequence))
            yield from rows_to_batches(
                iter([e.row for e in ordered[offset:]]), ncols, size)
        return _VecExecutable(batches)

    def _prepare_PMax1row(self, plan: PMax1row) -> _VecExecutable:
        child = self.prepare(plan.child)

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            produced = 0
            for batch in child.batches(ctx):
                produced += batch.nrows
                if produced > 1:
                    raise SubqueryReturnedMultipleRows()
                yield batch
        return _VecExecutable(batches)

    # -- set operations ---------------------------------------------------------

    def _prepare_PUnionAll(self, plan: PUnionAll) -> _VecExecutable:
        prepared = []
        for source, imap in zip(plan.inputs, plan.input_maps):
            layout = build_layout(source.columns)
            positions = [layout[c.cid] for c in imap]
            prepared.append((self.prepare(source), positions))

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            for source, positions in prepared:
                for batch in source.batches(ctx):
                    yield Batch([batch.columns[p] for p in positions],
                                batch.nrows)
        return _VecExecutable(batches)

    def _prepare_PDifference(self, plan: PDifference) -> _VecExecutable:
        left = self.prepare(plan.left)
        right = self.prepare(plan.right)
        left_layout = build_layout(plan.left.columns)
        right_layout = build_layout(plan.right.columns)
        left_positions = [left_layout[c.cid] for c in plan.left_map]
        right_positions = [right_layout[c.cid] for c in plan.right_map]
        ncols = len(plan.columns)

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            remaining: Counter = Counter()
            for batch in right.batches(ctx):
                for key in _key_iter(batch, right_positions):
                    remaining[key] += 1
            for batch in left.batches(ctx):
                survivors: list[tuple] = []
                for key in _key_iter(batch, left_positions):
                    if remaining[key] > 0:
                        remaining[key] -= 1
                        continue
                    survivors.append(key)
                if survivors:
                    if ncols:
                        yield Batch([list(c) for c in zip(*survivors)],
                                    len(survivors))
                    else:
                        yield Batch([], len(survivors))
        return _VecExecutable(batches)

    # -- segmented execution ----------------------------------------------------

    def _prepare_PSegmentApply(self, plan: PSegmentApply) -> _VecExecutable:
        left = self.prepare(plan.left)
        right = self.prepare(plan.right)
        left_layout = build_layout(plan.left.columns)
        seg_positions = [left_layout[c.cid] for c in plan.segment_columns]
        ref_key = frozenset(c.cid for c in plan.inner_columns)
        n_left = len(plan.left.columns)
        n_seg = len(plan.segment_columns)

        def batches(ctx: ExecutionContext) -> Iterator[Batch]:
            governor = ctx.governor
            # Buffer the left input columnar, partition row indexes by
            # segment key in first-appearance order.
            acc_cols: list[list] = [[] for _ in range(n_left)]
            segments: dict[tuple, list[int]] = {}
            order: list[tuple] = []
            total = 0
            held = 0
            for batch in left.batches(ctx):
                for col, vals in zip(acc_cols, batch.columns):
                    col.extend(vals)
                for i, key in enumerate(_key_iter(batch, seg_positions),
                                        start=total):
                    bucket = segments.get(key)
                    if bucket is None:
                        segments[key] = bucket = []
                        order.append(key)
                    bucket.append(i)
                total += batch.nrows
                if governor is not None:
                    governor.hold_rows(batch.nrows)
                    held += batch.nrows
            previous = ctx.segments.get(ref_key)
            try:
                for key in order:
                    indexes = segments[key]
                    ctx.segments[ref_key] = Batch(
                        [[col[i] for i in indexes] for col in acc_cols],
                        len(indexes))
                    for inner in right.batches(ctx):
                        yield Batch(
                            [[key[j]] * inner.nrows for j in range(n_seg)] +
                            list(inner.columns),
                            inner.nrows)
            finally:
                if previous is None:
                    ctx.segments.pop(ref_key, None)
                else:
                    ctx.segments[ref_key] = previous
                if governor is not None:
                    governor.release_rows(held)
        return _VecExecutable(batches)


# -- batched aggregate reduction ------------------------------------------------

def _aggregate_specs(aggregates: Sequence[tuple[Column, AggregateCall]],
                     layout):
    """Compile aggregate argument expressions and per-call reducers.

    Returns ``(arg_fns, specs)``: ``arg_fns`` are the batch-compiled
    argument expressions (one per aggregate *with* an argument) and each
    spec is ``(reduce_fn, arg_index)`` where ``reduce_fn(values, count)``
    folds one group's value list — ``arg_index`` is ``None`` for
    ``count(*)`` (no values collected, row count suffices).

    Reducers reproduce the fold semantics of
    :class:`~repro.algebra.aggregates.AggregateDescriptor` exactly
    (builtin ``sum``/``min``/``max`` over the non-NULL values in input
    order equals the left fold, including float evaluation order), so
    both engines compute identical aggregate values.
    """
    arg_fns = []
    specs = []
    for _, call in aggregates:
        if call.argument is None:
            specs.append((_make_reducer(call.func, call.distinct), None))
        else:
            arg_index = len(arg_fns)
            arg_fns.append(compile_vector(call.argument, layout))
            specs.append((_make_reducer(call.func, call.distinct),
                          arg_index))
    return arg_fns, specs


def _dedupe(values: list) -> list:
    """First occurrence of each value, in input order (NULL included),
    mirroring the tuple engine's distinct-tracking set."""
    seen: set = set()
    add = seen.add
    out = []
    append = out.append
    for v in values:
        if v not in seen:
            add(v)
            append(v)
    return out


def _make_reducer(func: AggregateFunction, distinct: bool):
    if func is AggregateFunction.COUNT_STAR:
        if distinct:
            # Degenerate count(distinct *): the shared fold dedupes its
            # (absent) argument, collapsing all rows to one.
            return lambda values, count: 1 if count else 0
        return lambda values, count: count

    if func is AggregateFunction.COUNT:
        def reduce_count(values: list, count: int):
            if distinct:
                values = _dedupe(values)
            return len(values) - values.count(None)
        return reduce_count

    if func is AggregateFunction.SUM:
        def reduce_sum(values: list, count: int):
            if distinct:
                values = _dedupe(values)
            non_null = [v for v in values if v is not None]
            return sum(non_null) if non_null else None
        return reduce_sum

    if func is AggregateFunction.MIN:
        def reduce_min(values: list, count: int):
            if distinct:
                values = _dedupe(values)
            non_null = [v for v in values if v is not None]
            return min(non_null) if non_null else None
        return reduce_min

    if func is AggregateFunction.MAX:
        def reduce_max(values: list, count: int):
            if distinct:
                values = _dedupe(values)
            non_null = [v for v in values if v is not None]
            return max(non_null) if non_null else None
        return reduce_max

    if func is AggregateFunction.AVG:
        def reduce_avg(values: list, count: int):
            if distinct:
                values = _dedupe(values)
            non_null = [v for v in values if v is not None]
            if not non_null:
                return None
            return sum(non_null) / len(non_null)
        return reduce_avg

    raise ExecutionError(f"unhandled aggregate {func}")  # pragma: no cover
