"""Morsel-driven parallel scans (Leis et al., *Morsel-Driven Parallelism*).

A parallel scan splits its storage chunks into *morsels* — independent
decode-and-filter tasks — published on a per-query :class:`MorselQueue`.
Helper jobs run on a process-wide :class:`AdmissionController` worker
pool (the same bounded-pool machinery the server uses for admission,
instantiated separately so query-internal parallelism can never deadlock
against server admission), each draining the queue until no tasks
remain.  The consumer — the thread iterating the scan — merges results
in task order, so parallel output is bit-identical to serial output even
for order-sensitive consumers (Sort, TopN, streaming aggregates).

Deadlock-freedom does not depend on the helpers at all: the consumer
*helps*.  Whenever its next in-order result is missing it first tries to
claim an unclaimed task and process it inline; it blocks on the
condition variable only when every remaining task is already claimed by
a live worker, and every claimed task terminates in ``complete`` or
``fail``.  Zero helpers (a saturated pool, a shed submission) therefore
degrades to plain serial execution, never to a hang.

Lock discipline: ``morsel.queue`` (level 74, declared in
:data:`repro.concurrency.HIERARCHY`) guards each queue's task cursor,
result map and error/cancel flags; workers and the consumer hold no
other lock while touching it.  ``morsel.pool`` (level 73) guards lazy
construction of the shared helper pool.
"""

from __future__ import annotations

import itertools
import os
from typing import Any, Callable, Iterator, Optional

from ..concurrency import TrackedCondition, TrackedLock
from ..errors import ReproError
from ..server.admission import AdmissionController

#: Workers in the shared helper pool.  Helpers are pure CPU, so sizing
#: past the core count buys nothing; the floor keeps small machines from
#: serializing multi-worker tests.
DEFAULT_POOL_WORKERS = max(4, os.cpu_count() or 1)

_queue_ids = itertools.count(1)

_pool_lock = TrackedLock("morsel.pool")
_pool: Optional[AdmissionController] = None


def helper_pool() -> AdmissionController:
    """The process-wide morsel helper pool (created on first use; its
    workers are daemon threads, so it lives for the process)."""
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = AdmissionController(
                max_workers=DEFAULT_POOL_WORKERS,
                max_queue_depth=max(64, 4 * DEFAULT_POOL_WORKERS))
        return _pool


class MorselQueue:
    """One query's morsel work queue with ordered result hand-off.

    Tasks are the integers ``0..ntasks-1``; workers :meth:`claim` the
    next unclaimed index, process it, and :meth:`complete` (or
    :meth:`fail`) it.  The consumer collects results strictly in index
    order via :meth:`take`/:meth:`wait`.  ``cancel`` stops further
    claims when the consumer abandons the scan (early LIMIT cutoff, an
    error downstream); results completed after cancellation are simply
    dropped with the queue.
    """

    def __init__(self, ntasks: int) -> None:
        self._cv = TrackedCondition(f"morsel.queue:{next(_queue_ids)}")
        self._ntasks = ntasks
        self._next_task = 0
        self._results: dict[int, Any] = {}
        self._error: Optional[BaseException] = None
        self._cancelled = False

    def claim(self) -> Optional[int]:
        """The next unclaimed task index, or ``None`` when none remain
        (all claimed, cancelled, or failed)."""
        with self._cv:
            if self._cancelled or self._error is not None \
                    or self._next_task >= self._ntasks:
                return None
            index = self._next_task
            self._next_task += 1
            return index

    def complete(self, index: int, result: Any) -> None:
        with self._cv:
            self._results[index] = result
            self._cv.notify_all()

    def fail(self, error: BaseException) -> None:
        """Record a task failure; the first error wins and is re-raised
        on the consumer thread."""
        with self._cv:
            if self._error is None:
                self._error = error
            self._cv.notify_all()

    def cancel(self) -> None:
        with self._cv:
            self._cancelled = True
            self._cv.notify_all()

    def take(self, index: int) -> tuple[bool, Any]:
        """Non-blocking: ``(True, result)`` when ``index`` is ready."""
        with self._cv:
            if self._error is not None:
                raise self._error
            if index in self._results:
                return True, self._results.pop(index)
            return False, None

    def wait(self, index: int) -> Any:
        """Block until result ``index`` arrives.  Only legal when the
        task is claimed by a live worker (the consumer's helping loop
        guarantees this), so the wait always terminates."""
        with self._cv:
            while True:
                if self._error is not None:
                    raise self._error
                if index in self._results:
                    return self._results.pop(index)
                self._cv.wait()


def drain(queue: MorselQueue, process: Callable[[int], Any]) -> None:
    """Helper-job body: claim and process tasks until none remain."""
    while True:
        index = queue.claim()
        if index is None:
            return
        try:
            queue.complete(index, process(index))
        except BaseException as exc:
            queue.fail(exc)
            return


def run_morsels(ntasks: int, process: Callable[[int], Any],
                helpers: int) -> Iterator[Any]:
    """Process ``0..ntasks-1`` with up to ``helpers`` pool workers and
    yield the results in task order (the ordered merge).

    The consumer helps: it claims tasks itself while its next in-order
    result is missing, and waits only for tasks already claimed by a
    worker.  Failed helper submissions (overload, shutdown, an injected
    fault) just reduce parallelism.
    """
    queue = MorselQueue(ntasks)
    if helpers > 0:
        pool = helper_pool()
        for _ in range(min(helpers, ntasks - 1)):
            try:
                pool.submit("morsels", lambda: drain(queue, process))
            except ReproError:
                break  # shed or shut down: run with fewer helpers
    try:
        for index in range(ntasks):
            while True:
                ready, result = queue.take(index)
                if ready:
                    break
                claimed = queue.claim()
                if claimed is None:
                    # Everything up to ``index`` is claimed by workers.
                    result = queue.wait(index)
                    break
                try:
                    queue.complete(claimed, process(claimed))
                except BaseException as exc:
                    queue.fail(exc)
                    raise
            yield result
    finally:
        queue.cancel()
