"""Execution engines: the naive logical interpreter (oracle/baseline) and
the physical iterator engine."""

from .naive import NaiveInterpreter, like_match

__all__ = ["NaiveInterpreter", "like_match"]
