"""Execution engines: the naive logical interpreter (oracle/baseline),
the physical iterator engine, and the vectorized batch engine."""

from .naive import NaiveInterpreter, like_match
from .vectorized import Batch, VectorizedExecutor

__all__ = ["Batch", "NaiveInterpreter", "VectorizedExecutor", "like_match"]
