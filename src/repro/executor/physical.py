"""Iterator-based physical plan executor.

``PhysicalExecutor.prepare`` compiles a physical plan once — expressions
become closures, layouts become position maps — and returns an executable
whose ``rows(ctx)`` can be iterated many times (crucial for the inner side
of ``PNLApply``, which re-opens per outer row).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterator, Optional, Sequence

from .. import faultinject
from ..algebra.aggregates import descriptor
from ..algebra.columns import Column
from ..algebra.relational import JoinKind
from ..algebra.scalar import AggregateCall, parameter_slot
from ..errors import ExecutionError, SubqueryReturnedMultipleRows
from ..physical.plan import (PConstantScan, PDifference, PFilter,
                             PHashAggregate, PHashJoin, PIndexSeek,
                             PMax1row, PNestedLoopsJoin, PNLApply, PProject,
                             PScalarAggregate, PSegmentApply, PSegmentRef,
                             PSort, PStreamAggregate, PTableScan, PTop,
                             PUnionAll, PhysicalOp)
from ..storage.table import Storage
from .expressions import build_layout, compile_expr
from .naive import _SortValue


class ExecutionContext:
    """Per-run mutable state: correlation parameters, current segments,
    the optional per-query resource governor, and the storage view the
    run reads from."""

    __slots__ = ("params", "segments", "governor", "storage", "profile")

    def __init__(self, governor=None, storage=None, profile=None) -> None:
        self.params: dict[int, Any] = {}
        #: Current segment per SegmentRef column set: a list of row
        #: tuples under the tuple engine, a columnar Batch under the
        #: vectorized engine (each engine only reads what it wrote).
        self.segments: dict[frozenset[int], Any] = {}
        #: ResourceGovernor | None — checked cooperatively by operators.
        self.governor = governor
        #: Where leaf operators resolve tables *at open time*: the live
        #: :class:`~repro.storage.table.Storage` or a pinned
        #: :class:`~repro.storage.table.StorageSnapshot`.  Run-time
        #: resolution is what makes one cached executable serve both the
        #: latest data and any session snapshot.
        self.storage = storage
        #: ``dict[int, int] | None`` — actual rows produced per plan
        #: node, keyed by ``id(node)``.  ``None`` (the default) disables
        #: row counting entirely; EXPLAIN ANALYZE and feedback-enabled
        #: executions pass a dict (see repro.feedback).
        self.profile = profile


class _Executable:
    """A prepared operator: ``rows(ctx)`` yields output tuples."""

    __slots__ = ("rows",)

    def __init__(self, rows: Callable[[ExecutionContext], Iterator[tuple]]):
        self.rows = rows


def _count_rows(source: Iterator[tuple], profile: dict,
                key: int) -> Iterator[tuple]:
    """Count the rows flowing out of one operator into ``profile[key]``.

    The count lands in the ``finally`` so early-terminated consumers
    (Top, Max1row, semi-join probes) still record the rows they actually
    pulled before closing the iterator.
    """
    n = 0
    try:
        for row in source:
            n += 1
            yield row
    finally:
        profile[key] = profile.get(key, 0) + n


def _profiled(inner: Callable[[ExecutionContext], Iterator[tuple]],
              key: int) -> Callable[[ExecutionContext], Iterator[tuple]]:
    """Wrap a prepared ``rows(ctx)`` callable with per-node row counting.

    With profiling off (``ctx.profile is None`` — the default) the cost
    per operator *open* is one extra call and one attribute test; the
    raw iterator is returned untouched, so the per-row path is
    completely unchanged.
    """
    def rows(ctx: ExecutionContext) -> Iterator[tuple]:
        profile = ctx.profile
        if profile is None:
            return inner(ctx)
        return _count_rows(inner(ctx), profile, key)
    return rows


class PhysicalExecutor:
    """Executes physical plans against a storage engine.

    ``aggregate_spill_threshold`` bounds the in-memory group count of hash
    aggregation: when exceeded, the current partial states are flushed as
    a run and recombined at the end via the aggregates' *local/global*
    merge — the paper's footnote 3 ("the implementation ... requires this
    ability of splitting an aggregate into local and global components, if
    it has to spill data to disk and then recombine it").  ``None``
    disables spilling (all groups stay in memory).
    """

    def __init__(self, storage: Storage,
                 aggregate_spill_threshold: int | None = None) -> None:
        self._storage = storage
        self._spill_threshold = aggregate_spill_threshold

    def run(self, plan: PhysicalOp,
            params: Sequence[Any] | None = None,
            governor=None) -> list[tuple]:
        return self.run_prepared(self.prepare(plan), params, governor)

    def run_prepared(self, executable: _Executable,
                     params: Sequence[Any] | None = None,
                     governor=None, storage=None,
                     profile: dict | None = None) -> list[tuple]:
        """Execute a prepared plan, optionally binding query parameters.

        ``params`` is a sequence in slot order; slot ``i`` is published to
        expression evaluation under ``parameter_slot(i)`` so one compiled
        plan can run under many bindings.  With a ``governor`` the run is
        metered cooperatively: result rows count against the row budget
        (catching output explosions above any guarded operator) and the
        deadline gets a final deterministic check even for empty results.
        ``storage`` overrides where table scans and seeks resolve their
        data — pass a pinned snapshot to run against it; the executor's
        live storage is the default.  ``profile`` (a dict) enables
        per-node actual-row counting for EXPLAIN ANALYZE and the
        cardinality-feedback loop; counts accumulate keyed by plan-node
        id.
        """
        faultinject.hit("executor.open")
        ctx = ExecutionContext(
            governor, storage if storage is not None else self._storage,
            profile)
        if params is not None:
            for i, value in enumerate(params):
                ctx.params[parameter_slot(i)] = value
        if governor is None:
            return list(executable.rows(ctx))
        governor.start()
        rows = governor.guard_into_list(executable.rows(ctx))
        governor.check_deadline()
        return rows

    # -- preparation ------------------------------------------------------------

    def prepare(self, plan: PhysicalOp) -> _Executable:
        method = getattr(self, "_prepare_" + type(plan).__name__, None)
        if method is None:
            raise ExecutionError(
                f"no executor for physical operator {type(plan).__name__}")
        executable = method(plan)
        executable.rows = _profiled(executable.rows, id(plan))
        return executable

    def _prepare_PTableScan(self, plan: PTableScan) -> _Executable:
        self._storage.get(plan.table_name)  # validate eagerly
        name = plan.table_name

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            table = ctx.storage.get(name)
            governor = ctx.governor
            if governor is None:
                return iter(table.rows)
            return governor.guard_scan(table.rows)
        return _Executable(rows)

    def _prepare_PIndexSeek(self, plan: PIndexSeek) -> _Executable:
        table = self._storage.get(plan.table_name)
        name = plan.table_name
        names = [c.name for c in plan.key_columns]
        if table.key_lookup_index(names) is None:
            raise ExecutionError(
                f"no index on {plan.table_name}({', '.join(names)})")
        layout = build_layout(plan.columns)
        key_fns = [compile_expr(e, {}) for e in plan.key_exprs]
        position_for = {table.definition.column_index(c.name): fn
                        for c, fn in zip(plan.key_columns, key_fns)}
        residual = (compile_expr(plan.residual, layout)
                    if plan.residual is not None else None)
        empty = ()
        # Table versions are immutable once installed, so the per-version
        # index resolution is memoized as one atomically-swapped tuple;
        # concurrent runs over different snapshots stay consistent because
        # each reads the (version, index) pair it resolved.
        resolved: tuple = (None, None)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            nonlocal resolved
            table = ctx.storage.get(name)
            cached_table, index = resolved
            if table is not cached_table:
                index = table.key_lookup_index(names)
                if index is None:
                    raise ExecutionError(
                        f"no index on {name}({', '.join(names)})")
                resolved = (table, index)
            governor = ctx.governor
            values = {p: fn(empty, ctx.params)
                      for p, fn in position_for.items()}
            key = tuple(values[p] for p in index.positions)
            positions = index.lookup(key)
            if governor is not None and positions:
                governor.consume_rows(len(positions))
            table_rows = table.rows
            for position in positions:
                row = table_rows[position]
                if residual is None or residual(row, ctx.params) is True:
                    yield row
        return _Executable(rows)

    def _prepare_PConstantScan(self, plan: PConstantScan) -> _Executable:
        data = list(plan.rows)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            return iter(data)
        return _Executable(rows)

    def _prepare_PSegmentRef(self, plan: PSegmentRef) -> _Executable:
        key = frozenset(c.cid for c in plan.columns)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            try:
                return iter(ctx.segments[key])
            except KeyError:
                raise ExecutionError(
                    "segment reference outside SegmentApply") from None
        return _Executable(rows)

    def _prepare_PFilter(self, plan: PFilter) -> _Executable:
        child = self.prepare(plan.child)
        predicate = compile_expr(plan.predicate,
                                 build_layout(plan.child.columns))

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            params = ctx.params
            for row in child.rows(ctx):
                if predicate(row, params) is True:
                    yield row
        return _Executable(rows)

    def _prepare_PProject(self, plan: PProject) -> _Executable:
        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        fns = [compile_expr(e, layout) for _, e in plan.items]

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            params = ctx.params
            for row in child.rows(ctx):
                yield tuple(fn(row, params) for fn in fns)
        return _Executable(rows)

    def _prepare_PHashJoin(self, plan: PHashJoin) -> _Executable:
        left = self.prepare(plan.left)
        right = self.prepare(plan.right)
        left_layout = build_layout(plan.left.columns)
        right_layout = build_layout(plan.right.columns)
        left_keys = [compile_expr(e, left_layout) for e in plan.left_keys]
        right_keys = [compile_expr(e, right_layout) for e in plan.right_keys]
        combined_layout = build_layout(
            list(plan.left.columns) + list(plan.right.columns))
        residual = (compile_expr(plan.residual, combined_layout)
                    if plan.residual is not None else None)
        kind = plan.kind
        pad = (None,) * len(plan.right.columns)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            params = ctx.params
            governor = ctx.governor
            table: dict[tuple, list[tuple]] = {}
            built = 0      # build-side rows charged to the memory budget
            pending = 0    # charged in batches to keep the hot loop cheap
            for row in right.rows(ctx):
                key = tuple(fn(row, params) for fn in right_keys)
                if any(part is None for part in key):
                    continue
                table.setdefault(key, []).append(row)
                if governor is not None:
                    pending += 1
                    if pending >= 1024:
                        governor.hold_rows(pending)
                        built += pending
                        pending = 0
            if governor is not None and pending:
                governor.hold_rows(pending)
                built += pending
            try:
                for row in left.rows(ctx):
                    key = tuple(fn(row, params) for fn in left_keys)
                    bucket = (table.get(key, ())
                              if not any(p is None for p in key) else ())
                    if kind is JoinKind.INNER:
                        for match in bucket:
                            combined = row + match
                            if residual is None or \
                                    residual(combined, params) is True:
                                yield combined
                    elif kind is JoinKind.LEFT_OUTER:
                        matched = False
                        for match in bucket:
                            combined = row + match
                            if residual is None or \
                                    residual(combined, params) is True:
                                matched = True
                                yield combined
                        if not matched:
                            yield row + pad
                    elif kind is JoinKind.LEFT_SEMI:
                        for match in bucket:
                            if residual is None or \
                                    residual(row + match, params) is True:
                                yield row
                                break
                    else:  # LEFT_ANTI
                        if not any(residual is None or
                                   residual(row + match, params) is True
                                   for match in bucket):
                            yield row
            finally:
                if governor is not None:
                    governor.release_rows(built)
        return _Executable(rows)

    def _prepare_PNestedLoopsJoin(self, plan: PNestedLoopsJoin) -> _Executable:
        left = self.prepare(plan.left)
        right = self.prepare(plan.right)
        combined_layout = build_layout(
            list(plan.left.columns) + list(plan.right.columns))
        predicate = (compile_expr(plan.predicate, combined_layout)
                     if plan.predicate is not None else None)
        kind = plan.kind
        pad = (None,) * len(plan.right.columns)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            params = ctx.params
            governor = ctx.governor
            if governor is None:
                materialized = list(right.rows(ctx))
            else:
                materialized = governor.hold_into_list(right.rows(ctx))
            try:
                for row in left.rows(ctx):
                    yield from _loop_join_row(row, materialized, predicate,
                                              params, kind, pad)
            finally:
                if governor is not None:
                    governor.release_rows(len(materialized))
        return _Executable(rows)

    def _prepare_PNLApply(self, plan: PNLApply) -> _Executable:
        left = self.prepare(plan.left)
        right = self.prepare(plan.right)
        left_cids = [c.cid for c in plan.left.columns]
        left_layout = build_layout(plan.left.columns)
        combined_layout = build_layout(
            list(plan.left.columns) + list(plan.right.columns))
        predicate = (compile_expr(plan.predicate, combined_layout)
                     if plan.predicate is not None else None)
        guard = (compile_expr(plan.guard, left_layout)
                 if plan.guard is not None else None)
        kind = plan.kind
        pad = (None,) * len(plan.right.columns)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            params = ctx.params
            governor = ctx.governor
            # Cooperative checks per outer row: correlated loops can spin
            # for a long time without touching a guarded scan.  Charged
            # in small batches so the per-row cost is an integer add.
            interval = min(64, governor.check_interval) if governor else 0
            pending = 0
            try:
                for row in left.rows(ctx):
                    if governor is not None:
                        pending += 1
                        if pending >= interval:
                            governor.consume_rows(pending)
                            pending = 0
                    if guard is not None and guard(row, params) is not True:
                        yield row + pad  # §2.4: inner side never evaluated
                        continue
                    for cid, value in zip(left_cids, row):
                        params[cid] = value
                    inner = right.rows(ctx)
                    yield from _loop_join_row(row, inner, predicate, params,
                                              kind, pad)
            finally:
                if pending:
                    governor.consume_rows(pending)
        return _Executable(rows)

    def _prepare_PHashAggregate(self, plan: PHashAggregate) -> _Executable:
        return self._prepare_grouped(plan.child, plan.group_columns,
                                     plan.aggregates)

    def _prepare_PStreamAggregate(self, plan: PStreamAggregate) -> _Executable:
        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        group_positions = [layout[c.cid] for c in plan.group_columns]
        folder = _AggregateFolder(plan.aggregates, layout)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            params = ctx.params
            current_key: tuple | None = None
            states = None
            any_rows = False
            for row in child.rows(ctx):
                any_rows = True
                key = tuple(row[p] for p in group_positions)
                if key != current_key:
                    if states is not None:
                        yield current_key + folder.finalize(states)
                    current_key = key
                    states = folder.initial()
                folder.step(states, row, params)
            if any_rows and states is not None:
                yield current_key + folder.finalize(states)
        return _Executable(rows)

    def _prepare_grouped(self, child_plan: PhysicalOp,
                         group_columns: Sequence[Column],
                         aggregates) -> _Executable:
        child = self.prepare(child_plan)
        layout = build_layout(child_plan.columns)
        group_positions = [layout[c.cid] for c in group_columns]
        folder = _AggregateFolder(aggregates, layout)
        # Distinct aggregates track seen-value sets that cannot be merged
        # across spilled runs without double counting; they pin the groups
        # in memory (real engines sort instead).
        spill_threshold = (self._spill_threshold
                           if not folder.has_distinct else None)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            params = ctx.params
            governor = ctx.governor
            held = 0
            runs: list[dict[tuple, Any]] = []
            groups: dict[tuple, Any] = {}
            try:
                for row in child.rows(ctx):
                    key = tuple(row[p] for p in group_positions)
                    states = groups.get(key)
                    if states is None:
                        if spill_threshold is not None and \
                                len(groups) >= spill_threshold:
                            runs.append(groups)  # flush partial aggregates
                            groups = {}
                        states = folder.initial()
                        groups[key] = states
                        # Memory scales with distinct groups, not input
                        # rows: charge the budget per group state.
                        if governor is not None:
                            governor.hold_rows(1)
                            held += 1
                    folder.step(states, row, params)
                if runs:
                    runs.append(groups)
                    groups = {}
                    for run in runs:
                        for key, states in run.items():
                            existing = groups.get(key)
                            if existing is None:
                                groups[key] = states
                            else:
                                folder.merge_into(existing, states)
                for key, states in groups.items():
                    yield key + folder.finalize(states)
            finally:
                if governor is not None:
                    governor.release_rows(held)
        return _Executable(rows)

    def _prepare_PScalarAggregate(self, plan: PScalarAggregate) -> _Executable:
        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        folder = _AggregateFolder(plan.aggregates, layout)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            params = ctx.params
            states = folder.initial()
            for row in child.rows(ctx):
                folder.step(states, row, params)
            yield folder.finalize(states)
        return _Executable(rows)

    def _prepare_PSort(self, plan: PSort) -> _Executable:
        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        compiled = [(compile_expr(e, layout), asc) for e, asc in plan.keys]

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            params = ctx.params
            governor = ctx.governor

            def sort_key(row: tuple):
                return [_SortValue(fn(row, params), asc)
                        for fn, asc in compiled]
            if governor is None:
                return iter(sorted(child.rows(ctx), key=sort_key))

            def governed() -> Iterator[tuple]:
                data = governor.hold_into_list(child.rows(ctx))
                data.sort(key=sort_key)
                try:
                    yield from data
                finally:
                    governor.release_rows(len(data))
            return governed()
        return _Executable(rows)

    def _prepare_PTop(self, plan: PTop) -> _Executable:
        child = self.prepare(plan.child)
        count = plan.count
        offset = plan.offset

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            import itertools
            return itertools.islice(child.rows(ctx), offset,
                                    offset + count)
        return _Executable(rows)

    def _prepare_PTopN(self, plan) -> _Executable:
        import heapq

        child = self.prepare(plan.child)
        layout = build_layout(plan.child.columns)
        compiled = [(compile_expr(e, layout), asc) for e, asc in plan.keys]
        keep = plan.count + plan.offset

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            if keep == 0:
                return iter(())
            params = ctx.params

            def sort_key(row: tuple):
                return [_SortValue(fn(row, params), asc)
                        for fn, asc in compiled]

            # Bounded heap of the best `keep` rows.  The min-heap root is
            # the *worst* kept entry under the inverted key, so a better
            # row replaces it in O(log keep).  Earlier input order breaks
            # ties (stable like the full sort).
            heap: list = []
            sequence = 0
            for row in child.rows(ctx):
                entry = _TopNEntry(sort_key(row), sequence, row)
                sequence += 1
                if len(heap) < keep:
                    heapq.heappush(heap, entry)
                elif heap[0].worse_than(entry):
                    heapq.heapreplace(heap, entry)
            ordered = sorted(heap, key=lambda e: (e.key, e.sequence))
            return iter([e.row for e in ordered[plan.offset:]])
        return _Executable(rows)

    def _prepare_PMax1row(self, plan: PMax1row) -> _Executable:
        child = self.prepare(plan.child)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            produced = 0
            for row in child.rows(ctx):
                produced += 1
                if produced > 1:
                    raise SubqueryReturnedMultipleRows()
                yield row
        return _Executable(rows)

    def _prepare_PUnionAll(self, plan: PUnionAll) -> _Executable:
        prepared = []
        for source, imap in zip(plan.inputs, plan.input_maps):
            layout = build_layout(source.columns)
            positions = [layout[c.cid] for c in imap]
            prepared.append((self.prepare(source), positions))

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            for source, positions in prepared:
                for row in source.rows(ctx):
                    yield tuple(row[p] for p in positions)
        return _Executable(rows)

    def _prepare_PDifference(self, plan: PDifference) -> _Executable:
        left = self.prepare(plan.left)
        right = self.prepare(plan.right)
        left_layout = build_layout(plan.left.columns)
        right_layout = build_layout(plan.right.columns)
        left_positions = [left_layout[c.cid] for c in plan.left_map]
        right_positions = [right_layout[c.cid] for c in plan.right_map]

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            remaining: Counter = Counter()
            for row in right.rows(ctx):
                remaining[tuple(row[p] for p in right_positions)] += 1
            for row in left.rows(ctx):
                key = tuple(row[p] for p in left_positions)
                if remaining[key] > 0:
                    remaining[key] -= 1
                    continue
                yield key
        return _Executable(rows)

    def _prepare_PSegmentApply(self, plan: PSegmentApply) -> _Executable:
        left = self.prepare(plan.left)
        right = self.prepare(plan.right)
        left_layout = build_layout(plan.left.columns)
        seg_positions = [left_layout[c.cid] for c in plan.segment_columns]
        ref_key = frozenset(c.cid for c in plan.inner_columns)

        def rows(ctx: ExecutionContext) -> Iterator[tuple]:
            governor = ctx.governor
            segments: dict[tuple, list[tuple]] = {}
            order: list[tuple] = []
            held = 0
            source = (left.rows(ctx) if governor is None
                      else governor.hold_iter(left.rows(ctx)))
            for row in source:
                key = tuple(row[p] for p in seg_positions)
                bucket = segments.get(key)
                if bucket is None:
                    bucket = []
                    segments[key] = bucket
                    order.append(key)
                bucket.append(row)
                held += 1
            previous = ctx.segments.get(ref_key)
            try:
                for key in order:
                    ctx.segments[ref_key] = segments[key]
                    for inner_row in right.rows(ctx):
                        yield key + inner_row
            finally:
                if previous is None:
                    ctx.segments.pop(ref_key, None)
                else:
                    ctx.segments[ref_key] = previous
                if governor is not None:
                    governor.release_rows(held)
        return _Executable(rows)


def _loop_join_row(row: tuple, inner_rows, predicate, params,
                   kind: JoinKind, pad: tuple) -> Iterator[tuple]:
    if kind is JoinKind.INNER:
        for match in inner_rows:
            combined = row + match
            if predicate is None or predicate(combined, params) is True:
                yield combined
    elif kind is JoinKind.LEFT_OUTER:
        matched = False
        for match in inner_rows:
            combined = row + match
            if predicate is None or predicate(combined, params) is True:
                matched = True
                yield combined
        if not matched:
            yield row + pad
    elif kind is JoinKind.LEFT_SEMI:
        for match in inner_rows:
            if predicate is None or predicate(row + match, params) is True:
                yield row
                return
    else:  # LEFT_ANTI
        for match in inner_rows:
            if predicate is None or predicate(row + match, params) is True:
                return
        yield row


class _TopNEntry:
    """Heap entry for Top-N: min-heap ordering puts the WORST kept row at
    the root (inverted comparison; later sequence = worse on ties)."""

    __slots__ = ("key", "sequence", "row")

    def __init__(self, key: list, sequence: int, row: tuple) -> None:
        self.key = key
        self.sequence = sequence
        self.row = row

    def __lt__(self, other: "_TopNEntry") -> bool:
        # Inverted: "less" in the heap means "worse" in sort order.
        if self.key == other.key:
            return self.sequence > other.sequence
        return other.key < self.key

    def worse_than(self, other: "_TopNEntry") -> bool:
        """Whether `self` sorts after `other` (so `other` should replace
        it among the kept best rows)."""
        if self.key == other.key:
            return self.sequence > other.sequence
        return other.key < self.key


class _AggregateFolder:
    """Shared fold machinery for hash/stream/scalar aggregation."""

    def __init__(self, aggregates: Sequence[tuple[Column, AggregateCall]],
                 layout) -> None:
        self._specs = []
        self.has_distinct = False
        for _, call in aggregates:
            desc = descriptor(call.func)
            argument = (compile_expr(call.argument, layout)
                        if call.argument is not None else None)
            self._specs.append((desc, argument, call.distinct))
            self.has_distinct = self.has_distinct or call.distinct

    def initial(self) -> list:
        return [(desc.initial(), set() if distinct else None)
                for desc, _, distinct in self._specs]

    def step(self, states: list, row: tuple, params) -> None:
        for i, (desc, argument, distinct) in enumerate(self._specs):
            value = argument(row, params) if argument is not None else None
            state, seen = states[i]
            if seen is not None:
                if value in seen:
                    continue
                seen.add(value)
            states[i] = (desc.step(state, value), seen)

    def merge_into(self, target: list, other: list) -> None:
        """Combine spilled partial states (never used with distinct)."""
        for i, (desc, _, _) in enumerate(self._specs):
            state, seen = target[i]
            other_state, _ = other[i]
            target[i] = (desc.merge(state, other_state), seen)

    def finalize(self, states: list) -> tuple:
        return tuple(desc.final(state)
                     for (desc, _, _), (state, _)
                     in zip(self._specs, states))
