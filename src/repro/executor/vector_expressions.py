"""Scalar expression compilation for the vectorized executor.

``compile_vector`` turns a scalar expression into a closure
``fn(batch, params) -> list`` that evaluates the expression over a whole
column batch at once and returns one output value per row.  ``batch`` is a
:class:`~repro.executor.vectorized.Batch` (list-of-columns), ``params``
maps correlation-parameter column ids / query-parameter slots to values.

Semantics are identical to the row compiler (:mod:`.expressions`): the
same three-valued-logic helpers and NULL-propagating arithmetic are
applied elementwise, so a query answered by either engine produces the
same values.  The speed comes from the evaluation shape: one Python-level
loop (a list comprehension or a C-level ``map``) per operator per batch
instead of a closure-call tree per row.

Returned column lists must be treated as immutable — a compiled
``ColumnRef`` hands back the batch's own column list without copying, and
combinators always allocate fresh output lists.

Conditional evaluation (CASE) is preserved at batch granularity: branch
values are evaluated only over the rows whose condition selected them
(via gather/scatter), so a guarded division never runs on rows its guard
excludes — the batched analogue of the paper's Section 2.4 conditional
scalar execution.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..algebra.datatypes import (ARITHMETIC_FUNCTIONS, sql_and, sql_compare,
                                 sql_not, sql_or)
from ..algebra.scalar import (AggregateCall, And, Arithmetic, Case,
                              ColumnRef, Comparison, Extract, InList,
                              IsNull, Like, Literal, Negate, Not, Or,
                              Parameter, ScalarExpr, parameter_slot)
from ..errors import ExecutionError
from .naive import _like_regex

if TYPE_CHECKING:  # pragma: no cover
    from .vectorized import Batch

Layout = Mapping[int, int]
CompiledVector = Callable[["Batch", Mapping[int, Any]], list]

_COMPARE_FUNCTIONS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compile_vector(expr: ScalarExpr, layout: Layout) -> CompiledVector:
    """Compile ``expr`` against a batch layout (column id → column position)."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda batch, params: [value] * batch.nrows

    if isinstance(expr, ColumnRef):
        cid = expr.column.cid
        if cid in layout:
            position = layout[cid]
            return lambda batch, params: batch.columns[position]

        def read_param(batch: "Batch", params: Mapping[int, Any]) -> list:
            try:
                return [params[cid]] * batch.nrows
            except KeyError:
                raise ExecutionError(
                    f"unbound column/parameter {expr.column!r}") from None
        return read_param

    if isinstance(expr, Parameter):
        slot = parameter_slot(expr.index)
        label = expr.sql()

        def read_query_param(batch: "Batch",
                             params: Mapping[int, Any]) -> list:
            try:
                return [params[slot]] * batch.nrows
            except KeyError:
                raise ExecutionError(
                    f"unbound query parameter {label}") from None
        return read_query_param

    if isinstance(expr, Comparison):
        fn = _COMPARE_FUNCTIONS[expr.op]
        # Literal operands are common (filter constants) and hoistable.
        if isinstance(expr.right, Literal):
            rv = expr.right.value
            left = compile_vector(expr.left, layout)
            if rv is None:
                return lambda batch, params: [None] * batch.nrows
            return lambda batch, params: [
                None if a is None else fn(a, rv)
                for a in left(batch, params)]
        if isinstance(expr.left, Literal):
            lv = expr.left.value
            right = compile_vector(expr.right, layout)
            if lv is None:
                return lambda batch, params: [None] * batch.nrows
            return lambda batch, params: [
                None if b is None else fn(lv, b)
                for b in right(batch, params)]
        left = compile_vector(expr.left, layout)
        right = compile_vector(expr.right, layout)
        return lambda batch, params: [
            None if a is None or b is None else fn(a, b)
            for a, b in zip(left(batch, params), right(batch, params))]

    if isinstance(expr, And):
        compiled = [compile_vector(a, layout) for a in expr.args]

        def eval_and(batch: "Batch", params: Mapping[int, Any]) -> list:
            acc = list(compiled[0](batch, params))
            for fn in compiled[1:]:
                # batch-level short-circuit: all rows already FALSE
                if all(v is False for v in acc):
                    return acc
                acc = [sql_and(x, y)
                       for x, y in zip(acc, fn(batch, params))]
            return acc
        return eval_and

    if isinstance(expr, Or):
        compiled = [compile_vector(a, layout) for a in expr.args]

        def eval_or(batch: "Batch", params: Mapping[int, Any]) -> list:
            acc = list(compiled[0](batch, params))
            for fn in compiled[1:]:
                if all(v is True for v in acc):
                    return acc
                acc = [sql_or(x, y)
                       for x, y in zip(acc, fn(batch, params))]
            return acc
        return eval_or

    if isinstance(expr, Not):
        inner = compile_vector(expr.arg, layout)
        return lambda batch, params: [sql_not(v)
                                      for v in inner(batch, params)]

    if isinstance(expr, IsNull):
        inner = compile_vector(expr.arg, layout)
        if expr.negated:
            return lambda batch, params: [v is not None
                                          for v in inner(batch, params)]
        return lambda batch, params: [v is None
                                      for v in inner(batch, params)]

    if isinstance(expr, Arithmetic):
        fn = ARITHMETIC_FUNCTIONS[expr.op]
        if isinstance(expr.right, Literal) and expr.right.value is not None:
            rv = expr.right.value
            left = compile_vector(expr.left, layout)
            return lambda batch, params: [fn(a, rv)
                                          for a in left(batch, params)]
        if isinstance(expr.left, Literal) and expr.left.value is not None:
            lv = expr.left.value
            right = compile_vector(expr.right, layout)
            return lambda batch, params: [fn(lv, b)
                                          for b in right(batch, params)]
        left = compile_vector(expr.left, layout)
        right = compile_vector(expr.right, layout)
        return lambda batch, params: [
            fn(a, b)
            for a, b in zip(left(batch, params), right(batch, params))]

    if isinstance(expr, Negate):
        inner = compile_vector(expr.arg, layout)
        return lambda batch, params: [None if v is None else -v
                                      for v in inner(batch, params)]

    if isinstance(expr, Case):
        compiled_whens = [(compile_vector(c, layout),
                           compile_vector(v, layout))
                          for c, v in expr.whens]
        otherwise = (compile_vector(expr.otherwise, layout)
                     if expr.otherwise is not None else None)

        def eval_case(batch: "Batch", params: Mapping[int, Any]) -> list:
            from .vectorized import take_batch

            result: list = [None] * batch.nrows
            remaining = list(range(batch.nrows))
            for cond, value in compiled_whens:
                if not remaining:
                    break
                sub = take_batch(batch, remaining)
                conds = cond(sub, params)
                chosen = [row for row, v in zip(remaining, conds)
                          if v is True]
                if chosen:
                    values = value(take_batch(batch, chosen), params)
                    for row, v in zip(chosen, values):
                        result[row] = v
                remaining = [row for row, v in zip(remaining, conds)
                             if v is not True]
            if otherwise is not None and remaining:
                values = otherwise(take_batch(batch, remaining), params)
                for row, v in zip(remaining, values):
                    result[row] = v
            return result
        return eval_case

    if isinstance(expr, Extract):
        inner = compile_vector(expr.arg, layout)
        part = expr.part
        return lambda batch, params: [
            None if v is None else getattr(v, part)
            for v in inner(batch, params)]

    if isinstance(expr, Like):
        inner = compile_vector(expr.arg, layout)
        match = _like_regex(expr.pattern).fullmatch
        if expr.negated:
            return lambda batch, params: [
                None if v is None else match(v) is None
                for v in inner(batch, params)]
        return lambda batch, params: [
            None if v is None else match(v) is not None
            for v in inner(batch, params)]

    if isinstance(expr, InList):
        inner = compile_vector(expr.arg, layout)
        values = expr.values
        has_null = any(v is None for v in values)
        non_null = frozenset(v for v in values if v is not None)
        negated = expr.negated

        def eval_in(batch: "Batch", params: Mapping[int, Any]) -> list:
            out = []
            for v in inner(batch, params):
                if v is None:
                    result: Any = None
                elif v in non_null:
                    result = True
                elif has_null:
                    result = None
                else:
                    result = False
                out.append(sql_not(result) if negated else result)
            return out
        return eval_in

    if isinstance(expr, AggregateCall):
        raise ExecutionError(
            "aggregate call cannot be compiled as a batch expression")

    raise ExecutionError(
        f"cannot compile {type(expr).__name__} for batched execution; "
        f"physical plans must be normalized (no embedded subqueries)")


def split_conjuncts(expr: ScalarExpr) -> list[ScalarExpr]:
    """Flatten nested ANDs into a conjunct list.

    Filtering keeps only rows where the whole predicate is TRUE, and an
    AND is TRUE exactly when every conjunct is TRUE — so a filter may
    apply conjuncts one at a time, compacting the batch between them
    (predicate short-circuiting at batch granularity).
    """
    if isinstance(expr, And):
        out: list[ScalarExpr] = []
        for arg in expr.args:
            out.extend(split_conjuncts(arg))
        return out
    return [expr]
