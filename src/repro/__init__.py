"""Reproduction of *Orthogonal Optimization of Subqueries and Aggregation*
(Galindo-Legaria & Joshi, SIGMOD 2001).

A complete SQL query processor in Python: parser, algebrizer, algebraic
decorrelation via the Apply operator (identities (1)–(9)), comprehensive
GroupBy optimization (reordering around joins and outerjoins, local/global
aggregate splitting, segmented execution via SegmentApply), a Volcano-style
cost-based optimizer and an iterator execution engine.

Quickstart::

    from repro import Database, DataType

    db = Database()
    db.create_table("t", [("a", DataType.INTEGER), ("b", DataType.INTEGER)],
                    primary_key=("a",))
    db.insert("t", [(1, 10), (2, 20)])
    result = db.execute("select a from t where b > 15")
    print(result.rows)
"""

from .algebra import DataType, Interval
from .database import (CORRELATED, DECORRELATE_ONLY, ENGINES, FULL, MODES,
                       NAIVE, Database, ExecutionMode, PreparedStatement,
                       QueryResult)
from .errors import (BindError, CatalogError, ExecutionError,
                     InjectedFault, OptimizerBudgetExceeded,
                     ParameterError, PlanError, QueryTimeout, ReproError,
                     ResourceError, ResourceExhausted, SqlSyntaxError,
                     SubqueryReturnedMultipleRows)
from .governor import OptimizerBudget, QueryStats, ResourceGovernor
from .plancache import PlanCache

__version__ = "1.2.0"

__all__ = ["BindError", "CORRELATED", "CatalogError", "DECORRELATE_ONLY",
           "DataType", "Database", "ENGINES", "ExecutionError",
           "ExecutionMode",
           "FULL", "InjectedFault", "Interval", "MODES", "NAIVE",
           "OptimizerBudget", "OptimizerBudgetExceeded", "ParameterError",
           "PlanCache", "PlanError", "PreparedStatement", "QueryResult",
           "QueryStats", "QueryTimeout", "ReproError", "ResourceError",
           "ResourceExhausted", "ResourceGovernor", "SqlSyntaxError",
           "SubqueryReturnedMultipleRows", "__version__"]
