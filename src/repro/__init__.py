"""Reproduction of *Orthogonal Optimization of Subqueries and Aggregation*
(Galindo-Legaria & Joshi, SIGMOD 2001).

A complete SQL query processor in Python: parser, algebrizer, algebraic
decorrelation via the Apply operator (identities (1)–(9)), comprehensive
GroupBy optimization (reordering around joins and outerjoins, local/global
aggregate splitting, segmented execution via SegmentApply), a Volcano-style
cost-based optimizer and an iterator execution engine.

Quickstart::

    from repro import Database, DataType

    db = Database()
    db.create_table("t", [("a", DataType.INTEGER), ("b", DataType.INTEGER)],
                    primary_key=("a",))
    db.insert("t", [(1, 10), (2, 20)])
    result = db.execute("select a from t where b > 15")
    print(result.rows)
"""

from .algebra import DataType, Interval
from .catalog.statistics import CardinalityCorrection, CorrectionStore
from .database import (CORRELATED, DECORRELATE_ONLY, ENGINES, FULL, MODES,
                       NAIVE, Database, ExecutionMode, ExplainOptions,
                       PreparedStatement, QueryResult)
from .feedback import (DEFAULT_Q_ERROR_THRESHOLD, FeedbackLoop,
                       NodeFeedback, PlanFeedback, q_error)
from .errors import (BindError, CatalogError, DurabilityError,
                     ExecutionError, InjectedFault,
                     OptimizerBudgetExceeded, ParameterError, PlanError,
                     ProtocolError, QueryTimeout, RecoveryError,
                     ReproError, ResourceError, ResourceExhausted,
                     ServerError, ServerOverloaded, SessionClosed,
                     SqlSyntaxError, SubqueryReturnedMultipleRows,
                     TransactionConflict, TransactionError)
from .governor import OptimizerBudget, QueryStats, ResourceGovernor
from .matview import MatViewError
from .plancache import PlanCache
# Imported last: the server package itself imports Database, so this
# keeps the import graph acyclic.
from .server import QueryServer, RetryPolicy, ServerClient, Session

__version__ = "1.5.0"

__all__ = ["BindError", "CORRELATED", "CardinalityCorrection",
           "CatalogError", "CorrectionStore", "DECORRELATE_ONLY",
           "DEFAULT_Q_ERROR_THRESHOLD",
           "DataType", "Database", "DurabilityError", "ENGINES",
           "ExecutionError",
           "ExecutionMode", "ExplainOptions", "FeedbackLoop",
           "FULL", "InjectedFault", "Interval", "MODES", "MatViewError",
           "NAIVE", "NodeFeedback",
           "OptimizerBudget", "OptimizerBudgetExceeded", "ParameterError",
           "PlanCache", "PlanError", "PlanFeedback",
           "PreparedStatement", "ProtocolError",
           "QueryResult", "QueryServer",
           "QueryStats", "QueryTimeout", "RecoveryError", "ReproError",
           "ResourceError",
           "ResourceExhausted", "ResourceGovernor", "RetryPolicy",
           "ServerClient",
           "ServerError", "ServerOverloaded", "Session", "SessionClosed",
           "SqlSyntaxError", "SubqueryReturnedMultipleRows",
           "TransactionConflict", "TransactionError", "__version__",
           "q_error"]
