"""Per-query resource governance: timeouts, budgets and execution stats.

A :class:`ResourceGovernor` travels with one query through optimization and
execution.  It is checked *cooperatively*: the optimizer ticks it once per
rule application, executors pass row streams through :meth:`guard` and
account for buffered rows at materialization points (sorts, hash tables,
aggregates, spools).  Checks are batched — counters are plain integer
adds, and the wall clock is consulted only every ``check_interval`` rows —
so governed execution stays within a few percent of ungoverned execution
(``benchmarks/test_governor_overhead.py`` keeps this honest).

Limit violations raise :class:`~repro.errors.QueryTimeout` or
:class:`~repro.errors.ResourceExhausted`; optimizer-budget violations
raise :class:`~repro.errors.OptimizerBudgetExceeded`, which
``Database.execute`` converts into a graceful fallback to a heuristic
plan instead of a failure (see DESIGN.md, "Resource governor").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Iterator, Optional

from .errors import (OptimizerBudgetExceeded, QueryTimeout,
                     ResourceExhausted)

#: How many rows flow between wall-clock checks.  Budget counters are
#: exact; only the (comparatively expensive) deadline check is batched.
DEFAULT_CHECK_INTERVAL = 1024

#: How many optimizer ticks flow between wall-clock checks.
OPTIMIZER_CHECK_INTERVAL = 128


@dataclass(frozen=True)
class OptimizerBudget:
    """Task budget for cost-based optimization.

    ``max_rule_applications`` bounds total transformation-rule
    applications across all memo variants of one query;
    ``max_memo_groups`` bounds the number of groups any single memo may
    create.  Both defaults sit far above what the TPC-H workload needs
    while still stopping a combinatorial blow-up in seconds.
    """

    max_rule_applications: int = 200_000
    max_memo_groups: int = 10_000


@dataclass
class QueryStats:
    """Observable per-query execution statistics (``QueryResult.stats``).

    ``rows_examined``/``peak_rows_buffered``/``rule_applications``/
    ``memo_groups`` are only collected when the query ran under a
    governor (``governed`` is True); they read 0 otherwise.
    """

    elapsed_seconds: float = 0.0
    degraded: bool = False
    fallback_reason: Optional[str] = None
    governed: bool = False
    rows_examined: int = 0
    peak_rows_buffered: int = 0
    rule_applications: int = 0
    memo_groups: int = 0
    timeout: Optional[float] = None
    row_budget: Optional[int] = None
    memory_budget: Optional[int] = None
    #: Worst per-node Q-error observed by the feedback loop for this
    #: execution; ``None`` when the query ran without profiling.
    max_q_error: Optional[float] = None

    #: Wire-format field names, frozen: the server protocol and the
    #: EXPLAIN ANALYZE dict output both embed :meth:`as_dict` verbatim,
    #: so renaming a field is a protocol change, not a refactor.
    FIELDS = ("elapsed_seconds", "degraded", "fallback_reason", "governed",
              "rows_examined", "peak_rows_buffered", "rule_applications",
              "memo_groups", "timeout", "row_budget", "memory_budget",
              "max_q_error")

    def as_dict(self) -> dict:
        """JSON-safe snapshot under the frozen :data:`FIELDS` names."""
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryStats":
        """Rebuild stats from :meth:`as_dict` output (wire round-trip).

        Unknown keys are ignored so newer servers can talk to older
        clients; missing keys keep their defaults for the converse.
        """
        known = {k: v for k, v in payload.items() if k in cls.FIELDS}
        return cls(**known)


class ResourceGovernor:
    """Cooperative limits for one query.

    * ``timeout`` — wall-clock seconds covering optimization *and*
      execution (the clock starts at :meth:`start`);
    * ``row_budget`` — total rows examined: base-table rows scanned or
      seeked plus rows delivered to the result;
    * ``memory_budget`` — maximum rows buffered *simultaneously* by
      blocking operators (sort inputs, hash-join build sides,
      aggregation groups, segment spools);
    * ``optimizer_budget`` — an :class:`OptimizerBudget` for the
      cost-based search.

    A governor is single-query state; create a fresh one per execution
    (``Database.execute`` does this from its keyword arguments).
    """

    __slots__ = ("timeout", "row_budget", "memory_budget",
                 "optimizer_budget", "rows_examined", "rows_buffered",
                 "peak_rows_buffered", "rule_applications", "memo_groups",
                 "_check_interval", "_deadline", "_started_at",
                 "_since_deadline_check")

    def __init__(self, timeout: Optional[float] = None,
                 row_budget: Optional[int] = None,
                 memory_budget: Optional[int] = None,
                 optimizer_budget: Optional[OptimizerBudget] = None,
                 check_interval: int = DEFAULT_CHECK_INTERVAL) -> None:
        if timeout is not None and timeout < 0:
            raise ValueError("timeout must be non-negative")
        for name, value in (("row_budget", row_budget),
                            ("memory_budget", memory_budget)):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be at least 1")
        self.timeout = timeout
        self.row_budget = row_budget
        self.memory_budget = memory_budget
        self.optimizer_budget = optimizer_budget or OptimizerBudget()
        self.rows_examined = 0
        self.rows_buffered = 0
        self.peak_rows_buffered = 0
        self.rule_applications = 0
        self.memo_groups = 0
        # Tight budgets deserve prompt verdicts: never batch past them.
        interval = max(1, check_interval)
        for budget in (row_budget, memory_budget):
            if budget is not None:
                interval = min(interval, max(1, budget))
        self._check_interval = interval
        self._deadline: Optional[float] = None
        self._started_at: Optional[float] = None
        self._since_deadline_check = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the wall clock (idempotent)."""
        if self._started_at is None:
            self._started_at = time.monotonic()
            if self.timeout is not None:
                self._deadline = self._started_at + self.timeout

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    @property
    def check_interval(self) -> int:
        return self._check_interval

    # -- checks ------------------------------------------------------------------

    def check_deadline(self) -> None:
        if self._deadline is not None and time.monotonic() >= self._deadline:
            raise QueryTimeout(self.timeout, self.elapsed())

    def consume_rows(self, n: int = 1) -> None:
        """Account for ``n`` rows examined; enforce budget and deadline."""
        self.rows_examined += n
        if self.row_budget is not None and \
                self.rows_examined > self.row_budget:
            raise ResourceExhausted("row", self.row_budget,
                                    self.rows_examined)
        self._since_deadline_check += n
        if self._since_deadline_check >= self._check_interval:
            self._since_deadline_check = 0
            self.check_deadline()

    def hold_rows(self, n: int = 1) -> None:
        """Account for ``n`` rows entering an in-memory buffer."""
        self.rows_buffered += n
        if self.rows_buffered > self.peak_rows_buffered:
            self.peak_rows_buffered = self.rows_buffered
        if self.memory_budget is not None and \
                self.rows_buffered > self.memory_budget:
            raise ResourceExhausted("memory", self.memory_budget,
                                    self.rows_buffered)

    def release_rows(self, n: int) -> None:
        """Account for ``n`` rows leaving an in-memory buffer."""
        self.rows_buffered -= n
        if self.rows_buffered < 0:  # defensive: never go negative
            self.rows_buffered = 0

    def tick_optimizer(self) -> None:
        """One optimizer task (rule application); enforce the budget."""
        self.rule_applications += 1
        limit = self.optimizer_budget.max_rule_applications
        if self.rule_applications > limit:
            raise OptimizerBudgetExceeded("rule-application", limit)
        if self.rule_applications % OPTIMIZER_CHECK_INTERVAL == 0:
            self.check_deadline()

    def note_memo_groups(self, count: int) -> None:
        """Record a memo's group count; enforce the group cap."""
        if count > self.memo_groups:
            self.memo_groups = count
        limit = self.optimizer_budget.max_memo_groups
        if count > limit:
            raise OptimizerBudgetExceeded("memo-group", limit)

    # -- iterator instrumentation -------------------------------------------------

    def guard(self, iterable: Iterable[tuple]) -> Iterator[tuple]:
        """Yield from ``iterable`` while metering rows examined.

        Rows are pulled in ``check_interval`` chunks (``islice`` runs at
        C speed) and charged per chunk, so the per-row Python overhead is
        a bare generator resume.  A chunk is charged as soon as it is
        pulled — before its rows are yielded — which means a consumer
        that stops early may be charged for up to one prefetched chunk;
        tight budgets shrink the chunk size (see ``__init__``), keeping
        the overshoot bounded by the budget itself.
        """
        interval = self._check_interval
        it = iter(iterable)
        while True:
            batch = list(islice(it, interval))
            if not batch:
                return
            self.consume_rows(len(batch))
            yield from batch

    def guard_scan(self, rows) -> Iterator[tuple]:
        """Meter a base-table scan.

        Stored tables are in-memory sequences, so their cardinality is
        known at open time.  When it fits the remaining row budget the
        whole scan is charged up front and the raw (C-speed) iterator is
        returned — no per-row wrapper at all, which is what keeps
        governed scans within a few percent of ungoverned ones.  A scan
        that may overrun the budget, or a source of unknown size, is
        metered incrementally through :meth:`guard` instead, so budget
        verdicts stay exact.  The up-front charge can overcount when a
        consumer stops early (e.g. LIMIT), but never produces a false
        budget trip on the scan itself.
        """
        try:
            n = len(rows)
        except TypeError:
            return self.guard(rows)
        if self.row_budget is not None and \
                self.rows_examined + n > self.row_budget:
            return self.guard(rows)
        self.consume_rows(n)
        return iter(rows)

    def hold_iter(self, iterable: Iterable[tuple]) -> Iterator[tuple]:
        """Yield from ``iterable`` while metering rows buffered.

        Same chunked pulling as :meth:`guard`.  The caller owns the
        release: it knows when its buffer dies and how many rows it
        retained (``release_rows``).
        """
        interval = self._check_interval
        it = iter(iterable)
        while True:
            batch = list(islice(it, interval))
            if not batch:
                return
            self.hold_rows(len(batch))
            yield from batch

    def guard_into_list(self, iterable: Iterable[tuple]) -> list:
        """Materialize ``iterable`` into a list while metering examined
        rows per chunk — the C-speed counterpart of :meth:`guard` for
        consumers that collect the whole stream (the executor's root
        does, to detect output explosions incrementally).
        """
        out: list = []
        interval = self._check_interval
        it = iter(iterable)
        while True:
            batch = list(islice(it, interval))
            if not batch:
                return out
            self.consume_rows(len(batch))
            out.extend(batch)

    def hold_into_list(self, iterable: Iterable[tuple]) -> list:
        """Materialize ``iterable`` into a list while metering buffered
        rows per chunk.  For consumers that buffer their whole input
        anyway (sort inputs, materialized join inners) this replaces the
        per-row :meth:`hold_iter` wrapper with C-speed ``islice`` +
        ``extend``, at identical budget granularity.  The caller still
        owns the release of ``len(result)`` rows.
        """
        out: list = []
        interval = self._check_interval
        it = iter(iterable)
        while True:
            batch = list(islice(it, interval))
            if not batch:
                return out
            self.hold_rows(len(batch))
            out.extend(batch)

    # -- reporting ---------------------------------------------------------------

    def fill_stats(self, stats: QueryStats) -> None:
        stats.governed = True
        stats.rows_examined = self.rows_examined
        stats.peak_rows_buffered = self.peak_rows_buffered
        stats.rule_applications = self.rule_applications
        stats.memo_groups = self.memo_groups
        stats.timeout = self.timeout
        stats.row_budget = self.row_budget
        stats.memory_budget = self.memory_budget
