"""AST extraction: lock acquisitions, call sites, guarded-field writes.

One pass over every module builds, per function, a summary of what it
acquires (and with what held), what it calls (and with what held), what
blocking operations it performs, and any local discipline violations
(raw locks, unbounded acquisition of timeout-required locks, unguarded
mutation of registered shared fields).  :mod:`.graph` and :mod:`.lints`
consume the summaries.

The tracking is deliberately *lexical and linear*: ``with lock:`` scopes
the held-set over its body; a bare ``.acquire()`` adds to the held-set
until a matching ``.release()`` appears later in the function (or the
function ends).  Branches are walked in order with the same held-state
threading through — an approximation that is exact for the disciplined
acquire/try/finally shapes this engine uses.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ...concurrency import _SPEC_BY_NAME, LockSpec
from . import registry
from .report import ConcurrencyIssue


@dataclass(frozen=True)
class LockRef:
    """A resolved lock identity: hierarchy group, display name, level."""

    group: str
    name: str
    level: int
    spec: LockSpec


@dataclass(frozen=True)
class Acquisition:
    """One ``with lock:`` or ``.acquire(...)`` site."""

    lock: LockRef
    bounded: bool
    file: str
    line: int


@dataclass(frozen=True)
class Edge:
    """Held-while-acquiring: ``held`` was held when ``acquired`` was
    taken (directly, or transitively through ``via``)."""

    held: Acquisition
    acquired: Acquisition
    via: str = ""  # callee key when the edge crosses a call


@dataclass(frozen=True)
class CallSite:
    """A resolvable call made while locks may be held."""

    callee: tuple[str, str]  # (scope, function) — scope "" for module fns
    held: tuple[Acquisition, ...]
    file: str
    line: int


@dataclass(frozen=True)
class BlockingCall:
    """A potentially blocking operation and the locks held around it."""

    what: str
    held: tuple[Acquisition, ...]
    file: str
    line: int


@dataclass
class FunctionSummary:
    key: tuple[str, str]
    file: str
    acquires: list[Acquisition] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)


@dataclass
class Extraction:
    """Everything the tree-level pass produces."""

    functions: dict[tuple[str, str], FunctionSummary] = field(
        default_factory=dict)
    issues: list[ConcurrencyIssue] = field(default_factory=list)
    #: (class, attr) → LockRef for every ``self.x = TrackedLock(...)``.
    class_locks: dict[tuple[str, str], LockRef] = field(
        default_factory=dict)
    #: module-level name → LockRef.
    module_locks: dict[tuple[str, str], LockRef] = field(
        default_factory=dict)


def _iter_sources(root: str) -> Iterator[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in ("__pycache__", ".git")]
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _literal_lock_name(node: ast.expr) -> Optional[str]:
    """The lock-name argument of a Tracked* constructor: a string
    literal, or the literal prefix of an f-string
    (``f"storage.writer:{key}"`` → ``"storage.writer:*"``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            prefix = first.value
            return prefix.rstrip(":") + ":*"
    return None


def _resolve_spec(name: str, level: Optional[int]) -> Optional[LockRef]:
    """Resolve a constructed lock name (+ optional explicit level kwarg)
    to a :class:`LockRef`, or ``None`` when undeclared."""
    base, _, qualifier = name.partition(":")
    spec = _SPEC_BY_NAME.get(base)
    if spec is not None and (not qualifier or spec.dynamic):
        return LockRef(base, name, spec.level, spec)
    if level is not None:
        synthetic = LockSpec(base, level, dynamic=bool(qualifier))
        return LockRef(base, name, level, synthetic)
    return None


def _tracked_ctor(call: ast.Call) -> Optional[str]:
    """``TrackedLock``/``TrackedRLock``/``TrackedCondition`` constructor
    name, however imported."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in ("TrackedLock", "TrackedRLock", "TrackedCondition"):
        return name
    return None


def _raw_lock_ctor(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "threading" \
            and func.attr in registry.RAW_LOCK_NAMES:
        return func.attr
    return None


def _level_kwarg(call: ast.Call) -> Optional[int]:
    for kw in call.keywords:
        if kw.arg == "level" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, int):
            return kw.value.value
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant) \
            and isinstance(call.args[1].value, int):
        return call.args[1].value
    return None


def _has_bounded_timeout(call: ast.Call) -> bool:
    """True when an ``.acquire(...)``/``wait(...)`` call carries a
    non-negative timeout (a literal ``-1``/``None`` does not bound it;
    any expression argument is assumed to)."""
    candidates: list[ast.expr] = []
    for kw in call.keywords:
        if kw.arg == "timeout":
            candidates.append(kw.value)
    if len(call.args) >= 2:
        candidates.append(call.args[1])
    elif len(call.args) == 1 and not any(
            kw.arg == "timeout" for kw in call.keywords):
        # acquire(blocking) — single positional is the blocking flag,
        # not a timeout.
        pass
    for node in candidates:
        if isinstance(node, ast.Constant):
            if node.value is None:
                continue
            if isinstance(node.value, (int, float)) and node.value >= 0:
                return True
            continue
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            continue  # a literal negative: unbounded
        return True  # an expression: assume the caller bounds it
    return False


class _ModuleExtractor:
    """Extracts one module (two passes: lock attrs, then functions)."""

    def __init__(self, path: str, tree: ast.Module,
                 out: Extraction) -> None:
        self.path = path
        self.modname = os.path.splitext(os.path.basename(path))[0]
        self.tree = tree
        self.out = out

    # -- pass 1: lock declarations ---------------------------------------------

    def collect_locks(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                self._maybe_lock_binding(
                    ("<module>", node.targets[0].id), node.value,
                    self.out.module_locks)
        for klass in self._classes():
            for fn in self._methods(klass):
                for stmt in ast.walk(fn):
                    if isinstance(stmt, ast.Assign) \
                            and len(stmt.targets) == 1 \
                            and isinstance(stmt.targets[0], ast.Attribute) \
                            and isinstance(stmt.targets[0].value, ast.Name) \
                            and stmt.targets[0].value.id == "self" \
                            and isinstance(stmt.value, ast.Call):
                        self._maybe_lock_binding(
                            (klass.name, stmt.targets[0].attr),
                            stmt.value, self.out.class_locks)

    def _maybe_lock_binding(self, key: tuple[str, str], call: ast.Call,
                            table: dict[tuple[str, str], LockRef]) -> None:
        ctor = _tracked_ctor(call)
        if ctor is None:
            self._check_raw_lock(call)
            return
        if not call.args:
            return
        name = _literal_lock_name(call.args[0])
        if name is None:
            self.out.issues.append(ConcurrencyIssue(
                "lock.unresolvable-name",
                f"{ctor} constructed with a non-literal name; the "
                f"analyzer (and the hierarchy) cannot identify it",
                self.path, call.lineno))
            return
        ref = _resolve_spec(name, _level_kwarg(call))
        if ref is None:
            self.out.issues.append(ConcurrencyIssue(
                "lock.undeclared",
                f"lock name {name!r} is not declared in "
                f"repro.concurrency.HIERARCHY and carries no explicit "
                f"level=",
                self.path, call.lineno))
            return
        if key not in table:
            table[key] = ref

    def _check_raw_lock(self, call: ast.Call) -> None:
        ctor = _raw_lock_ctor(call)
        if ctor is not None \
                and os.path.basename(self.path) not in \
                registry.RAW_LOCK_ALLOWED:
            self.out.issues.append(ConcurrencyIssue(
                "lock.raw",
                f"raw threading.{ctor}() constructed outside the "
                f"substrate; use TrackedLock/TrackedRLock/"
                f"TrackedCondition from repro.concurrency",
                self.path, call.lineno))

    # -- pass 2: functions -------------------------------------------------------

    def extract_functions(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_one("", node)
        for klass in self._classes():
            for fn in self._methods(klass):
                self._extract_one(klass.name, fn)
        # raw-lock constructions anywhere (incl. function bodies)
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call) and _tracked_ctor(node) is None:
                self._check_raw_lock(node)

    def _extract_one(self, scope: str,
                     fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        key = (scope, fn.name)
        summary = FunctionSummary(key=key, file=self.path)
        walker = _FunctionWalker(self, scope, fn, summary)
        walker.run()
        self.out.functions[key] = summary

    def _classes(self) -> list[ast.ClassDef]:
        return [n for n in self.tree.body if isinstance(n, ast.ClassDef)]

    @staticmethod
    def _methods(klass: ast.ClassDef
                 ) -> list["ast.FunctionDef | ast.AsyncFunctionDef"]:
        return [n for n in klass.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]


@dataclass
class _HeldEntry:
    acq: Acquisition
    scoped: bool  # True for `with` entries (popped on block exit)


class _FunctionWalker:
    """Walks one function's statements with a linear held-set."""

    def __init__(self, mod: _ModuleExtractor, scope: str,
                 fn: "ast.FunctionDef | ast.AsyncFunctionDef",
                 summary: FunctionSummary) -> None:
        self.mod = mod
        self.scope = scope
        self.fn = fn
        self.summary = summary
        self.held: list[_HeldEntry] = []
        self.var_locks: dict[str, LockRef] = {}
        self.var_types: dict[str, str] = {}
        self._seed_entry_state()

    def _seed_entry_state(self) -> None:
        for group in registry.HELD_ON_ENTRY.get(
                (self.scope, self.fn.name), ()):
            ref = _resolve_spec(group, None)
            if ref is not None:
                self.held.append(_HeldEntry(
                    Acquisition(ref, True, self.mod.path, self.fn.lineno),
                    scoped=False))
        for arg in (self.fn.args.posonlyargs + self.fn.args.args
                    + self.fn.args.kwonlyargs):
            if arg.annotation is not None:
                note = arg.annotation
                if isinstance(note, ast.Name):
                    self.var_types[arg.arg] = note.id
                elif isinstance(note, ast.Constant) \
                        and isinstance(note.value, str):
                    self.var_types[arg.arg] = note.value.strip('"')
            if arg.arg in registry.ATTR_TYPES:
                self.var_types.setdefault(arg.arg,
                                          registry.ATTR_TYPES[arg.arg])

    # -- entry point -------------------------------------------------------------

    def run(self) -> None:
        self.walk_block(self.fn.body)

    def walk_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt)

    # -- statements --------------------------------------------------------------

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With):
            self._walk_with(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested defs (closures) analyzed only for raw locks
        elif isinstance(stmt, ast.Assign):
            self._scan_exprs(stmt)
            self._infer_assign(stmt)
            for target in stmt.targets:
                self._check_guard_write(target, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            self._scan_exprs(stmt)
            self._check_guard_write(stmt.target, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            self._scan_exprs(stmt)
            if stmt.target is not None:
                self._check_guard_write(stmt.target, stmt.lineno)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self._check_guard_write(target.value, stmt.lineno)
        elif isinstance(stmt, ast.For):
            self._scan_exprs_node(stmt.iter, stmt.lineno)
            self._infer_for_target(stmt)
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._scan_exprs_node(stmt.test, stmt.lineno)
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._scan_exprs_node(stmt.test, stmt.lineno)
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.walk_block(stmt.body)
            for handler in stmt.handlers:
                self.walk_block(handler.body)
            self.walk_block(stmt.orelse)
            self.walk_block(stmt.finalbody)
        elif isinstance(stmt, ast.Return):
            self._scan_exprs(stmt)
            if stmt.value is not None:
                self._check_iterator_escape(stmt.value, stmt.lineno)
        else:
            self._scan_exprs(stmt)

    def _walk_with(self, stmt: ast.With) -> None:
        pushed = 0
        for item in stmt.items:
            self._scan_exprs_node(item.context_expr, stmt.lineno)
            ref = self._resolve_lock_expr(item.context_expr)
            if ref is not None:
                self._acquired(ref, bounded=False, line=stmt.lineno)
                pushed += 1
        self.walk_block(stmt.body)
        for _ in range(pushed):
            for i in range(len(self.held) - 1, -1, -1):
                if self.held[i].scoped:
                    del self.held[i]
                    break

    # -- expression scanning -------------------------------------------------------

    def _scan_exprs(self, stmt: ast.stmt) -> None:
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._scan_exprs_node(node, stmt.lineno)

    def _scan_exprs_node(self, expr: ast.expr, line: int) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._handle_call(node, getattr(node, "lineno", line))

    def _handle_call(self, call: ast.Call, line: int) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr == "acquire":
                ref = self._resolve_lock_expr(func.value)
                if ref is not None:
                    self._acquired(ref,
                                   bounded=_has_bounded_timeout(call),
                                   line=line, scoped=False)
                    return
            elif attr == "release":
                ref = self._resolve_lock_expr(func.value)
                if ref is not None:
                    self._released(ref)
                    return
            if attr in registry.BLOCKING_ALWAYS:
                self._blocked(attr, line)
            elif attr in registry.BLOCKING_UNBOUNDED \
                    and not _has_bounded_timeout(call):
                receiver = self._resolve_lock_expr(func.value)
                if receiver is None or not self._holds(receiver.group):
                    self._blocked(f"{attr} (no timeout)", line)
            self._check_mutator_call(call, line)
            self._record_callsite(call, line)
        elif isinstance(func, ast.Name):
            self._record_callsite(call, line)

    # -- lock events --------------------------------------------------------------

    def _acquired(self, ref: LockRef, bounded: bool, line: int,
                  scoped: bool = True) -> None:
        acq = Acquisition(ref, bounded, self.mod.path, line)
        self.summary.acquires.append(acq)
        if ref.spec.timeout_required and not bounded:
            self.mod.out.issues.append(ConcurrencyIssue(
                "lock.timeout-required",
                f"{ref.name!r} (level {ref.level}) must be acquired "
                f"with a bounded timeout (a timed-out acquire becomes a "
                f"TransactionConflict; an unbounded one becomes a "
                f"deadlock)",
                self.mod.path, line))
        for entry in self.held:
            self.summary.edges.append(Edge(entry.acq, acq))
        self.held.append(_HeldEntry(acq, scoped=scoped))

    def _released(self, ref: LockRef) -> None:
        for i in range(len(self.held) - 1, -1, -1):
            if self.held[i].acq.lock.group == ref.group:
                del self.held[i]
                return

    def _holds(self, group: str) -> bool:
        return any(e.acq.lock.group == group for e in self.held)

    def _blocked(self, what: str, line: int) -> None:
        self.summary.blocking.append(BlockingCall(
            what, tuple(e.acq for e in self.held), self.mod.path, line))

    def _record_callsite(self, call: ast.Call, line: int) -> None:
        callee = self._resolve_callee(call)
        if callee is not None:
            self.summary.calls.append(CallSite(
                callee, tuple(e.acq for e in self.held),
                self.mod.path, line))

    # -- resolution ---------------------------------------------------------------

    def _resolve_lock_expr(self, expr: ast.expr) -> Optional[LockRef]:
        if isinstance(expr, ast.Name):
            if expr.id in self.var_locks:
                return self.var_locks[expr.id]
            module_key = ("<module>", expr.id)
            return self.mod.out.module_locks.get(module_key)
        if isinstance(expr, ast.Attribute):
            owner = self._type_of(expr.value)
            if owner is not None:
                found = self.mod.out.class_locks.get((owner, expr.attr))
                if found is not None:
                    return found
            # `x.lock` where only one class declares the attribute name
            matches = [ref for (cls, attr), ref
                       in self.mod.out.class_locks.items()
                       if attr == expr.attr]
            if len(matches) == 1 and len({
                    (cls, attr) for (cls, attr)
                    in self.mod.out.class_locks if attr == expr.attr}) == 1:
                return matches[0]
        return None

    def _type_of(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.scope or None
            return self.var_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            return registry.ATTR_TYPES.get(expr.attr)
        if isinstance(expr, ast.Call):
            callee = self._resolve_callee(expr)
            if callee is not None:
                return registry.RETURN_TYPES.get(callee)
        return None

    def _resolve_callee(self, call: ast.Call
                        ) -> Optional[tuple[str, str]]:
        func = call.func
        if isinstance(func, ast.Name):
            return ("", func.id)
        if isinstance(func, ast.Attribute):
            owner = self._type_of(func.value)
            if owner is not None:
                return (owner, func.attr)
        return None

    # -- inference ----------------------------------------------------------------

    def _infer_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = stmt.value
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in registry.LOCK_RETURNING:
                group = registry.LOCK_RETURNING[func.attr]
                ref = _resolve_spec(group, None)
                if ref is not None:
                    self.var_locks[target.id] = ref
                    return
            callee = self._resolve_callee(value)
            if callee is not None and callee in registry.RETURN_TYPES:
                self.var_types[target.id] = registry.RETURN_TYPES[callee]
                return
        inferred = self._type_of(value)
        if inferred is not None:
            self.var_types[target.id] = inferred
        ref = self._resolve_lock_expr(value) if not isinstance(
            value, ast.Call) else None
        if ref is not None:
            self.var_locks[target.id] = ref

    def _infer_for_target(self, stmt: ast.For) -> None:
        it = stmt.iter
        # for name, lock in storage.all_writer_locks():
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute) \
                and it.func.attr in registry.PAIR_ITER_LOCKS \
                and isinstance(stmt.target, ast.Tuple) \
                and len(stmt.target.elts) == 2 \
                and isinstance(stmt.target.elts[1], ast.Name):
            group = registry.PAIR_ITER_LOCKS[it.func.attr]
            ref = _resolve_spec(group, None)
            if ref is not None:
                self.var_locks[stmt.target.elts[1].id] = ref
            return
        # for lock in self.locks.values():
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute) \
                and it.func.attr == "values" \
                and isinstance(it.func.value, ast.Attribute) \
                and isinstance(it.func.value.value, ast.Name) \
                and it.func.value.value.id == "self" \
                and isinstance(stmt.target, ast.Name):
            hint = registry.CONTAINER_LOCKS.get(
                (self.scope, it.func.value.attr))
            if hint is not None:
                ref = _resolve_spec(hint, None)
                if ref is not None:
                    self.var_locks[stmt.target.id] = ref
            return
        # for shard in self._shards:
        if isinstance(it, ast.Attribute) and isinstance(stmt.target,
                                                        ast.Name):
            elem = registry.ATTR_ELEM_TYPES.get(it.attr)
            if elem is not None:
                self.var_types[stmt.target.id] = elem

    # -- guarded fields ------------------------------------------------------------

    def _guard_for(self, owner: str, field_name: str) -> Optional[str]:
        from ...concurrency import GUARDED_FIELDS
        for guard in GUARDED_FIELDS:
            if guard.class_name == owner and field_name in guard.fields:
                ref = self.mod.out.class_locks.get(
                    (owner, guard.lock_attr))
                return ref.group if ref is not None else None
        return None

    def _check_guard_write(self, target: ast.expr, line: int) -> None:
        if self.fn.name == "__init__":
            return  # the object is not shared yet
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute):
            return
        owner = self._type_of(node.value)
        if owner is None:
            return
        guard = self._guard_for(owner, node.attr)
        if guard is not None and not self._holds(guard):
            self.mod.out.issues.append(ConcurrencyIssue(
                "guard.unlocked-write",
                f"{owner}.{node.attr} is declared guarded by "
                f"{guard!r} but is mutated without it held",
                self.mod.path, line))

    def _check_mutator_call(self, call: ast.Call, line: int) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in registry.MUTATORS):
            return
        receiver = func.value
        if not isinstance(receiver, ast.Attribute):
            return
        owner = self._type_of(receiver.value)
        if owner is None:
            return
        guard = self._guard_for(owner, receiver.attr)
        if guard is not None and not self._holds(guard):
            self.mod.out.issues.append(ConcurrencyIssue(
                "guard.unlocked-write",
                f"{owner}.{receiver.attr}.{func.attr}() mutates a field "
                f"declared guarded by {guard!r} without it held",
                self.mod.path, line))

    def _check_iterator_escape(self, value: ast.expr, line: int) -> None:
        """``return iter(self.f)`` / ``return self.f.values()`` of a
        guarded field without the guard held leaks a live view."""
        exprs: list[ast.expr] = []
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id == "iter" \
                    and value.args:
                exprs.append(value.args[0])
            elif isinstance(func, ast.Attribute) \
                    and func.attr in registry.LIVE_VIEWS:
                exprs.append(func.value)
        for expr in exprs:
            if not isinstance(expr, ast.Attribute):
                continue
            owner = self._type_of(expr.value)
            if owner is None:
                continue
            guard = self._guard_for(owner, expr.attr)
            if guard is not None and not self._holds(guard):
                self.mod.out.issues.append(ConcurrencyIssue(
                    "guard.iterator-escape",
                    f"returning a live view of {owner}.{expr.attr} "
                    f"(guarded by {guard!r}) without the guard held; "
                    f"copy under the lock instead",
                    self.mod.path, line))


def extract_tree(root: str) -> Extraction:
    """Parse and extract every ``.py`` file under ``root``."""
    out = Extraction()
    modules: list[_ModuleExtractor] = []
    for path in _iter_sources(root):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
        except SyntaxError as exc:
            out.issues.append(ConcurrencyIssue(
                "parse.error", f"cannot parse: {exc}", path,
                exc.lineno or 0))
            continue
        modules.append(_ModuleExtractor(path, tree, out))
    for mod in modules:       # pass 1 first, over every module: lock
        mod.collect_locks()   # identities must be global before pass 2
    for mod in modules:
        mod.extract_functions()
    return out
