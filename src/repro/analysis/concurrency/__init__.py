"""Static concurrency analysis over the repro source tree.

The runtime half of the concurrency layer lives in
:mod:`repro.concurrency` (the tracked-lock substrate and the race
detector); this package is the static half.  It parses the engine's
source with :mod:`ast`, extracts every lock acquisition (``with lock:``
and ``.acquire(...)``), builds the held-while-acquiring lock-order graph
keyed by the declared hierarchy, and reports:

* cycles in the lock-order graph (potential deadlocks),
* hierarchy violations (acquiring a lower level while holding a higher),
* unbounded acquisitions of locks whose spec requires a timeout,
* blocking calls (fsync, socket IO, unbounded waits/joins) made while a
  *hot* lock is held,
* mutations of registered shared fields outside their guarding lock,
* raw ``threading`` lock construction outside the substrate module,
* fault-injection registry drift (:mod:`.faults`).

``python -m repro.analysis.concurrency check`` runs everything and is a
CI hard gate; ``hierarchy`` prints the declared lock table; ``faults``
runs only the fault-site lint.
"""

from .extract import extract_tree
from .faults import check_fault_sites
from .graph import LockOrderGraph, build_graph
from .lints import check_blocking
from .report import ConcurrencyIssue, render_issues

__all__ = [
    "ConcurrencyIssue", "LockOrderGraph", "analyze_tree", "build_graph",
    "check_blocking", "check_fault_sites", "extract_tree",
    "render_issues",
]


def analyze_tree(root: str) -> "tuple[list[ConcurrencyIssue], LockOrderGraph]":
    """Run the full static pass over the source tree at ``root``.

    Returns ``(issues, graph)`` — the graph is kept so callers (the CLI's
    ``--explain``) can render cycle blame without re-analyzing.
    """
    extraction = extract_tree(root)
    issues = list(extraction.issues)
    graph = build_graph(extraction)
    issues.extend(graph.issues)
    issues.extend(check_blocking(extraction))
    return issues, graph
