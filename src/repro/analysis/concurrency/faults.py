"""Fault-site registry lint.

Every ``faultinject.hit("<site>")`` in the source tree must name a site
registered in :func:`repro.faultinject.sites`, each registered site must
be hit somewhere (a registered-but-dead site silently shrinks chaos
coverage), no site may be hit from two different source locations (sites
are per-operation identities, not categories), and DESIGN.md must list
every site so the failure matrix stays honest.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator

from ...faultinject import sites
from .report import ConcurrencyIssue


def _iter_sources(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in ("__pycache__", ".git")]
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _hit_sites(root: str) -> dict[str, list[tuple[str, int]]]:
    """site name → every (file, line) that calls ``hit(<literal>)``."""
    found: dict[str, list[tuple[str, int]]] = {}
    for path in _iter_sources(root):
        with open(path, "r", encoding="utf-8") as handle:
            try:
                tree = ast.parse(handle.read(), filename=path)
            except SyntaxError:
                continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name != "hit" or not node.args:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                found.setdefault(arg.value, []).append(
                    (path, node.lineno))
    return found


def check_fault_sites(root: str,
                      design_path: str = "") -> list[ConcurrencyIssue]:
    """Lint the fault-injection registry against the tree at ``root``."""
    issues: list[ConcurrencyIssue] = []
    registered = sites()
    if len(set(registered)) != len(registered):
        dupes = sorted({s for s in registered
                        if registered.count(s) > 1})
        issues.append(ConcurrencyIssue(
            "faults.duplicate-registration",
            f"INJECTION_SITES lists {', '.join(dupes)} more than once"))
    hits = _hit_sites(root)
    skip = {os.path.join(root, "faultinject.py")}
    for site, locations in sorted(hits.items()):
        locations = [loc for loc in locations if loc[0] not in skip]
        if not locations:
            continue
        if site not in registered:
            issues.append(ConcurrencyIssue(
                "faults.unregistered-site",
                f"faultinject.hit({site!r}) is not in INJECTION_SITES; "
                f"register it (and list it in DESIGN.md)",
                *locations[0]))
        if len(locations) > 1:
            where = ", ".join(f"{f}:{ln}" for f, ln in locations)
            issues.append(ConcurrencyIssue(
                "faults.duplicate-site",
                f"site {site!r} is hit from {len(locations)} locations "
                f"({where}); each site must identify one operation",
                *locations[0]))
    for site in registered:
        if site not in hits:
            issues.append(ConcurrencyIssue(
                "faults.dead-site",
                f"registered site {site!r} is never hit in the source "
                f"tree; chaos coverage for it is silently zero"))
    if design_path and os.path.exists(design_path):
        with open(design_path, "r", encoding="utf-8") as handle:
            design = handle.read()
        for site in registered:
            if f"`{site}`" not in design and site not in design:
                issues.append(ConcurrencyIssue(
                    "faults.undocumented-site",
                    f"site {site!r} is not listed in DESIGN.md",
                    design_path))
    return issues
