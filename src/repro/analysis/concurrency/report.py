"""Issue records produced by the static concurrency analyzer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConcurrencyIssue:
    """One concurrency-discipline violation found in the source tree.

    ``code`` is a stable dotted identifier (``order.cycle``,
    ``order.descend``, ``lock.timeout-required``, ``blocking.hot-lock``,
    ``guard.unlocked-write``, ``faults.duplicate-site``, ...) suitable
    for filtering and for tests; ``file``/``line`` locate the offending
    acquisition, call or mutation.
    """

    code: str
    message: str
    file: str = ""
    line: int = 0

    def render(self) -> str:
        location = f" {self.file}:{self.line}" if self.file else ""
        return f"[{self.code}]{location}: {self.message}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_issues(issues: list[ConcurrencyIssue]) -> str:
    return "\n".join(issue.render() for issue in issues)
