"""``python -m repro.analysis.concurrency`` — the concurrency gate CLI.

Subcommands:

``hierarchy``
    Print the declared lock table (name, level, flags, doc).

``check [paths...]``
    Run the full static pass (lock-order graph, hierarchy checks,
    cycles, blocking-call and guarded-field lints) over the given
    trees (default: the installed ``repro`` package source).  Exits 1
    on any issue.  ``--expect-violations`` inverts the gate for fixture
    tests: exit 0 iff at least one ``order.*`` issue is found.
    ``--explain A B`` renders every witnessed acquisition site for the
    ordering A → B.

``faults [--design PATH]``
    Run only the fault-injection registry lint.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from ...concurrency import iter_specs
from . import analyze_tree
from .faults import check_fault_sites
from .report import render_issues


def _default_root() -> str:
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def _cmd_hierarchy() -> int:
    print(f"{'name':<18} {'level':>5}  flags")
    print("-" * 60)
    for spec in iter_specs():
        flags = [f for f, on in (
            ("dynamic", spec.dynamic),
            ("timeout-required", spec.timeout_required),
            ("hot", spec.hot),
            ("reentrant", spec.reentrant)) if on]
        print(f"{spec.name:<18} {spec.level:>5}  "
              f"{', '.join(flags) or '-'}")
        if spec.doc:
            print(f"{'':<26}{spec.doc}")
    return 0


def _cmd_check(paths: list[str], expect_violations: bool,
               explain: Optional[tuple[str, str]]) -> int:
    roots = paths or [_default_root()]
    all_issues = []
    graphs = []
    for root in roots:
        issues, graph = analyze_tree(root)
        all_issues.extend(issues)
        graphs.append(graph)
    if explain is not None:
        for graph in graphs:
            print(graph.explain(explain[0], explain[1]))
        for graph in graphs:
            for cycle in graph.cycles:
                print(graph.explain_cycle(cycle))
    if expect_violations:
        order = [i for i in all_issues if i.code.startswith("order.")]
        if order:
            print(f"expected violations present "
                  f"({len(order)} order issue(s)):")
            print(render_issues(order))
            return 0
        print("expected lock-order violations but the tree is clean",
              file=sys.stderr)
        return 1
    if all_issues:
        print(render_issues(all_issues), file=sys.stderr)
        print(f"\n{len(all_issues)} concurrency issue(s)",
              file=sys.stderr)
        return 1
    edges = sum(len(g.edges) for g in graphs)
    print(f"concurrency check clean: {edges} lock-order edge(s), "
          f"0 issues")
    return 0


def _cmd_faults(design: str) -> int:
    issues = check_fault_sites(_default_root(), design)
    if issues:
        print(render_issues(issues), file=sys.stderr)
        return 1
    print("fault-site registry clean")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.concurrency",
        description="static concurrency analysis gate")
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("hierarchy", help="print the declared lock table")
    check = sub.add_parser("check", help="run the full static pass")
    check.add_argument("paths", nargs="*",
                       help="source trees (default: repro package)")
    check.add_argument("--expect-violations", action="store_true",
                       help="exit 0 iff order violations are found "
                            "(fixture self-test)")
    check.add_argument("--explain", nargs=2, metavar=("HELD", "ACQUIRED"),
                       help="render witnessed sites for an ordering, "
                            "plus all cycles")
    faults = sub.add_parser("faults", help="fault-site registry lint")
    faults.add_argument("--design", default="DESIGN.md",
                        help="DESIGN.md path to check site listing "
                             "against (default: ./DESIGN.md)")
    args = parser.parse_args(argv)
    if args.cmd == "hierarchy":
        return _cmd_hierarchy()
    if args.cmd == "check":
        explain = tuple(args.explain) if args.explain else None
        return _cmd_check(args.paths, args.expect_violations, explain)
    if args.cmd == "faults":
        design = args.design if os.path.exists(args.design) else ""
        return _cmd_faults(design)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
