"""Declared facts the static pass keys off.

The lock hierarchy itself and the guarded-field declarations live in
:mod:`repro.concurrency` (one source of truth shared with the runtime
detector); this module adds the *static-resolution* facts: which
attributes hold which object types, which methods return locks, which
functions run with locks already held, and which calls block.
"""

from __future__ import annotations

from ...concurrency import GUARDED_FIELDS, HIERARCHY  # noqa: F401

#: Attribute name → class name, for resolving ``x.attr.method()`` call
#: receivers and local assignments like ``storage = database.storage``.
#: Only attribute names that denote one class everywhere in the engine
#: belong here.
ATTR_TYPES: dict[str, str] = {
    "storage": "Storage",
    "catalog": "Catalog",
    "plan_cache": "PlanCache",
    "corrections": "CorrectionStore",
    "wal": "DurabilityManager",
    "_db": "Database",
    "database": "Database",
    "admission": "AdmissionController",
    "_pool": "ResourcePool",
    "feedback": "FeedbackLoop",
    "_durability": "DurabilityManager",
    "matviews": "MatViewManager",
}

#: (class, method) → class name of the return value.
RETURN_TYPES: dict[tuple[str, str], str] = {
    ("PlanCache", "_shard_for"): "_Shard",
}

#: Attribute name → element class, for ``for x in self.<attr>:`` loops.
ATTR_ELEM_TYPES: dict[str, str] = {
    "_shards": "_Shard",
}

#: Method simple name → lock group returned.  ``writer_lock`` is the only
#: lock-returning accessor in the engine; the name is unambiguous.
LOCK_RETURNING: dict[str, str] = {
    "writer_lock": "storage.writer",
}

#: Method simple name → lock group of the *second* element of each
#: yielded pair (``for name, lock in storage.all_writer_locks():``).
PAIR_ITER_LOCKS: dict[str, str] = {
    "all_writer_locks": "storage.writer",
}

#: (class, container attr) → lock group of the values it stores
#: (``for lock in self.locks.values(): lock.release()``).
CONTAINER_LOCKS: dict[tuple[str, str], str] = {
    ("_Transaction", "locks"): "storage.writer",
    ("_CommitMaintenance", "locks"): "storage.writer",
}

#: (class, function) → lock groups the function's contract requires the
#: caller to hold on entry.  These seed the held-set so the analyzer
#: sees the cross-function edges (commit holds writer locks around the
#: WAL append and the install).
HELD_ON_ENTRY: dict[tuple[str, str], tuple[str, ...]] = {
    ("Storage", "install"): ("storage.writer",),
    ("Storage", "install_many"): ("storage.writer",),
    ("DurabilityManager", "log_commit"): ("storage.writer",),
    ("DurabilityManager", "log_ddl"): ("db.ddl",),
    ("_Transaction", "commit"): ("storage.writer",),
    ("_Transaction", "_release"): ("storage.writer",),
    ("MatViewManager", "prepare_commit"): ("storage.writer",),
    ("_CommitMaintenance", "release"): ("storage.writer",),
    ("AdmissionController", "_next_job"): ("admission.queue",),
}

#: Attribute names whose call always blocks (IO, sleeps).
BLOCKING_ALWAYS: frozenset[str] = frozenset({
    "fsync", "sendall", "recv", "accept", "connect", "sleep",
})

#: Attribute names whose call blocks *unboundedly* unless a timeout
#: argument is passed.  ``wait``/``wait_for`` on the currently held
#: condition are exempt: the condition releases its carrier while
#: waiting.
BLOCKING_UNBOUNDED: frozenset[str] = frozenset({
    "join", "wait", "wait_for",
})

#: Files (basenames) allowed to construct raw ``threading`` locks: the
#: substrate itself needs a raw mutex for the detector.
RAW_LOCK_ALLOWED: frozenset[str] = frozenset({"concurrency.py"})

#: Raw ``threading`` constructors the substrate replaces.
RAW_LOCK_NAMES: frozenset[str] = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: Container-mutating method names for the guarded-field lint.
MUTATORS: frozenset[str] = frozenset({
    "append", "appendleft", "extend", "add", "insert", "remove",
    "discard", "clear", "pop", "popleft", "popitem", "update",
    "setdefault", "move_to_end",
})

#: Method names that hand out live views of a container (the
#: iterator-escape lint: returning one of these over a guarded field
#: without the guard held leaks a view that breaks under concurrent
#: mutation).
LIVE_VIEWS: frozenset[str] = frozenset({"values", "items", "keys"})
