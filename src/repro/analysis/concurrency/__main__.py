"""Entry point for ``python -m repro.analysis.concurrency``."""

from .cli import main

raise SystemExit(main())
