"""Blocking-call lint: no IO/unbounded waits while a *hot* lock is held.

Hot locks (``hot=True`` in the hierarchy) sit on the per-query or
per-statement path; a thread that blocks on disk or network while
holding one convoys every other query behind it.  The lint reports
direct blocking operations under a hot lock, and — via one fixpoint over
the call graph — calls to functions that *may* block while a hot lock is
held at the call site.

Deliberate exceptions are declared in :data:`BLOCKING_ALLOWED`, each
with the reason it is safe.
"""

from __future__ import annotations

from .extract import Extraction
from .report import ConcurrencyIssue

#: (lock group, blocking what) pairs that are sanctioned, with reasons.
#: ``wal.log`` protects the log file itself: fsync under it *is* the
#: design (group-commit serializes on the log lock), and it is not hot.
BLOCKING_ALLOWED: frozenset[tuple[str, str]] = frozenset()


def _direct_blockers(extraction: Extraction
                     ) -> list[ConcurrencyIssue]:
    issues: list[ConcurrencyIssue] = []
    for summary in extraction.functions.values():
        for call in summary.blocking:
            hot = [a for a in call.held if a.lock.spec.hot]
            if not hot:
                continue
            names = ", ".join(sorted({a.lock.name for a in hot}))
            if any((a.lock.group, call.what) in BLOCKING_ALLOWED
                   for a in hot):
                continue
            issues.append(ConcurrencyIssue(
                "blocking.hot-lock",
                f"blocking call {call.what!r} while holding hot "
                f"lock(s) {names}; every query needing those locks "
                f"convoys behind this IO",
                call.file, call.line))
    return issues


def _transitive_blockers(extraction: Extraction
                         ) -> list[ConcurrencyIssue]:
    # may_block: functions containing a blocking op, closed over calls
    may_block: dict[tuple[str, str], str] = {}
    for key, summary in extraction.functions.items():
        if summary.blocking:
            may_block[key] = summary.blocking[0].what
    changed = True
    while changed:
        changed = False
        for key, summary in extraction.functions.items():
            if key in may_block:
                continue
            for call in summary.calls:
                if call.callee in may_block:
                    may_block[key] = (
                        f"{may_block[call.callee]} via "
                        f"{'.'.join(n for n in call.callee if n)}")
                    changed = True
                    break
    issues: list[ConcurrencyIssue] = []
    for summary in extraction.functions.values():
        for call in summary.calls:
            what = may_block.get(call.callee)
            if what is None:
                continue
            hot = [a for a in call.held if a.lock.spec.hot]
            if not hot:
                continue
            names = ", ".join(sorted({a.lock.name for a in hot}))
            issues.append(ConcurrencyIssue(
                "blocking.hot-lock-transitive",
                f"call may block ({what}) while holding hot lock(s) "
                f"{names}",
                call.file, call.line))
    return issues


def check_blocking(extraction: Extraction) -> list[ConcurrencyIssue]:
    seen: set[tuple[str, str, int]] = set()
    out: list[ConcurrencyIssue] = []
    for issue in _direct_blockers(extraction) \
            + _transitive_blockers(extraction):
        key = (issue.code, issue.file, issue.line)
        if key not in seen:
            seen.add(key)
            out.append(issue)
    return out
