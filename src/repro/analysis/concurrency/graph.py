"""Lock-order graph construction and deadlock-cycle detection.

The extraction pass yields per-function summaries: direct acquisitions
with their held-sets, plus resolved call sites.  This module closes the
summaries over the call graph (one fixpoint: a function's *transitive*
acquires are its own plus every callee's), adds the cross-call edges
(everything held at a call site precedes everything the callee may
acquire), then checks each edge against the declared hierarchy and
searches the group-level digraph for cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .extract import Acquisition, Edge, Extraction
from .report import ConcurrencyIssue


@dataclass
class GroupEdge:
    """All witnessed held→acquired orderings between two lock groups."""

    held: str
    acquired: str
    witnesses: list[Edge] = field(default_factory=list)

    @property
    def all_bounded(self) -> bool:
        return all(w.held.bounded and w.acquired.bounded
                   for w in self.witnesses)


@dataclass
class LockOrderGraph:
    """The held-while-acquiring digraph over hierarchy groups."""

    edges: dict[tuple[str, str], GroupEdge] = field(default_factory=dict)
    issues: list[ConcurrencyIssue] = field(default_factory=list)
    cycles: list[list[str]] = field(default_factory=list)

    def add(self, edge: Edge) -> None:
        key = (edge.held.lock.group, edge.acquired.lock.group)
        if key[0] == key[1] and edge.held.lock.name == edge.acquired.lock.name:
            return  # re-entry on the same lock; TrackedRLock territory
        group = self.edges.get(key)
        if group is None:
            group = self.edges[key] = GroupEdge(*key)
        group.witnesses.append(edge)

    def successors(self, group: str) -> list[str]:
        return [b for (a, b) in self.edges if a == group]

    def explain(self, a: str, b: str) -> str:
        """Render every witnessed site for the ordering ``a`` → ``b``."""
        edge = self.edges.get((a, b))
        if edge is None:
            return f"no witnessed ordering {a} -> {b}"
        lines = [f"{a} -> {b} ({len(edge.witnesses)} site(s)):"]
        for w in edge.witnesses:
            hold = f"{w.held.lock.name} held since {w.held.file}:{w.held.line}"
            take = f"{w.acquired.lock.name} taken at " \
                   f"{w.acquired.file}:{w.acquired.line}"
            via = f" (via {w.via})" if w.via else ""
            lines.append(f"  {hold}; {take}{via}")
        return "\n".join(lines)

    def explain_cycle(self, cycle: list[str]) -> str:
        parts = [" -> ".join(cycle + [cycle[0]])]
        for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
            parts.append(self.explain(a, b))
        return "\n".join(parts)


def _close_over_calls(extraction: Extraction
                      ) -> dict[tuple[str, str], list[Acquisition]]:
    """One fixpoint computing each function's transitive acquisitions."""
    trans: dict[tuple[str, str], list[Acquisition]] = {
        key: list(summary.acquires)
        for key, summary in extraction.functions.items()}
    changed = True
    while changed:
        changed = False
        for key, summary in extraction.functions.items():
            seen = {(a.lock.name, a.file, a.line) for a in trans[key]}
            for call in summary.calls:
                for acq in trans.get(call.callee, ()):
                    ident = (acq.lock.name, acq.file, acq.line)
                    if ident not in seen:
                        seen.add(ident)
                        trans[key].append(acq)
                        changed = True
    return trans


def _check_edge(edge: GroupEdge,
                issues: list[ConcurrencyIssue]) -> None:
    sample = edge.witnesses[0]
    held_spec = sample.held.lock.spec
    acq_spec = sample.acquired.lock.spec
    if edge.held == edge.acquired:
        # distinct instances of one dynamic group: legal only when the
        # spec demands bounded acquisition (first-committer-wins) or the
        # lock is reentrant (same object re-entry was filtered in add()).
        if held_spec.reentrant:
            return
        if not (held_spec.dynamic and held_spec.timeout_required
                and edge.all_bounded):
            issues.append(ConcurrencyIssue(
                "order.same-level",
                f"multiple {edge.held!r} locks acquired while one is "
                f"held without bounded timeouts; concurrent threads can "
                f"deadlock on opposite orders",
                sample.acquired.file, sample.acquired.line))
        return
    if acq_spec.level < held_spec.level:
        issues.append(ConcurrencyIssue(
            "order.descend",
            f"{sample.acquired.lock.name!r} (level {acq_spec.level}) "
            f"acquired while holding {sample.held.lock.name!r} (level "
            f"{held_spec.level}); the hierarchy only permits ascending "
            f"acquisition",
            sample.acquired.file, sample.acquired.line))
    elif acq_spec.level == held_spec.level:
        issues.append(ConcurrencyIssue(
            "order.same-level",
            f"{sample.acquired.lock.name!r} and {sample.held.lock.name!r} "
            f"share level {acq_spec.level} but are distinct groups; "
            f"assign distinct levels",
            sample.acquired.file, sample.acquired.line))


def _find_cycles(graph: LockOrderGraph) -> list[list[str]]:
    """All elementary cycles, by DFS from each node (small graphs)."""
    nodes = sorted({n for key in graph.edges for n in key})
    cycles: list[list[str]] = []
    seen_keys: set[tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: list[str],
            on_path: set[str]) -> None:
        for nxt in graph.successors(node):
            if nxt == start:
                # canonicalize rotation so each cycle reports once
                pivot = path.index(min(path))
                canon = tuple(path[pivot:] + path[:pivot])
                if canon not in seen_keys:
                    seen_keys.add(canon)
                    cycles.append(list(canon))
            elif nxt not in on_path and nxt > start:
                on_path.add(nxt)
                dfs(start, nxt, path + [nxt], on_path)
                on_path.discard(nxt)

    for start in nodes:
        dfs(start, start, [start], {start})
    return cycles


def build_graph(extraction: Extraction) -> LockOrderGraph:
    graph = LockOrderGraph()
    for summary in extraction.functions.values():
        for edge in summary.edges:
            graph.add(edge)
    trans = _close_over_calls(extraction)
    for summary in extraction.functions.values():
        for call in summary.calls:
            if not call.held:
                continue
            for acq in trans.get(call.callee, ()):
                for held in call.held:
                    if held.lock.name == acq.lock.name:
                        continue  # reacquisition of the held lock
                    graph.add(Edge(
                        held, acq,
                        via=f"{'.'.join(n for n in call.callee if n)} "
                            f"at {call.file}:{call.line}"))
    for edge in graph.edges.values():
        _check_edge(edge, graph.issues)
    graph.cycles = _find_cycles(graph)
    for cycle in graph.cycles:
        graph.issues.append(ConcurrencyIssue(
            "order.cycle",
            "potential deadlock cycle: " + " -> ".join(
                cycle + [cycle[0]]) + " (run --explain for the "
            "witnessing acquisition sites)"))
    return graph
