"""Well-formedness checks for physical plans.

Mirrors :mod:`.invariants` at the physical level: every expression a
physical operator evaluates must draw its columns from what its inputs
actually deliver (plus any enclosing nested-loops/segment bindings),
every column an operator promises in its layout must be delivered, and
index seeks must probe real index columns with correctly-arityed key
expressions.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..algebra.columns import Column
from ..physical.plan import (PConstantScan, PDifference, PFilter,
                             PHashAggregate, PHashJoin, PIndexSeek,
                             PMax1row, PNestedLoopsJoin, PNLApply,
                             PhysicalOp, PProject, PScalarAggregate,
                             PSegmentApply, PSegmentRef, PSort,
                             PStreamAggregate, PTableScan, PTop, PTopN,
                             PUnionAll)
from .issues import AnalysisIssue

#: Optional catalog access: table name -> list of index column-name tuples.
IndexProvider = Callable[[str], list[tuple[str, ...]]]


def verify_physical(plan: PhysicalOp,
                    env: frozenset[int] = frozenset(), *,
                    index_provider: Optional[IndexProvider] = None,
                    ) -> list[AnalysisIssue]:
    """All invariant violations in a physical plan."""
    issues: list[AnalysisIssue] = []
    _walk(plan, env, (), (), index_provider, issues)
    return issues


def _ids(columns: Sequence[Column]) -> list[int]:
    return [c.cid for c in columns]


def _walk(plan: PhysicalOp, env: frozenset[int], path: tuple[int, ...],
          segments: tuple[tuple[int, ...], ...],
          index_provider: Optional[IndexProvider],
          issues: list[AnalysisIssue]) -> None:
    label = plan.label()

    def report(code: str, message: str) -> None:
        issues.append(AnalysisIssue(code, message, node=label, path=path))

    def check_expr(expr, allowed: set[int], what: str) -> None:
        if expr is None:
            return
        for cid in sorted(expr.free_columns().ids()):
            if cid not in allowed:
                report("columns.unresolved",
                       f"{what} {expr.sql()} references column #{cid}, "
                       f"which no input delivers")

    def check_delivered(required: Sequence[Column], allowed: set[int],
                        what: str) -> None:
        for cid in _ids(required):
            if cid not in allowed:
                report("columns.undelivered",
                       f"{what} requires column #{cid}, which no input "
                       f"delivers")

    children = plan.children
    child_cols = [child.columns for child in children]
    delivered = set(env)
    for cols in child_cols:
        delivered.update(_ids(cols))

    out_ids = _ids(plan.columns)
    for cid in sorted({c for c in out_ids if out_ids.count(c) > 1}):
        report("schema.duplicate",
               f"column #{cid} appears {out_ids.count(cid)} times in the "
               f"operator's layout")

    child_envs = [env] * len(children)
    child_segments = [segments] * len(children)

    if isinstance(plan, (PTableScan, PConstantScan)):
        pass
    elif isinstance(plan, PIndexSeek):
        if len(plan.key_exprs) != len(plan.key_columns):
            report("index.key-arity",
                   f"{len(plan.key_columns)} key column(s) but "
                   f"{len(plan.key_exprs)} probe expression(s)")
        scan_ids = set(out_ids)
        for column in plan.key_columns:
            if column.cid not in scan_ids:
                report("index.key-scope",
                       f"seek key {column!r} is not a column of the "
                       f"scanned table")
        for expr in plan.key_exprs:
            check_expr(expr, set(env), "probe expression")
        check_expr(plan.residual, scan_ids | env, "seek residual")
        if index_provider is not None:
            names = tuple(c.name for c in plan.key_columns)
            if names not in {tuple(cols)
                             for cols in index_provider(plan.table_name)}:
                report("index.no-such-index",
                       f"no index on {plan.table_name} matches seek "
                       f"columns ({', '.join(names)})")
    elif isinstance(plan, PSegmentRef):
        if tuple(out_ids) not in segments:
            report("segment.unbound-ref",
                   "SegmentRef is not bound by any enclosing SegmentApply"
                   " (or its columns do not match the binding)")
    elif isinstance(plan, PFilter):
        check_expr(plan.predicate, delivered, "filter predicate")
        check_delivered(plan.columns, delivered, "pass-through layout")
    elif isinstance(plan, PProject):
        for column, expr in plan.items:
            check_expr(expr, delivered, f"projection of {column!r}")
        produced = {c.cid for c, _ in plan.items}
        check_delivered(plan.columns, produced | env, "projection layout")
    elif isinstance(plan, (PHashJoin, PNestedLoopsJoin, PNLApply)):
        left_ids = set(_ids(child_cols[0]))
        right_ids = set(_ids(child_cols[1]))
        for cid in sorted(left_ids & right_ids):
            report("schema.ambiguous",
                   f"column #{cid} is delivered by both join inputs")
        if isinstance(plan, PHashJoin):
            for expr in plan.left_keys:
                check_expr(expr, left_ids | env, "hash-join probe key")
            for expr in plan.right_keys:
                check_expr(expr, right_ids | env, "hash-join build key")
            if len(plan.left_keys) != len(plan.right_keys):
                report("join.key-arity",
                       f"{len(plan.left_keys)} build key(s) but "
                       f"{len(plan.right_keys)} probe key(s)")
            check_expr(plan.residual, delivered, "join residual")
        elif isinstance(plan, PNestedLoopsJoin):
            check_expr(plan.predicate, delivered, "join predicate")
        else:
            check_expr(plan.predicate, delivered, "apply predicate")
            check_expr(plan.guard, left_ids | env, "apply guard")
            child_envs = [env, env | left_ids]
        check_delivered(plan.columns, delivered, "join output layout")
    elif isinstance(plan, (PHashAggregate, PStreamAggregate)):
        input_ids = set(_ids(child_cols[0])) | env
        check_delivered(plan.group_columns, input_ids, "grouping")
        for column, call in plan.aggregates:
            check_expr(call, input_ids, f"aggregate {column!r}")
        produced = {c.cid for c in plan.group_columns}
        produced.update(c.cid for c, _ in plan.aggregates)
        check_delivered(plan.columns, produced | env, "aggregate layout")
    elif isinstance(plan, PScalarAggregate):
        input_ids = set(_ids(child_cols[0])) | env
        for column, call in plan.aggregates:
            check_expr(call, input_ids, f"aggregate {column!r}")
        produced = {c.cid for c, _ in plan.aggregates}
        check_delivered(plan.columns, produced | env, "aggregate layout")
    elif isinstance(plan, (PSort, PTopN)):
        for expr, _asc in plan.keys:
            check_expr(expr, delivered, "sort key")
        check_delivered(plan.columns, delivered, "pass-through layout")
    elif isinstance(plan, (PTop, PMax1row)):
        check_delivered(plan.columns, delivered, "pass-through layout")
    elif isinstance(plan, PUnionAll):
        for index, imap in enumerate(plan.input_maps):
            if len(imap) != len(plan.columns):
                report("schema.map-arity",
                       f"input {index} map has {len(imap)} column(s) for "
                       f"{len(plan.columns)} output column(s)")
            check_delivered(imap, set(_ids(child_cols[index])) | env,
                            f"input {index} map")
    elif isinstance(plan, PDifference):
        for which, imap, cols in (("left", plan.left_map, child_cols[0]),
                                  ("right", plan.right_map, child_cols[1])):
            if len(imap) != len(plan.columns):
                report("schema.map-arity",
                       f"{which} map has {len(imap)} column(s) for "
                       f"{len(plan.columns)} output column(s)")
            check_delivered(imap, set(_ids(cols)) | env, f"{which} map")
    elif isinstance(plan, PSegmentApply):
        left_ids = set(_ids(child_cols[0]))
        check_delivered(plan.segment_columns, left_ids | env,
                        "segment columns")
        right_ids = set(_ids(child_cols[1]))
        for cid in sorted(left_ids & right_ids):
            report("schema.ambiguous",
                   f"column #{cid} is delivered by both the segmented "
                   f"input and the inner plan")
        seg_ids = {c.cid for c in plan.segment_columns}
        check_delivered(plan.columns, seg_ids | right_ids | env,
                        "segment-apply layout")
        binding = tuple(c.cid for c in plan.inner_columns)
        child_envs = [env, env]
        child_segments = [segments, segments + (binding,)]

    for index, child in enumerate(children):
        _walk(child, child_envs[index], path + (index,),
              child_segments[index], index_provider, issues)


def verify_batch_layout(plan: PhysicalOp) -> list[AnalysisIssue]:
    """Positional layout invariants of batched execution.

    :func:`verify_physical` checks column *sets* (everything referenced is
    delivered somewhere); the vectorized engine additionally binds columns
    by *position* — a filter passes its child's columns through unchanged,
    a join's output is the left columns followed by the right columns, an
    aggregate's output is its group columns followed by its aggregate
    columns.  The tuple engine compiles against the same positions, but
    the batched engine also gathers whole child columns by index, so a
    plan whose declared ``columns`` sequence drifts from the construction
    rule would silently transpose data.  This walk re-derives each
    operator's expected layout from its inputs and flags any mismatch.
    """
    issues: list[AnalysisIssue] = []
    _walk_batch(plan, (), issues)
    return issues


def _expected_layout(plan: PhysicalOp) -> Sequence[Column] | None:
    """The column sequence ``plan.columns`` must equal positionally, or
    ``None`` when the operator's layout is free (leaves, union maps)."""
    if isinstance(plan, (PFilter, PSort, PTopN, PTop, PMax1row)):
        return plan.children[0].columns
    if isinstance(plan, PProject):
        return [c for c, _ in plan.items]
    if isinstance(plan, (PHashJoin, PNestedLoopsJoin, PNLApply)):
        if plan.kind.left_only_output:
            return plan.left.columns
        return list(plan.left.columns) + list(plan.right.columns)
    if isinstance(plan, (PHashAggregate, PStreamAggregate)):
        return list(plan.group_columns) + [c for c, _ in plan.aggregates]
    if isinstance(plan, PScalarAggregate):
        return [c for c, _ in plan.aggregates]
    if isinstance(plan, PSegmentApply):
        return list(plan.segment_columns) + list(plan.right.columns)
    return None


def _walk_batch(plan: PhysicalOp, path: tuple[int, ...],
                issues: list[AnalysisIssue]) -> None:
    def report(code: str, message: str) -> None:
        issues.append(AnalysisIssue(code, message, node=plan.label(),
                                    path=path))

    expected = _expected_layout(plan)
    if expected is not None and _ids(plan.columns) != _ids(expected):
        report("batch.layout-drift",
               f"declared layout {_ids(plan.columns)} does not match the "
               f"positional construction {_ids(expected)} the executors "
               f"compile against")
    if isinstance(plan, PConstantScan):
        width = len(plan.columns)
        for index, row in enumerate(plan.rows):
            if len(row) != width:
                report("batch.row-arity",
                       f"constant row {index} has {len(row)} value(s) for "
                       f"{width} column(s)")
                break
    elif isinstance(plan, PSegmentApply):
        # The segment binding is the left input's rows verbatim (both
        # engines publish them unchanged), read positionally by the
        # SegmentRef leaves.  The binding columns may be *renamed*
        # mirrors of the left columns (fresh cids), so only the arity is
        # checkable here.
        if len(plan.inner_columns) != len(plan.left.columns):
            report("batch.segment-binding",
                   f"inner binding has {len(plan.inner_columns)} "
                   f"column(s) for a {len(plan.left.columns)}-column "
                   f"segmented input")
    elif isinstance(plan, (PUnionAll, PDifference)):
        maps = (plan.input_maps if isinstance(plan, PUnionAll)
                else [plan.left_map, plan.right_map])
        for index, imap in enumerate(maps):
            if len(imap) != len(plan.columns):
                report("batch.map-arity",
                       f"map {index} selects {len(imap)} column(s) for a "
                       f"{len(plan.columns)}-column output")
    for index, child in enumerate(plan.children):
        _walk_batch(child, path + (index,), issues)
