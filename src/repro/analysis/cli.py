"""Lint CLI: ``python -m repro.analysis [options] [file.sql ...]``.

Compiles each SQL statement through the full pipeline (bind → normalize
→ optimize) and runs the static verifier at every stage, printing any
invariant violation; with ``--explain`` the checked trees are printed
too.  Statements come from ``.sql`` files (``;``-separated, ``--``
comments stripped) or stdin when no file (or ``-``) is given.

The engine has no SQL DDL, so the catalog the statements are checked
against is the built-in TPC-H schema (``--no-indexes`` drops the FK
indexes, which disables the index-seek checks' catalog half).
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable

from ..algebra import explain
from ..core.normalize import normalize
from ..database import Database, ExplainOptions
from ..errors import ReproError
from ..tpch.schema import create_tpch_schema
from .invariants import verify_logical
from .issues import AnalysisIssue, render_issues
from .physical import verify_physical


def split_statements(text: str) -> list[str]:
    """``;``-separated statements with ``--`` comments removed."""
    lines = []
    for line in text.splitlines():
        comment = line.find("--")
        lines.append(line[:comment] if comment >= 0 else line)
    statements = "\n".join(lines).split(";")
    return [s.strip() for s in statements if s.strip()]


def lint_statement(db: Database, sql: str, *,
                   explain_out: bool = False,
                   explain_options: ExplainOptions | None = None,
                   out=sys.stdout) -> list[AnalysisIssue]:
    """Check one statement at every pipeline stage; returns all issues.

    ``explain_options`` (or the legacy ``explain_out=True``, equivalent
    to default options) also prints the bound tree and then the unified
    :meth:`Database.explain` rendering — the same output every other
    explain entry point produces.
    """
    from ..sql import parse

    if explain_out and explain_options is None:
        explain_options = ExplainOptions()
    mode = db._resolve_mode("full")
    issues: list[AnalysisIssue] = []

    def stage(name: str, found: list[AnalysisIssue]) -> None:
        issues.extend(found)
        if found:
            print(f"{name}:", file=out)
            print(render_issues(found), file=out)

    bound = db._binder.bind(parse(sql))
    stage("bound", verify_logical(bound.rel, allow_subqueries=True))
    normalized = normalize(bound.rel, mode.normalize_config)
    stage("normalized", verify_logical(normalized))
    plan = db._optimizer(mode).optimize(normalized)
    stage("physical",
          verify_physical(plan, index_provider=db._index_provider))
    if explain_options is not None:
        print("-- bound --", file=out)
        print(explain(bound.rel), file=out)
        print(db.explain(sql, mode, options=explain_options), file=out)
    return issues


def _read_sources(paths: list[str]) -> Iterable[tuple[str, str]]:
    if not paths:
        paths = ["-"]
    for path in paths:
        if path == "-":
            yield "<stdin>", sys.stdin.read()
        else:
            with open(path, "r", encoding="utf-8") as handle:
                yield path, handle.read()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify the plans of SQL statements.")
    parser.add_argument("files", nargs="*",
                        help=".sql files to check ('-' or none: stdin)")
    parser.add_argument("--explain", action="store_true",
                        help="print the checked trees (EXPLAIN output)")
    parser.add_argument("--explain-format", choices=("text", "dict"),
                        default="text",
                        help="EXPLAIN rendering (implies --explain)")
    parser.add_argument("--costs", action="store_true",
                        help="include optimizer cost estimates in "
                             "EXPLAIN output (implies --explain)")
    parser.add_argument("--no-indexes", action="store_true",
                        help="build the TPC-H catalog without FK indexes")
    args = parser.parse_args(argv)
    explain_options = None
    if args.explain or args.costs or args.explain_format != "text":
        explain_options = ExplainOptions(costs=args.costs,
                                         format=args.explain_format)

    db = Database()
    create_tpch_schema(db, with_indexes=not args.no_indexes)

    failures = 0
    for origin, text in _read_sources(args.files):
        for number, sql in enumerate(split_statements(text), start=1):
            heading = f"{origin}:{number}"
            try:
                found = lint_statement(db, sql,
                                       explain_options=explain_options)
            except ReproError as exc:
                print(f"{heading}: error: {exc}", file=sys.stderr)
                failures += 1
                continue
            if found:
                print(f"{heading}: {len(found)} issue(s)", file=sys.stderr)
                failures += 1
            else:
                print(f"{heading}: ok")
    return 1 if failures else 0
