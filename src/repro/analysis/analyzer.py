"""Strictness modes, blame reporting, and the :class:`PlanAnalyzer` hub.

The analyzer has three modes, chosen through the ``REPRO_ANALYZE``
environment variable:

* ``off`` — never check anything;
* ``warn`` (the default) — check plans at plan-cache admission time and
  emit :class:`PlanAnalysisWarning` on violations;
* ``strict`` — additionally validate every rewrite-rule application and
  every normalizer pass, and *raise* :class:`~repro.errors.PlanInvariantError`
  on any violation.  Because that error subclasses ``PlanError``, a
  strict-mode failure inside ``Database`` degrades the query to a
  fallback plan rather than failing it.

Per-rule validation produces *blame reports*: "rule X turned valid tree
A into invalid tree B", with stable fingerprints for both trees and a
unified diff of their printed forms.
"""

from __future__ import annotations

import difflib
import os
import warnings
from typing import Optional

from .. import faultinject
from ..algebra.printer import explain, plan_fingerprint
from ..algebra.relational import RelationalOp, SegmentRef
from ..errors import InjectedFault, PlanInvariantError
from .invariants import SegmentBindings, verify_logical
from .issues import AnalysisIssue, render_issues
from .physical import IndexProvider, verify_batch_layout, verify_physical
from .rulechecks import RULE_CHECKS, verify_oj_simplification

OFF = "off"
WARN = "warn"
STRICT = "strict"
_MODES = (OFF, WARN, STRICT)

ENV_VAR = "REPRO_ANALYZE"

_warned_bad_mode = False


class PlanAnalysisWarning(UserWarning):
    """A plan failed static verification in ``warn`` mode."""


def analysis_mode() -> str:
    """The configured strictness mode (``off`` / ``warn`` / ``strict``)."""
    global _warned_bad_mode
    raw = os.environ.get(ENV_VAR, WARN).strip().lower()
    if raw in _MODES:
        return raw
    if not _warned_bad_mode:
        _warned_bad_mode = True
        warnings.warn(
            f"{ENV_VAR}={raw!r} is not one of {', '.join(_MODES)}; "
            f"falling back to {WARN!r}", PlanAnalysisWarning, stacklevel=2)
    return WARN


class PlanAnalyzer:
    """Entry point for every static-verification hook.

    Construct through the ``for_*`` classmethods, which read the mode
    once and return ``None`` when the corresponding hook is disabled —
    callers then skip all analysis work with a single ``is None`` test.
    """

    def __init__(self, mode: Optional[str] = None,
                 index_provider: Optional[IndexProvider] = None) -> None:
        self.mode = mode if mode is not None else analysis_mode()
        self.index_provider = index_provider

    @property
    def enabled(self) -> bool:
        return self.mode != OFF

    @property
    def strict(self) -> bool:
        return self.mode == STRICT

    @classmethod
    def for_rules(cls) -> Optional["PlanAnalyzer"]:
        """Per-rule-application analyzer; active only in strict mode."""
        mode = analysis_mode()
        return cls(mode) if mode == STRICT else None

    @classmethod
    def for_normalization(cls) -> Optional["PlanAnalyzer"]:
        """Per-normalizer-pass analyzer; active only in strict mode."""
        mode = analysis_mode()
        return cls(mode) if mode == STRICT else None

    @classmethod
    def for_admission(cls, index_provider: Optional[IndexProvider] = None,
                      ) -> Optional["PlanAnalyzer"]:
        """Plan-cache-admission analyzer; active in warn and strict."""
        mode = analysis_mode()
        return cls(mode, index_provider) if mode != OFF else None

    # -- fault injection ---------------------------------------------------
    def _armed(self) -> bool:
        """False when a fault is injected: skip the check, never the query."""
        try:
            faultinject.hit("analyzer.check")
        except InjectedFault:
            return False
        return True

    # -- checks ------------------------------------------------------------
    def check_logical(self, rel: RelationalOp, *, stage: str,
                      env: frozenset[int] = frozenset(),
                      allow_subqueries: bool = False,
                      segment_bindings: SegmentBindings = (),
                      ) -> list[AnalysisIssue]:
        if not self.enabled or not self._armed():
            return []
        issues = verify_logical(rel, env,
                                allow_subqueries=allow_subqueries,
                                segment_bindings=segment_bindings)
        self._report(stage, issues)
        return issues

    def check_physical(self, plan, *, stage: str,
                       env: frozenset[int] = frozenset(),
                       ) -> list[AnalysisIssue]:
        if not self.enabled or not self._armed():
            return []
        issues = verify_physical(plan, env,
                                 index_provider=self.index_provider)
        # Positional layout checks: both engines compile against these,
        # and the vectorized engine gathers whole columns by position.
        issues.extend(verify_batch_layout(plan))
        self._report(stage, issues)
        return issues

    def admissible(self, rel: Optional[RelationalOp] = None,
                   plan=None) -> bool:
        """Silent pass/fail verdict, for the plan cache's admission hook.

        The cache refuses (but does not fail on) entries whose trees do
        not verify; the loud per-stage checks have already reported, so
        this stays quiet.  ``rel`` is the *bound* tree, which may still
        embed scalar subqueries legitimately.
        """
        if not self.enabled or not self._armed():
            return True
        if rel is not None and verify_logical(rel, allow_subqueries=True):
            return False
        if plan is not None and (
                verify_physical(plan, index_provider=self.index_provider)
                or verify_batch_layout(plan)):
            return False
        return True

    def check_rule_application(self, rule_name: str,
                               before: RelationalOp,
                               after: RelationalOp) -> list[AnalysisIssue]:
        """Validate one rewrite-rule application, with blame on failure."""
        if not self.enabled or not self._armed():
            return []
        env = frozenset(before.outer_references().ids())
        segments = _segment_bindings_of(before)
        issues = verify_logical(after, env, segment_bindings=segments)
        before_ids = [c.cid for c in before.output_columns()]
        after_ids = [c.cid for c in after.output_columns()]
        if before_ids != after_ids:
            issues.append(AnalysisIssue(
                "rule.schema-changed",
                f"output schema changed from {before_ids} to {after_ids}; "
                f"memo group members must agree on their ordered output",
                node=after.label()))
        escaped = after.outer_references().ids() - env
        if escaped:
            names = ", ".join(f"#{cid}" for cid in sorted(escaped))
            issues.append(AnalysisIssue(
                "scope.rule-escape",
                f"result references columns {names} that were not free in "
                f"the rule's input", node=after.label()))
        extra_check = RULE_CHECKS.get(rule_name)
        if extra_check is not None:
            issues.extend(extra_check(before, after))
        blame = _blame(rule_name, before, after) if issues else None
        self._report(f"rule:{rule_name}", issues, blame)
        return issues

    def check_oj_simplification(self, before: RelationalOp,
                                after: RelationalOp) -> list[AnalysisIssue]:
        if not self.enabled or not self._armed():
            return []
        issues = verify_oj_simplification(before, after)
        blame = None
        if issues:
            blame = _blame("simplify_outerjoins", before, after)
        self._report("normalize:simplify_outerjoins", issues, blame)
        return issues

    # -- reporting ---------------------------------------------------------
    def _report(self, stage: str, issues: list[AnalysisIssue],
                blame: Optional[str] = None) -> None:
        if not issues:
            return
        message = f"plan verification failed at {stage}:\n" \
                  f"{render_issues(issues)}"
        if blame:
            message = f"{message}\n{blame}"
        if self.strict:
            raise PlanInvariantError(message, issues=issues, blame=blame)
        warnings.warn(message, PlanAnalysisWarning, stacklevel=3)


def _segment_bindings_of(rel: RelationalOp) -> SegmentBindings:
    """SegmentRef bindings to assume valid when checking a rule's output.

    Rule bindings are fragments of a memo: an expression cut out of a
    SegmentApply inner tree contains SegmentRef leaves whose enclosing
    binder is outside the fragment.  Any binding present in the *input*
    is taken as granted for the output.
    """
    found: list[tuple[int, ...]] = []

    def collect(node: RelationalOp) -> None:
        if isinstance(node, SegmentRef):
            binding = tuple(c.cid for c in node.columns)
            if binding not in found:
                found.append(binding)
        for child in node.children:
            collect(child)

    collect(rel)
    return tuple(found)


def _blame(rule_name: str, before: RelationalOp,
           after: RelationalOp) -> str:
    fp_before = plan_fingerprint(before)
    fp_after = plan_fingerprint(after)
    diff = "\n".join(difflib.unified_diff(
        explain(before).splitlines(), explain(after).splitlines(),
        fromfile=f"valid tree {fp_before}",
        tofile=f"invalid tree {fp_after}", lineterm=""))
    return (f"rule {rule_name!r} turned valid tree {fp_before} into "
            f"invalid tree {fp_after}:\n{diff}")
