"""Static plan analysis: invariant verification without execution.

The analyzer checks logical and physical operator trees for
well-formedness (column-reference integrity, schema consistency,
correlation scoping) and re-derives the paper's rule-specific legality
conditions at every rewrite application.  See DESIGN.md, "Invariant
catalog", for the full list of checks and the strictness modes.

Run as a lint tool with ``python -m repro.analysis query.sql``.
"""

from .analyzer import (ENV_VAR, OFF, STRICT, WARN, PlanAnalysisWarning,
                       PlanAnalyzer, analysis_mode)
from .invariants import verify_logical
from .issues import AnalysisIssue, render_issues
from .physical import verify_batch_layout, verify_physical
from .rulechecks import RULE_CHECKS, verify_oj_simplification

__all__ = [
    "AnalysisIssue",
    "ENV_VAR",
    "OFF",
    "PlanAnalysisWarning",
    "PlanAnalyzer",
    "RULE_CHECKS",
    "STRICT",
    "WARN",
    "analysis_mode",
    "render_issues",
    "verify_batch_layout",
    "verify_logical",
    "verify_oj_simplification",
    "verify_physical",
]
