"""Issue records produced by the static plan analyzer."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AnalysisIssue:
    """One invariant violation found in an operator tree.

    ``code`` is a stable dotted identifier (``columns.unresolved``,
    ``schema.duplicate``, ...) suitable for filtering and for tests;
    ``node`` is the offending operator's display label and ``path`` the
    child-index route from the root to it (so the issue can be located in
    an ``explain`` rendering without holding a reference to the tree).
    """

    code: str
    message: str
    node: str = ""
    path: tuple[int, ...] = field(default_factory=tuple)

    def render(self) -> str:
        location = f" at {self.node}" if self.node else ""
        route = "/".join(str(i) for i in self.path)
        route = f" (path {route})" if route else ""
        return f"[{self.code}]{location}{route}: {self.message}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_issues(issues: list[AnalysisIssue]) -> str:
    return "\n".join(issue.render() for issue in issues)
