"""Well-formedness invariants for logical operator trees.

:func:`verify_logical` walks a tree and checks, without executing
anything, the structural invariants every valid tree must satisfy at
every intermediate point of the paper's rewrite pipeline:

* **column-reference integrity** — every column an operator reads (in a
  predicate, projection item, aggregate argument, grouping slot or
  union/difference map) is produced by exactly one visible child, or is
  a correlation parameter bound by an enclosing Apply (the ``env``);
* **schema consistency** — output schemas are duplicate-free, and join
  inputs have disjoint column identities (so "exactly one visible
  child" is decidable);
* **column freshness** — columns introduced by a node never collide
  with columns flowing up from below (no shadowing);
* **correlation scoping** — Join inputs are uncorrelated (free columns
  beyond ``env`` are flagged), Apply parameters are visible only inside
  the parameterized subtree, SegmentApply inner trees reach the segment
  exclusively through a correctly-bound :class:`SegmentRef`;
* **derived-property consistency** — every key reported by
  ``derive_keys`` only mentions output columns, and the cardinality
  derivation agrees with the one-row operators.

The checks are purely local-plus-environment, so the walk is a single
pass; ``env`` is the set of column ids bound by enclosing operators
(empty for a full query — which makes the walk also the "no free
correlation variables survive" check the normalizer must satisfy).
"""

from __future__ import annotations

from ..algebra.properties import derive_keys, max_one_row
from ..algebra.relational import (Apply, Difference, Join, Max1row,
                                  RelationalOp, ScalarGroupBy, SegmentApply,
                                  SegmentRef, UnionAll)
from .issues import AnalysisIssue

#: Allowed SegmentRef bindings: a stack of exact column-id tuples.
SegmentBindings = tuple[tuple[int, ...], ...]


def verify_logical(rel: RelationalOp,
                   env: frozenset[int] = frozenset(), *,
                   allow_subqueries: bool = False,
                   segment_bindings: SegmentBindings = (),
                   ) -> list[AnalysisIssue]:
    """All invariant violations in ``rel``, given outer bindings ``env``.

    ``allow_subqueries`` admits relational subtrees embedded in scalar
    expressions (the binder's pre-normalization form) and verifies them
    recursively; when False their mere presence is a violation (the
    normalizer promises to remove them all).  ``segment_bindings`` seeds
    the SegmentRef scope stack, for verifying fragments cut out of a
    SegmentApply inner tree (the optimizer optimizes those separately).
    """
    issues: list[AnalysisIssue] = []
    _walk(rel, env, (), segment_bindings, allow_subqueries, issues)
    return issues


def _ids(columns) -> list[int]:
    return [c.cid for c in columns]


def _name(columns, cid: int) -> str:
    for c in columns:
        if c.cid == cid:
            return repr(c)
    return f"#{cid}"


def _walk(rel: RelationalOp, env: frozenset[int], path: tuple[int, ...],
          segments: SegmentBindings, allow_subqueries: bool,
          issues: list[AnalysisIssue]) -> None:
    label = rel.label()

    def report(code: str, message: str) -> None:
        issues.append(AnalysisIssue(code, message, node=label, path=path))

    children = rel.children
    child_outputs = [child.output_columns() for child in children]
    visible = set(env)
    seen_in_children: set[int] = set()
    for cols in child_outputs:
        for cid in _ids(cols):
            visible.add(cid)
            seen_in_children.add(cid)

    # -- schema consistency ------------------------------------------------
    output = rel.output_columns()
    out_ids = _ids(output)
    duplicates = {cid for cid in out_ids if out_ids.count(cid) > 1}
    for cid in sorted(duplicates):
        report("schema.duplicate",
               f"output column {_name(output, cid)} appears "
               f"{out_ids.count(cid)} times in the output schema")

    # -- column-reference integrity ----------------------------------------
    for expr in rel.local_expressions():
        for cid in sorted(expr.free_columns().ids()):
            if cid not in visible:
                report("columns.unresolved",
                       f"expression {expr.sql()} references column #{cid},"
                       f" which no visible input produces")
        if expr.contains_subquery():
            if allow_subqueries:
                for sub in _scalar_relational_children(expr):
                    _walk(sub, frozenset(visible), path, segments,
                          allow_subqueries, issues)
            else:
                report("subquery.residual",
                       f"expression {expr.sql()} still embeds a relational"
                       f" subquery after normalization claimed to finish")
    slot_env = visible
    if isinstance(rel, (UnionAll, Difference)):
        # Positional maps must draw from their *own* input (or the env).
        if isinstance(rel, UnionAll):
            named_maps = [(f"input {i}", imap, child_outputs[i])
                          for i, imap in enumerate(rel.input_maps)]
        else:
            named_maps = [("left", rel.left_map, child_outputs[0]),
                          ("right", rel.right_map, child_outputs[1])]
        for which, imap, cols in named_maps:
            allowed = set(_ids(cols)) | env
            for cid in _ids(imap):
                if cid not in allowed:
                    report("columns.unresolved",
                           f"{which} map references column #{cid}, which "
                           f"that input does not produce")
    else:
        for cid in _ids(rel.local_column_slots()):
            if cid not in slot_env:
                report("columns.unresolved",
                       f"column slot #{cid} is not produced by any "
                       f"visible input")

    # -- column freshness --------------------------------------------------
    produced = rel.produced_columns()
    if children:
        for cid in _ids(produced):
            if cid in seen_in_children:
                report("columns.shadowed",
                       f"column {_name(produced, cid)} is introduced here "
                       f"but already produced by a child")
            elif cid in env:
                report("columns.shadowed",
                       f"column {_name(produced, cid)} is introduced here "
                       f"but already bound by an enclosing operator")

    # -- operator-specific scoping -----------------------------------------
    child_envs = [env] * len(children)
    child_segments = [segments] * len(children)
    if isinstance(rel, (Join, Apply)):
        left_ids = set(_ids(child_outputs[0]))
        right_ids = set(_ids(child_outputs[1]))
        overlap = left_ids & right_ids
        for cid in sorted(overlap):
            report("schema.ambiguous",
                   f"column #{cid} is produced by both join inputs")
        if isinstance(rel, Join):
            for index, child in enumerate(children):
                free = child.outer_references().ids() - env
                if free:
                    names = ", ".join(f"#{cid}" for cid in sorted(free))
                    report("scope.correlated-join-input",
                           f"{('left', 'right')[index]} input of an "
                           f"uncorrelated join has free columns {names}")
        else:
            # Apply: parameters are the left columns, visible only on
            # the right; anything else free on the right is an escape.
            child_envs = [env, env | left_ids]
    elif isinstance(rel, SegmentApply):
        left_ids = set(_ids(child_outputs[0]))
        seg_ids = _ids(rel.segment_columns)
        for cid in seg_ids:
            if cid not in left_ids:
                report("segment.bad-segment-column",
                       f"segment column #{cid} is not produced by the "
                       f"segmented input")
        right_ids = set(_ids(child_outputs[1]))
        for cid in sorted(left_ids & right_ids):
            report("schema.ambiguous",
                   f"column #{cid} is produced by both the segmented "
                   f"input and the inner tree")
        # The inner tree sees the segment only through its SegmentRef
        # mirror columns — never the outer columns themselves.
        child_envs = [env, env]
        binding = tuple(c.cid for c in rel.inner_columns)
        child_segments = [segments, segments + (binding,)]
    elif isinstance(rel, SegmentRef):
        binding = tuple(c.cid for c in rel.columns)
        if binding not in segments:
            report("segment.unbound-ref",
                   "SegmentRef is not bound by any enclosing SegmentApply"
                   " (or its columns do not match the binding)")
    # -- derived-property consistency --------------------------------------
    out_id_set = set(out_ids)
    for key in derive_keys(rel):
        stray = key - out_id_set
        if stray:
            names = ", ".join(f"#{cid}" for cid in sorted(stray))
            report("cardinality.key-scope",
                   f"derived key mentions columns {names} outside the "
                   f"output schema")
    if isinstance(rel, (Max1row, ScalarGroupBy)) and not max_one_row(rel):
        report("cardinality.max1row",
               "cardinality derivation denies the operator's own "
               "at-most-one-row guarantee")

    for index, child in enumerate(children):
        _walk(child, child_envs[index], path + (index,),
              child_segments[index], allow_subqueries, issues)


def _scalar_relational_children(expr) -> list[RelationalOp]:
    found = list(expr.relational_children)
    for child in expr.children:
        found.extend(_scalar_relational_children(child))
    return found
