"""Rule-specific legality re-verification (paper Section 3).

The generic invariants of :mod:`.invariants` catch structural damage; the
checks here re-derive the *semantic* side conditions of the GroupBy
reordering rules from the rule's input, independently of the rule code
that decided to fire.  A rule with a broken condition test produces a
structurally pristine but semantically wrong tree — exactly the class of
bug Section 3's conditions exist to prevent — and these checks catch it
at the moment of application.

Also here: :func:`verify_oj_simplification`, a lockstep checker for the
normalizer's outerjoin-simplification pass.  It recomputes a *superset*
of the null-rejected columns the pass may legally rely on (every
propagation step is relaxed relative to ``oj_simplify``: guards are
ignored, cardinality resets are skipped, aggregate transmission is
unconditional) and flags any LOJ→join conversion that is unjustifiable
even under that relaxation.  Sound by construction: anything flagged is
definitely illegal.
"""

from __future__ import annotations

from typing import Callable

from ..algebra.properties import (derive_fds, derive_keys,
                                  null_rejected_columns, strict_columns,
                                  _add_predicate_fds)
from ..algebra.relational import (Apply, Difference, GroupBy, Join,
                                  JoinKind, Project, RelationalOp, Select,
                                  UnionAll, _GroupByBase)
from ..algebra.scalar import Case
from .issues import AnalysisIssue

RuleCheck = Callable[[RelationalOp, RelationalOp], list[AnalysisIssue]]


def _ids(columns) -> frozenset[int]:
    return frozenset(c.cid for c in columns)


def _issue(code: str, message: str, node: str = "") -> AnalysisIssue:
    return AnalysisIssue(code, message, node=node)


def _strip_projects(rel: RelationalOp) -> RelationalOp:
    while isinstance(rel, Project):
        rel = rel.child
    return rel


def _predicate_ids(join: Join) -> frozenset[int]:
    if join.predicate is None:
        return frozenset()
    return join.predicate.free_columns().ids()


# ---------------------------------------------------------------------------
# GroupBy motion (Sections 3.1 / 3.2)
# ---------------------------------------------------------------------------

def check_groupby_push_below_join(before: RelationalOp,
                                  after: RelationalOp
                                  ) -> list[AnalysisIssue]:
    if not (isinstance(before, GroupBy) and isinstance(before.child, Join)):
        return [_issue("rule.pattern",
                       "groupby_push_below_join fired without a "
                       "GroupBy-over-Join input", before.label())]
    join = before.child
    core = _strip_projects(after)
    if not isinstance(core, Join):
        return [_issue("rule.pattern",
                       "result of groupby_push_below_join is not a join",
                       after.label())]
    pushed_left = isinstance(_strip_projects(core.left), _GroupByBase)
    pushed_right = isinstance(_strip_projects(core.right), _GroupByBase)
    if pushed_left == pushed_right:
        return []  # cannot identify the pushed side; generic checks only
    side = "left" if pushed_left else "right"
    aggregated = join.left if side == "left" else join.right
    preserved = join.right if side == "left" else join.left
    issues: list[AnalysisIssue] = []
    if core.kind is not join.kind:
        issues.append(_issue(
            "rule.join-kind-changed",
            f"join kind changed from {join.kind.value} to "
            f"{core.kind.value}", after.label()))
    if join.kind is JoinKind.LEFT_OUTER and side != "right":
        issues.append(_issue(
            "groupby.outerjoin-side",
            "a GroupBy may only be pushed into the NULL-padded side of a "
            "left outer join", after.label()))

    agg_ids = _ids(aggregated.output_columns())
    group_ids = _ids(before.group_columns)

    # Condition: aggregates confined to the aggregated side; count(*)
    # would count join multiplicity and may never be pushed.
    for column, call in before.aggregates:
        if call.argument is None:
            issues.append(_issue(
                "groupby.push-countstar",
                f"count(*) (output {column!r}) counts join multiplicity "
                f"and cannot be pushed below a join", before.label()))
        elif not call.argument.free_columns().ids() <= agg_ids:
            issues.append(_issue(
                "groupby.push-agg-side",
                f"aggregate {call.sql()} reads columns of the preserved "
                f"side", before.label()))

    # Condition: a key of the preserved side is among the grouping
    # columns (otherwise the join duplicates pre-aggregated rows).
    if not any(key <= group_ids for key in derive_keys(preserved)):
        issues.append(_issue(
            "groupby.push-no-key",
            "no key of the preserved side is contained in the grouping "
            "columns", before.label()))

    # Condition: aggregated-side predicate columns are grouped, or pinned
    # per group through functional dependencies.
    extra = (_predicate_ids(join) & agg_ids) - group_ids
    if extra:
        fds = derive_fds(preserved).copy()
        fds.add_all(derive_fds(aggregated))
        if join.predicate is not None:
            _add_predicate_fds(fds, join.predicate)
        if not fds.determines(group_ids, extra):
            names = ", ".join(f"#{cid}" for cid in sorted(extra))
            issues.append(_issue(
                "groupby.push-predicate-columns",
                f"join-predicate columns {names} on the aggregated side "
                f"are neither grouped nor functionally determined by the "
                f"grouping columns", before.label()))

    # Section 3.2: under a left outer join, any aggregate whose agg(∅) is
    # non-NULL needs the computing project that patches padded rows.
    if join.kind is JoinKind.LEFT_OUTER and any(
            call.descriptor.value_on_empty is not None
            for _, call in before.aggregates):
        wrappers: list[Project] = []
        node = after
        while isinstance(node, Project):
            wrappers.append(node)
            node = node.child
        has_patch = any(isinstance(expr, Case)
                        for wrapper in wrappers
                        for _, expr in wrapper.items)
        if not has_patch:
            issues.append(_issue(
                "groupby.outerjoin-no-computing-project",
                "an aggregate with non-NULL agg(∅) was pushed below a "
                "left outer join without a computing project patching "
                "NULL-padded rows", after.label()))
    return issues


def check_groupby_pull_above_join(before: RelationalOp,
                                  after: RelationalOp
                                  ) -> list[AnalysisIssue]:
    if not isinstance(before, Join):
        return [_issue("rule.pattern",
                       "groupby_pull_above_join fired without a join "
                       "input", before.label())]
    candidates = []
    for side in ("left", "right"):
        child = before.left if side == "left" else before.right
        if isinstance(child, GroupBy):
            candidates.append((side, child))
    if not candidates:
        return [_issue("rule.pattern",
                       "groupby_pull_above_join fired without a GroupBy "
                       "join input", before.label())]
    predicate_ids = _predicate_ids(before)
    failures: list[AnalysisIssue] = []
    for side, child in candidates:
        other = before.right if side == "left" else before.left
        side_issues: list[AnalysisIssue] = []
        agg_ids = _ids(c for c, _ in child.aggregates)
        if predicate_ids & agg_ids:
            side_issues.append(_issue(
                "groupby.pull-predicate-on-aggregate",
                "the join predicate reads aggregate results, which do "
                "not exist below the pulled GroupBy", before.label()))
        if not derive_keys(other):
            side_issues.append(_issue(
                "groupby.pull-no-key",
                "the joined relation has no key, so the join may "
                "duplicate rows into a group", before.label()))
        if before.kind is JoinKind.LEFT_OUTER:
            side_issues.extend(_outer_pull_issues(before, child))
        elif before.kind is not JoinKind.INNER:
            side_issues.append(_issue(
                "groupby.pull-join-kind",
                f"GroupBy pull-above is not defined for "
                f"{before.kind.value} joins", before.label()))
        if not side_issues:
            return []  # at least one admissible side justifies the result
        failures = side_issues
    return failures


def _outer_pull_issues(op: Join, gb: GroupBy) -> list[AnalysisIssue]:
    issues: list[AnalysisIssue] = []
    inner_ids = _ids(gb.child.output_columns())
    for _, call in gb.aggregates:
        if call.descriptor.value_on_empty is not None:
            issues.append(_issue(
                "groupby.outerjoin-pull-empty-value",
                f"{call.sql()} yields a non-NULL value on an empty group "
                f"and would turn NULL padding into a constant",
                op.label()))
        elif call.argument is None or \
                not (strict_columns(call.argument) & inner_ids):
            issues.append(_issue(
                "groupby.outerjoin-pull-nonstrict",
                f"{call.sql()} is not strict in the aggregated side, so "
                f"a padded row would contribute to its group",
                op.label()))
    group_ids = _ids(gb.group_columns)
    if op.predicate is None or \
            not (null_rejected_columns(op.predicate) & group_ids):
        issues.append(_issue(
            "groupby.outerjoin-pull-no-rejection",
            "the join predicate does not reject NULL on a grouping "
            "column, so matched rows could share a group with the "
            "padded row", op.label()))
    return issues


def check_semijoin_groupby_reorder(before: RelationalOp,
                                   after: RelationalOp
                                   ) -> list[AnalysisIssue]:
    # Direction 1: (G R) ⋉p S → G (R ⋉p S)
    if isinstance(before, Join) and before.kind.left_only_output \
            and isinstance(before.left, GroupBy):
        gb = before.left
        agg_ids = _ids(c for c, _ in gb.aggregates)
        if _predicate_ids(before) & agg_ids:
            return [_issue(
                "semijoin.predicate-on-aggregate",
                "the semijoin predicate reads aggregate results, which "
                "do not exist below the pushed semijoin",
                before.label())]
        return []
    # Direction 2: G (R ⋉p S) → (G R) ⋉p S
    if isinstance(before, GroupBy) and isinstance(before.child, Join) \
            and before.child.kind.left_only_output:
        join = before.child
        needed = _predicate_ids(join) & _ids(join.left.output_columns())
        if not needed <= _ids(before.group_columns):
            names = ", ".join(f"#{cid}" for cid in
                              sorted(needed - _ids(before.group_columns)))
            return [_issue(
                "semijoin.predicate-columns-ungrouped",
                f"semijoin-predicate columns {names} are not grouping "
                f"columns, so the filter differs per pre-aggregation row",
                before.label())]
        return []
    return [_issue("rule.pattern",
                   "semijoin_groupby_reorder fired without a matching "
                   "input shape", before.label())]


def check_semijoin_to_join_distinct(before: RelationalOp,
                                    after: RelationalOp
                                    ) -> list[AnalysisIssue]:
    if not (isinstance(before, Join)
            and before.kind is JoinKind.LEFT_SEMI):
        return [_issue("rule.pattern",
                       "semijoin_to_join_distinct fired without a "
                       "semijoin input", before.label())]
    issues: list[AnalysisIssue] = []
    if not derive_keys(before.left):
        issues.append(_issue(
            "semijoin.distinct-no-key",
            "the semijoin's left input has no key; join-plus-distinct "
            "would collapse genuine duplicates", before.label()))
    core = _strip_projects(after)
    if isinstance(core, GroupBy):
        if core.aggregates:
            issues.append(_issue(
                "semijoin.distinct-aggregates",
                "the duplicate-removal GroupBy computes aggregates",
                after.label()))
        if _ids(core.group_columns) != _ids(before.left.output_columns()):
            issues.append(_issue(
                "semijoin.distinct-groups",
                "the duplicate-removal GroupBy does not group on exactly "
                "the left input's columns", after.label()))
    else:
        issues.append(_issue(
            "rule.pattern",
            "result of semijoin_to_join_distinct lacks the "
            "duplicate-removal GroupBy", after.label()))
    return issues


#: Rule-name-keyed legality re-checks, consulted per application.
RULE_CHECKS: dict[str, RuleCheck] = {
    "groupby_push_below_join": check_groupby_push_below_join,
    "groupby_pull_above_join": check_groupby_pull_above_join,
    "semijoin_groupby_reorder": check_semijoin_groupby_reorder,
    "semijoin_to_join_distinct": check_semijoin_to_join_distinct,
}


# ---------------------------------------------------------------------------
# Outerjoin-simplification lockstep check (paper Section 2.3 / 4)
# ---------------------------------------------------------------------------

def verify_oj_simplification(before: RelationalOp,
                             after: RelationalOp) -> list[AnalysisIssue]:
    """Flag LOJ→join conversions no null-rejection evidence can justify.

    Walks the two trees in lockstep (the pass only flips join kinds, so
    the shapes must match) carrying a deliberate *over*-approximation of
    the columns on which NULL rows are rejected above each position; a
    conversion whose right side intersects even that superset nowhere is
    illegal under any reading of the Section 2.3 condition.
    """
    issues: list[AnalysisIssue] = []
    _oj_walk(before, after, frozenset(), (), issues)
    return issues


def _oj_walk(before: RelationalOp, after: RelationalOp,
             rejected: frozenset[int], path: tuple[int, ...],
             issues: list[AnalysisIssue]) -> None:
    if type(before) is not type(after) or \
            len(before.children) != len(after.children):
        issues.append(AnalysisIssue(
            "oj.shape-changed",
            f"outerjoin simplification changed the tree shape "
            f"({before.label()} became {after.label()})",
            node=after.label(), path=path))
        return
    if isinstance(before, (Join, Apply)) and before.kind is not after.kind:
        if (before.kind, after.kind) != (JoinKind.LEFT_OUTER,
                                         JoinKind.INNER):
            issues.append(AnalysisIssue(
                "oj.kind-changed",
                f"unexpected join-kind change {before.kind.value} → "
                f"{after.kind.value}", node=after.label(), path=path))
        else:
            right_ids = _ids(before.right.output_columns())
            if not rejected & right_ids:
                issues.append(AnalysisIssue(
                    "oj.unjustified-simplification",
                    "left outer join was converted to a join, but no "
                    "predicate above rejects NULL on any column of the "
                    "NULL-padded side", node=after.label(), path=path))
    child_rejected = _oj_propagate(before, rejected)
    for index, (b_child, a_child) in enumerate(zip(before.children,
                                                   after.children)):
        _oj_walk(b_child, a_child, child_rejected[index], path + (index,),
                 issues)


def _oj_propagate(rel: RelationalOp,
                  rejected: frozenset[int]) -> list[frozenset[int]]:
    """Per-child null-rejection supersets (see verify_oj_simplification)."""
    if isinstance(rel, Select):
        down = rejected | null_rejected_columns(rel.predicate)
        return [down]
    if isinstance(rel, (Join, Apply)):
        down = rejected
        if rel.predicate is not None:
            down = down | null_rejected_columns(rel.predicate)
        return [down, down]
    if isinstance(rel, Project):
        extra: set[int] = set()
        for column, expr in rel.items:
            if column.cid in rejected:
                extra.update(strict_columns(expr))
        return [rejected | extra]
    if isinstance(rel, _GroupByBase):
        extra = set()
        for column, call in rel.aggregates:
            if column.cid in rejected and call.argument is not None:
                extra.update(strict_columns(call.argument))
        return [rejected | extra]
    if isinstance(rel, UnionAll):
        downs = []
        out_ids = [c.cid for c in rel.columns]
        for imap in rel.input_maps:
            translated = {imap[j].cid for j, cid in enumerate(out_ids)
                          if cid in rejected}
            downs.append(rejected | translated)
        return downs
    if isinstance(rel, Difference):
        out_ids = [c.cid for c in rel.columns]
        downs = []
        for imap in (rel.left_map, rel.right_map):
            translated = {imap[j].cid for j, cid in enumerate(out_ids)
                          if cid in rejected}
            downs.append(rejected | translated)
        return downs
    return [rejected] * len(rel.children)
