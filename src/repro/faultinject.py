"""Deterministic, test-scoped fault injection.

Production robustness code is only as good as the tests that exercise its
failure paths.  This module plants named *injection points* in the
optimizer, plan cache and executors; tests arm them with context managers
and the instrumented code raises :class:`~repro.errors.InjectedFault` at
exactly the chosen moment:

    with faultinject.fail_at("optimizer.explore", n=3):
        result = db.execute(sql)          # third exploration task fails
    assert result.degraded

When nothing is armed — the production state — a hit costs one global
read and a ``None`` comparison, so the instrumentation is free on the
hot path.  Arming is process-global but strictly scoped to the ``with``
block (context managers compose; each removes only its own trigger).
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from .errors import InjectedFault

#: Every injection point wired into the engine.  ``fail_at`` validates
#: against this set so a typo cannot silently arm nothing; chaos tests
#: iterate it so every registered site is actually exercised.
INJECTION_SITES = frozenset({
    "optimizer.explore",    # per exploration task in Optimizer._explore
    "optimizer.memo",       # per tree inserted into a Memo
    "optimizer.implement",  # per group visited by Implementer.best_plan
    "plancache.get",        # per plan-cache lookup
    "plancache.put",        # per plan-cache insertion
    "executor.open",        # per tuple-engine physical execution start
    "executor.open.vectorized",  # per vectorized-engine execution start
    "columnar.decode",      # per column-chunk decode (first touch only)
    "executor.naive",       # per naive-interpreter run start
    "analyzer.check",       # per static plan-analysis entry point
    "admission.enqueue",    # per request submitted to admission control
    "snapshot.install",     # per table-version install (commit point)
    "wire.decode",          # per wire-protocol request decode
    "feedback.record",      # per feedback-loop observation; a fault here
                            # drops the observation, never fails the query
    "wal.append",           # per WAL record, before any byte is written;
                            # torn mode persists a partial record first
    "wal.fsync",            # per WAL record, after the write but before
                            # fsync (the record may or may not survive)
    "wal.checkpoint",       # per checkpoint, before the atomic rename
                            # publishes it (old checkpoint + log intact)
    "recovery.replay",      # per WAL record applied during recovery
    "matview.refresh",      # per materialized-view content mutation
                            # (create/refresh recompute and per-view
                            # commit maintenance), before any view state
                            # changes
})


class _Trigger:
    """One armed failure: fires on the n-th hit, always, or at a rate."""

    __slots__ = ("site", "countdown", "always", "rate", "rng", "fired",
                 "torn")

    def __init__(self, site: str, countdown: Optional[int] = None,
                 always: bool = False, rate: float = 0.0,
                 rng: Optional[random.Random] = None,
                 torn: bool = False) -> None:
        self.site = site
        self.countdown = countdown
        self.always = always
        self.rate = rate
        self.rng = rng
        self.torn = torn
        self.fired = 0

    def fires(self) -> bool:
        if self.always:
            return True
        if self.countdown is not None:
            self.countdown -= 1
            return self.countdown == 0
        if self.rng is not None:
            return self.rng.random() < self.rate
        return False


class _FaultPlan:
    """The set of currently armed triggers, indexed by site."""

    def __init__(self) -> None:
        self.triggers: dict[str, list[_Trigger]] = {}

    def arm(self, trigger: _Trigger) -> None:
        self.triggers.setdefault(trigger.site, []).append(trigger)

    def disarm(self, trigger: _Trigger) -> None:
        bucket = self.triggers.get(trigger.site, [])
        if trigger in bucket:
            bucket.remove(trigger)
        if not bucket:
            self.triggers.pop(trigger.site, None)

    def check(self, site: str) -> None:
        for trigger in self.triggers.get(site, ()):
            if trigger.fires():
                trigger.fired += 1
                raise InjectedFault(site, torn=trigger.torn)

    def __bool__(self) -> bool:
        return bool(self.triggers)


_active: Optional[_FaultPlan] = None


def sites() -> frozenset[str]:
    """The registry of every injection site wired into the engine.

    The single enumeration point: the chaos suite, the fault-site lint
    (``python -m repro.analysis.concurrency faults``) and DESIGN.md all
    key off this call, so a site added in code but missing from the docs
    (or vice versa) fails CI.
    """
    return INJECTION_SITES


def hit(site: str) -> None:
    """Injection point: raises :class:`InjectedFault` when armed.

    Called from instrumented engine code.  With nothing armed this is a
    module-global read plus an ``is not None`` test.
    """
    if _active is not None:
        _active.check(site)


def is_active() -> bool:
    return _active is not None


def _validate(site: str) -> None:
    if site not in INJECTION_SITES:
        raise ValueError(
            f"unknown injection site {site!r}; registered sites: "
            f"{', '.join(sorted(INJECTION_SITES))}")


@contextmanager
def _armed(triggers: Sequence[_Trigger]) -> Iterator[list[_Trigger]]:
    global _active
    if _active is None:
        _active = _FaultPlan()
    plan = _active
    for trigger in triggers:
        plan.arm(trigger)
    try:
        yield list(triggers)
    finally:
        for trigger in triggers:
            plan.disarm(trigger)
        if _active is plan and not plan:
            _active = None


def fail_at(site: str, n: int = 1, torn: bool = False) -> "contextmanager":
    """Arm ``site`` to fail exactly once, on its ``n``-th hit.

    ``torn=True`` makes the fault a *torn write*: an instrumented writer
    (the WAL) persists a truncated prefix of the record before raising,
    simulating a crash partway through a disk write.
    """
    _validate(site)
    if n < 1:
        raise ValueError("n must be at least 1")
    return _armed([_Trigger(site, countdown=n, torn=torn)])


def fail_always(site: str, torn: bool = False) -> "contextmanager":
    """Arm ``site`` to fail on every hit while the context is open."""
    _validate(site)
    return _armed([_Trigger(site, always=True, torn=torn)])


def fail_randomly(rate: float, seed: int,
                  sites: Optional[Sequence[str]] = None) -> "contextmanager":
    """Arm sites to fail at ``rate`` under one seeded RNG (deterministic
    for a given seed and hit order).  Defaults to every registered site."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be within [0, 1]")
    chosen = sorted(sites) if sites is not None else sorted(INJECTION_SITES)
    for site in chosen:
        _validate(site)
    rng = random.Random(seed)
    return _armed([_Trigger(site, rate=rate, rng=rng) for site in chosen])
