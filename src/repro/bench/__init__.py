"""Benchmark harness shared by the ``benchmarks/`` suite."""

from .harness import (CONFIGURATIONS, Measurement, NO_GROUPBY_REORDER,
                      NO_INDEX_APPLY, NO_LOCAL_AGGREGATES, NO_OJ_SIMPLIFY,
                      NO_SEGMENT_APPLY, VECTORIZED_WORKLOADS,
                      columnar_speedup_report, columnar_speedup_table,
                      format_table, matview_speedup_report,
                      matview_speedup_table, run_matrix, series_table,
                      time_query, tpch_database, vectorized_speedup_report,
                      vectorized_speedup_table)

__all__ = ["CONFIGURATIONS", "Measurement", "NO_GROUPBY_REORDER",
           "NO_INDEX_APPLY", "NO_LOCAL_AGGREGATES", "NO_OJ_SIMPLIFY",
           "NO_SEGMENT_APPLY", "VECTORIZED_WORKLOADS",
           "columnar_speedup_report", "columnar_speedup_table",
           "format_table", "matview_speedup_report",
           "matview_speedup_table", "run_matrix", "series_table",
           "time_query", "tpch_database", "vectorized_speedup_report",
           "vectorized_speedup_table"]
