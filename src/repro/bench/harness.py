"""Benchmark harness: engine-configuration matrix, timing, reporting.

The paper's evaluation (Section 5) compares published TPC-H results across
DBMSs and processor counts.  Our substitution (see DESIGN.md): the "system"
axis becomes optimizer configurations of this engine, and the "processors"
axis becomes the data scale factor.  This module provides the shared
machinery: building TPC-H databases per scale factor, timing queries under
each configuration, and printing paper-style tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..core.normalize import NormalizeConfig
from ..core.optimizer import OptimizerConfig
from ..database import (CORRELATED, DECORRELATE_ONLY, FULL, Database,
                        ExecutionMode)
from ..tpch import create_tpch_schema, generate_tpch

#: The benchmark "system" axis: the paper's system (FULL) against
#: progressively weaker configurations standing in for the comparators.
CONFIGURATIONS: tuple[ExecutionMode, ...] = (FULL, DECORRELATE_ONLY,
                                             CORRELATED)

#: Ablation modes for individual technique families (Section 3).
NO_GROUPBY_REORDER = ExecutionMode(
    "no_groupby_reorder",
    optimizer_config=OptimizerConfig(groupby_reorder=False,
                                     segment_apply=False,
                                     local_aggregates=False))
NO_SEGMENT_APPLY = ExecutionMode(
    "no_segment_apply",
    optimizer_config=OptimizerConfig(segment_apply=False))
NO_LOCAL_AGGREGATES = ExecutionMode(
    "no_local_aggregates",
    optimizer_config=OptimizerConfig(local_aggregates=False))
NO_INDEX_APPLY = ExecutionMode(
    "no_index_apply",
    optimizer_config=OptimizerConfig(index_apply=False))
NO_OJ_SIMPLIFY = ExecutionMode(
    "no_oj_simplify",
    normalize_config=NormalizeConfig(simplify_outerjoins=False),
    optimizer_config=OptimizerConfig(groupby_reorder=False,
                                     segment_apply=False,
                                     local_aggregates=False))


_DB_CACHE: dict[tuple[float, int, bool], Database] = {}


def tpch_database(scale_factor: float, seed: int = 20010521,
                  with_indexes: bool = True) -> Database:
    """A populated TPC-H database, cached per (scale, seed, indexes)."""
    key = (scale_factor, seed, with_indexes)
    if key not in _DB_CACHE:
        db = Database()
        create_tpch_schema(db, with_indexes=with_indexes)
        generate_tpch(db, scale_factor, seed)
        _DB_CACHE[key] = db
    return _DB_CACHE[key]


@dataclass
class Measurement:
    """One timed query: compile (plan) time and execution time.

    The paper's Figure 9 reports elapsed *power-run* execution time, where
    compilation is negligible against 300 GB of data; in this scaled-down
    reproduction compilation would otherwise mask the execution-strategy
    effect, so the two are measured separately and the series report
    ``elapsed_seconds`` (execution).
    """

    query: str
    mode: str
    scale_factor: float
    elapsed_seconds: float
    plan_seconds: float
    row_count: int


def time_query(db: Database, sql: str, mode: ExecutionMode,
               repeat: int = 1, engine: str = "tuple",
               ) -> tuple[float, float, int]:
    """(plan seconds, best-of-``repeat`` execution seconds, row count)."""
    from ..executor import VectorizedExecutor
    from ..executor.physical import PhysicalExecutor
    from ..executor import NaiveInterpreter
    from ..sql import parse

    if mode.use_naive_interpreter:
        bound = db._binder.bind(parse(sql))
        interpreter = NaiveInterpreter(lambda name: db.storage.get(name).rows)
        best = float("inf")
        rows = 0
        for _ in range(repeat):
            start = time.perf_counter()
            result = interpreter.run(bound.rel)
            best = min(best, time.perf_counter() - start)
            rows = len(result)
        return 0.0, best, rows

    start = time.perf_counter()
    plan = db.plan(sql, mode)
    plan_seconds = time.perf_counter() - start
    executor = (VectorizedExecutor(db.storage) if engine == "vectorized"
                else PhysicalExecutor(db.storage))
    best = float("inf")
    rows = 0
    for _ in range(repeat):
        start = time.perf_counter()
        result = executor.run(plan)
        best = min(best, time.perf_counter() - start)
        rows = len(result)
    return plan_seconds, best, rows


def run_matrix(sql: str, query_name: str, scale_factors: Sequence[float],
               modes: Sequence[ExecutionMode] = CONFIGURATIONS,
               repeat: int = 1) -> list[Measurement]:
    """Time one query across the scale-factor × configuration matrix."""
    measurements = []
    for scale_factor in scale_factors:
        db = tpch_database(scale_factor)
        for mode in modes:
            plan_s, exec_s, rows = time_query(db, sql, mode, repeat)
            measurements.append(Measurement(
                query_name, mode.name, scale_factor, exec_s, plan_s, rows))
    return measurements


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table (the benches print paper-style tables)."""
    materialized = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value * 1000:.1f}ms" if value < 0.1 else f"{value:.3f}"
    return str(value)


def series_table(measurements: Sequence[Measurement]) -> str:
    """Scale factor rows × configuration columns of elapsed seconds."""
    modes = []
    for m in measurements:
        if m.mode not in modes:
            modes.append(m.mode)
    scale_factors = sorted({m.scale_factor for m in measurements})
    lookup = {(m.scale_factor, m.mode): m for m in measurements}
    rows = []
    for sf in scale_factors:
        row: list[object] = [str(sf)]  # a scale factor, not a duration
        for mode in modes:
            m = lookup.get((sf, mode))
            row.append(m.elapsed_seconds if m else "-")
        rows.append(row)
    return format_table(["scale_factor"] + list(modes), rows)


# ---------------------------------------------------------------------------
# Vectorized-engine speedup report (BENCH_vectorized.json)
# ---------------------------------------------------------------------------

#: Q17-shaped workloads: the scan, the filter, the grouped aggregate that
#: dominates Q17's inner subquery, and the full query.  The aggregate row
#: is the headline number (the paper's SegmentApply strategy spends its
#: time exactly there).
VECTORIZED_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("q17_scan", "select l_partkey, l_quantity from lineitem"),
    ("q17_scan_filter",
     "select l_partkey, l_quantity from lineitem where l_quantity < 10"),
    ("q17_aggregate",
     "select l_partkey, 0.2 * avg(l_quantity) from lineitem "
     "group by l_partkey"),
    ("q17_full", None),  # resolved to tpch.QUERIES["Q17"]
)


def vectorized_speedup_report(scale_factor: float = 0.01,
                              repeat: int = 3) -> dict:
    """Time the Q17-shaped workloads on the tuple and vectorized engines.

    Returns the ``BENCH_vectorized.json`` payload: per workload, the
    best-of-``repeat`` elapsed seconds per engine, input rows/second
    (lineitem rows scanned over elapsed time), and the tuple→vectorized
    speedup.
    """
    from ..tpch import QUERIES

    db = tpch_database(scale_factor)
    input_rows = len(db.storage.get("lineitem").rows)
    workloads = {}
    for name, sql in VECTORIZED_WORKLOADS:
        sql = sql if sql is not None else QUERIES["Q17"]
        _, tuple_s, out_rows = time_query(db, sql, FULL, repeat, "tuple")
        _, vector_s, vec_rows = time_query(db, sql, FULL, repeat,
                                           "vectorized")
        assert vec_rows == out_rows, f"{name}: engines disagree"
        workloads[name] = {
            "sql": sql,
            "input_rows": input_rows,
            "output_rows": out_rows,
            "tuple_seconds": tuple_s,
            "vectorized_seconds": vector_s,
            "tuple_rows_per_sec": input_rows / tuple_s,
            "vectorized_rows_per_sec": input_rows / vector_s,
            "speedup": tuple_s / vector_s,
        }
    return {
        "benchmark": "vectorized_engine",
        "scale_factor": scale_factor,
        "repeat": repeat,
        "headline": "q17_aggregate",
        "workloads": workloads,
    }


def vectorized_speedup_table(report: dict) -> str:
    """Paper-style table for a :func:`vectorized_speedup_report`."""
    rows = []
    for name, w in report["workloads"].items():
        rows.append([name, w["tuple_seconds"], w["vectorized_seconds"],
                     w["vectorized_rows_per_sec"],
                     f"{w['speedup']:.2f}x"])
    return format_table(
        ["workload", "tuple_s", "vectorized_s", "vec_rows/s", "speedup"],
        rows)


# -- columnar storage / morsel parallelism --------------------------------------

class _RowPivotTable:
    """A scan view that re-pivots the row façade on every scan — the
    pre-columnar (PR 4) cost model, where storage was row tuples and the
    vectorized engine paid a full pivot per query."""

    def __init__(self, table) -> None:
        self._table = table

    def scan_units(self):
        from ..storage.columnar import ScanUnit

        rows = list(self._table.rows)
        if rows:
            cols = [list(column) for column in zip(*rows)]
        else:
            cols = [[] for _ in self._table.columns()]
        return [ScanUnit((), len(rows), cols=cols)]

    def __getattr__(self, name):
        return getattr(self._table, name)


class _RowPivotStorage:
    """Storage view handing out :class:`_RowPivotTable` scan views."""

    def __init__(self, storage) -> None:
        self._storage = storage

    def get(self, name):
        return _RowPivotTable(self._storage.get(name))

    def __getattr__(self, name):
        return getattr(self._storage, name)


def _best_of(fn, repeat: int) -> tuple[float, list]:
    best = float("inf")
    rows: list = []
    for _ in range(repeat):
        start = time.perf_counter()
        rows = fn()
        best = min(best, time.perf_counter() - start)
    return best, rows


def columnar_speedup_report(scale_factor: float = 0.01,
                            repeat: int = 3,
                            morsel_workers: int = 4) -> dict:
    """Time the Q17-shaped grouped aggregate three ways.

    * ``row_pivot`` — the vectorized engine over a storage view that
      re-pivots ``table.rows`` per query (the pre-columnar baseline);
    * ``columnar`` — native encoded chunks with cached decode;
    * ``morsel`` — the same, with ``morsel_workers`` parallel workers.

    Returns the ``BENCH_columnar.json`` payload.  ``parallel_effective``
    reports whether this host can be *expected* to scale (≥4 cores and
    the GIL disabled) — on a small or GIL-bound host the morsel numbers
    are recorded but carry no speedup claim.
    """
    import os
    import sys

    from ..executor import VectorizedExecutor

    sql = ("select l_partkey, 0.2 * avg(l_quantity) from lineitem "
           "group by l_partkey")
    db = tpch_database(scale_factor)
    input_rows = len(db.storage.get("lineitem").rows)
    plan = db.plan(sql, FULL)

    serial = VectorizedExecutor(db.storage)
    prepared = serial.prepare(plan)
    serial.run_prepared(prepared)  # warm the per-chunk decode caches
    columnar_s, columnar_rows = _best_of(
        lambda: serial.run_prepared(prepared), repeat)

    pivot_view = _RowPivotStorage(db.storage)
    pivot_s, pivot_rows = _best_of(
        lambda: serial.run_prepared(prepared, storage=pivot_view), repeat)
    assert sorted(pivot_rows) == sorted(columnar_rows), "engines disagree"

    parallel = VectorizedExecutor(db.storage,
                                  morsel_workers=morsel_workers)
    prepared_parallel = parallel.prepare(plan)
    parallel.run_prepared(prepared_parallel)
    morsel_s, morsel_rows = _best_of(
        lambda: parallel.run_prepared(prepared_parallel), repeat)
    assert sorted(morsel_rows) == sorted(columnar_rows), \
        "morsel rows disagree"

    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    cores = os.cpu_count() or 1
    table = db.storage.get("lineitem")
    encodings = {}
    for unit in table.scan_units():
        chunk = getattr(unit, "_chunk", None)
        if chunk is not None:
            for column, kind in zip(table.definition.columns,
                                    chunk.encodings):
                encodings.setdefault(column.name, kind)
            break
    return {
        "benchmark": "columnar_storage",
        "scale_factor": scale_factor,
        "repeat": repeat,
        "sql": sql,
        "input_rows": input_rows,
        "output_rows": len(columnar_rows),
        "lineitem_encodings": encodings,
        "row_pivot_seconds": pivot_s,
        "columnar_seconds": columnar_s,
        "columnar_speedup": pivot_s / columnar_s,
        "morsel_workers": morsel_workers,
        "morsel_seconds": morsel_s,
        "morsel_scaling": columnar_s / morsel_s,
        "cpu_count": cores,
        "gil_enabled": gil_enabled,
        "parallel_effective": cores >= 4 and not gil_enabled,
    }


def columnar_speedup_table(report: dict) -> str:
    """Paper-style table for a :func:`columnar_speedup_report`."""
    rows = [
        ["row_pivot", report["row_pivot_seconds"], "1 (baseline)"],
        ["columnar", report["columnar_seconds"],
         f"{report['columnar_speedup']:.2f}x"],
        [f"morsel x{report['morsel_workers']}", report["morsel_seconds"],
         f"{report['morsel_scaling']:.2f}x vs columnar"],
    ]
    return format_table(["configuration", "seconds", "speedup"], rows)


def matview_speedup_report(scale_factor: float = 0.01,
                           repeat: int = 5) -> dict:
    """Time the Q17-shaped grouped aggregate with and without a
    materialized view answering it.

    The view stores the §3.3 local-aggregate form of the per-partkey
    quantity aggregate; the rewrite recompiles the query to re-aggregate
    the view's (partkey-grouped, so already tiny) backing rows instead
    of scanning ``lineitem``.  Both sides run through ``Database.execute``
    with warmed plan caches, so the measured gap is purely the scan the
    view avoids.  Returns the ``BENCH_matview.json`` payload.
    """
    sql = ("select l_partkey, avg(l_quantity) as avg_qty, "
           "count(*) as order_count from lineitem group by l_partkey")
    view_sql = ("SELECT l_partkey, avg(l_quantity) AS avg_qty, "
                "count(*) AS order_count FROM lineitem "
                "GROUP BY l_partkey")
    db = tpch_database(scale_factor)
    input_rows = len(db.storage.get("lineitem").rows)

    db.execute(sql, FULL, use_matviews=False)  # warm the base plan
    base_s, base_rows = _best_of(
        lambda: db.execute(sql, FULL, use_matviews=False).rows, repeat)

    db.matviews.create("mv_q17_qty", view_sql)
    view_rows = len(db.storage.get("mv_q17_qty").rows)
    db.execute(sql, FULL)  # warm the rewritten plan
    rewritten_s, rewritten_rows = _best_of(
        lambda: db.execute(sql, FULL).rows, repeat)
    assert sorted(rewritten_rows) == sorted(base_rows), \
        "rewritten plan disagrees with the base-table plan"
    assert db.matviews.status()["rewrites"] > 0, "rewrite never fired"
    # The TPC-H database is cached per scale factor; leave it view-free
    # for whoever reuses it.
    db.matviews.drop("mv_q17_qty")

    return {
        "benchmark": "matview_rewrite",
        "scale_factor": scale_factor,
        "repeat": repeat,
        "sql": sql,
        "view_sql": view_sql,
        "input_rows": input_rows,
        "view_rows": view_rows,
        "output_rows": len(base_rows),
        "base_seconds": base_s,
        "rewritten_seconds": rewritten_s,
        "matview_speedup": base_s / rewritten_s,
    }


def matview_speedup_table(report: dict) -> str:
    """Paper-style table for a :func:`matview_speedup_report`."""
    rows = [
        [f"base scan ({report['input_rows']} rows)",
         report["base_seconds"], "1 (baseline)"],
        [f"view scan ({report['view_rows']} rows)",
         report["rewritten_seconds"],
         f"{report['matview_speedup']:.2f}x"],
    ]
    return format_table(["configuration", "seconds", "speedup"], rows)
