"""View matching and query rewrite (Cohen/Goldstein–Larson style).

Given a query's :class:`~repro.matview.canonical.CanonicalAggregate` and
a registered view, decide whether the view's backing table can answer
the query, and if so emit the rewritten SQL.  The containment tests:

* same base table;
* the view's WHERE conjuncts are a sub-multiset of the query's (the view
  keeps *at most* the rows the query filters to);
* every *residual* query conjunct (query minus view) references only
  view group columns, so it can be re-applied over backing rows;
* the query's GROUP BY is a subset of the view's (equal or *coarser*
  grouping);
* every query aggregate is derivable from the stored partials.

The rewrite uniformly re-aggregates in the paper's §3.3 global form —
``count(*)`` → ``sum(cnt_star)``, ``count(c)`` → ``sum(cnt_c)``,
``sum(c)`` → ``sum(sum_c)``, ``avg(c)`` → ``sum(sum_c) / sum(cnt_c)``,
``min``/``max`` → ``min(min_c)``/``max(max_c)`` — which is exactly why
the backing table carries count columns alongside sums.  One edge needs
care: a global (no GROUP BY) ``COUNT`` over an empty input is ``0``,
but ``SUM`` over the empty backing table is NULL, so count rewrites are
CASE-wrapped when the query has no GROUP BY.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..sql import ast
from .canonical import (AggSpec, CanonicalAggregate, emit_expr,
                        expr_columns, quote)
from .definition import MatViewDef


def match_rewrite(fingerprint: CanonicalAggregate,
                  viewdef: MatViewDef) -> Optional[str]:
    """Rewritten SQL answering ``fingerprint`` from ``viewdef``, or
    ``None`` when the view does not subsume the query."""
    if fingerprint.table != viewdef.table:
        return None
    residual = _residual_conjuncts(fingerprint.conjuncts,
                                   viewdef.conjuncts)
    if residual is None:
        return None
    view_group = set(viewdef.group_cols)
    for conjunct in residual:
        if not expr_columns(conjunct) <= view_group:
            return None
    if not set(fingerprint.group_cols) <= view_group:
        return None
    for output in fingerprint.outputs:
        if isinstance(output, AggSpec):
            if not viewdef.supports(output.func, output.column):
                return None
    return _emit(fingerprint, viewdef, residual)


def _residual_conjuncts(
        query_conjuncts: tuple[ast.Expr, ...],
        view_conjuncts: tuple[ast.Expr, ...],
) -> Optional[list[ast.Expr]]:
    """Query conjuncts left over after consuming the view's, in query
    order; ``None`` if some view conjunct is missing from the query.

    Multiset semantics via :class:`collections.Counter` — canonical AST
    nodes are frozen dataclasses, hence hashable and structurally
    comparable.
    """
    needed = Counter(view_conjuncts)
    if needed - Counter(query_conjuncts):
        return None
    residual = []
    for conjunct in query_conjuncts:
        if needed.get(conjunct, 0) > 0:
            needed[conjunct] -= 1
        else:
            residual.append(conjunct)
    return residual


def _emit(fingerprint: CanonicalAggregate, viewdef: MatViewDef,
          residual: list[ast.Expr]) -> str:
    items = []
    for output, name in zip(fingerprint.outputs, fingerprint.names):
        if isinstance(output, AggSpec):
            expr = _aggregate_expr(output,
                                   bool(fingerprint.group_cols))
        else:
            expr = quote(output)
        items.append(f"{expr} AS {quote(name)}")
    sql = f'SELECT {", ".join(items)} FROM {quote(viewdef.name)}'
    if residual:
        sql += " WHERE " + " AND ".join(emit_expr(c) for c in residual)
    if fingerprint.group_cols:
        sql += " GROUP BY " + ", ".join(
            quote(c) for c in fingerprint.group_cols)
    if fingerprint.order_by:
        parts = [quote(fingerprint.names[position])
                 + ("" if ascending else " DESC")
                 for position, ascending in fingerprint.order_by]
        sql += " ORDER BY " + ", ".join(parts)
    if fingerprint.limit is not None:
        sql += f" LIMIT {fingerprint.limit}"
    return sql


def _aggregate_expr(spec: AggSpec, grouped: bool) -> str:
    if spec.func == "count_star":
        return _count_sum("cnt_star", grouped)
    assert spec.column is not None
    if spec.func == "count":
        return _count_sum(f"cnt_{spec.column}", grouped)
    if spec.func == "sum":
        return f'sum({quote(f"sum_{spec.column}")})'
    if spec.func == "avg":
        return (f'1.0 * sum({quote(f"sum_{spec.column}")}) / '
                f'sum({quote(f"cnt_{spec.column}")})')
    if spec.func == "min":
        return f'min({quote(f"min_{spec.column}")})'
    if spec.func == "max":
        return f'max({quote(f"max_{spec.column}")})'
    raise AssertionError(spec.func)


def _count_sum(backing_column: str, grouped: bool) -> str:
    """``sum`` over a stored count column.

    With GROUP BY, empty groups do not exist (each backing row holds
    ``cnt >= 0`` and a group only exists if some base row produced it).
    Without GROUP BY, the backing table may contribute *no* rows at all
    (empty base or residual filtering everything), where SQL requires
    ``COUNT = 0`` while ``SUM`` yields NULL — hence the CASE wrap.
    """
    total = f"sum({quote(backing_column)})"
    if grouped:
        return total
    return f"CASE WHEN {total} IS NULL THEN 0 ELSE {total} END"
