"""Materialized aggregate views: rewrite, maintenance, selection.

This package stores the paper's §3.3 *local-aggregate* form as a real
table and exploits its decomposability three ways:

* **matching + rewrite** (:mod:`.canonical`, :mod:`.matcher`) — queries
  whose canonical fingerprint a view subsumes (same base, contained
  predicate, equal-or-coarser grouping) are transparently recompiled to
  re-aggregate the view's backing rows in global-aggregate form, with
  stored counts making ``AVG``/``COUNT`` compose;
* **incremental maintenance** (:mod:`.maintenance`, :mod:`.manager`) —
  commits into a base table fold their delta into affected views inside
  the same snapshot install, so base and view versions move together;
* **workload-driven selection** (:mod:`.advisor`) — hot aggregate
  fingerprints mined from the plan cache become recommended (or
  auto-created) views.
"""

from .advisor import DEFAULT_MIN_HITS, auto_materialize, recommend
from .canonical import AggSpec, CanonicalAggregate, canonicalize
from .definition import MatViewDef, MatViewError, TrackedColumn
from .maintenance import local_aggregate, merge
from .manager import (MATVIEW_LOCK_TIMEOUT, MatViewManager,
                      Recommendation)
from .matcher import match_rewrite

__all__ = ["AggSpec", "CanonicalAggregate", "DEFAULT_MIN_HITS",
           "MATVIEW_LOCK_TIMEOUT", "MatViewDef", "MatViewError",
           "MatViewManager", "Recommendation", "TrackedColumn",
           "auto_materialize", "canonicalize", "local_aggregate",
           "match_rewrite", "merge", "recommend"]
