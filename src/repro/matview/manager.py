"""Materialized-view lifecycle: create, drop, refresh, maintain.

Lock discipline (levels from :mod:`repro.concurrency`):

* **create** — ``db.ddl`` (10) → the *base* table's ``storage.writer``
  (20) held across [compute contents → WAL DDL record → register]:
  holding the base writer lock closes the missed-delta window where a
  commit lands after the contents were computed but before the view
  starts receiving maintenance.
* **drop** — ``db.ddl`` (10) → the *view* backing's ``storage.writer``
  (20): a drop waits out any in-flight refresh or commit maintenance
  on the same view, so those never find the backing half-removed.
  Conversely, whoever acquires a view writer lock re-checks the
  catalog afterwards — winning the lock may mean the drop already
  finished, and the view must then be treated as gone.
* **refresh** — the *view* backing's writer lock while recomputing from
  a live base snapshot.  A concurrent commit either installs its base
  version before the recompute reads (delta included) or blocks in
  :meth:`prepare_commit` on this same lock and merges its delta *after*
  the refreshed version installs — both orders converge.
* **prepare_commit** — called by ``Storage.install_many`` with the
  committing transaction's base writer locks held; acquires each
  affected view's writer lock (bounded, same level — the sanctioned
  bounded same-level pattern) and returns new backing versions that
  join the same snapshot swap, then releases in ``release()``.

The single ``matview.refresh`` fault-injection site lives in
:meth:`MatViewManager._refresh_gate`, crossed before *any* view content
mutation (create build, REFRESH, per-commit maintenance, recovery
rebuild).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from .. import faultinject
from ..concurrency import TrackedLock
from ..errors import CatalogError, ReproError, TransactionConflict
from ..storage import StoredTable
from .definition import MatViewDef
from .maintenance import local_aggregate, merge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database

#: Bound on every writer-lock acquisition in this module (seconds);
#: timing out raises :class:`~repro.errors.TransactionConflict`, the
#: engine's conservative deadlock verdict.
MATVIEW_LOCK_TIMEOUT = 30.0


@dataclass
class Recommendation:
    """One advisor suggestion: a view definition worth materializing."""

    name: str
    table: str
    sql: str     # defining SELECT for CREATE MATERIALIZED VIEW ... AS
    hits: int    # plan-cache hits of the hottest supporting query


class _CommitMaintenance:
    """Per-commit maintenance state handed back to ``install_many``:
    the new view backing versions plus the writer locks protecting
    them, released only after the snapshot swap (or its failure)."""

    __slots__ = ("versions", "locks")

    def __init__(self) -> None:
        self.versions: dict[str, StoredTable] = {}
        self.locks: dict[str, TrackedLock] = {}

    def release(self) -> None:
        for lock in self.locks.values():
            lock.release()
        self.locks.clear()


class MatViewManager:
    """Owns every materialized view of one :class:`~repro.database.Database`."""

    def __init__(self, database: "Database") -> None:
        self._db = database
        self._stats_lock = TrackedLock("matview.stats")
        self.rewrites = 0
        self.maintained_commits = 0
        self.refreshes = 0
        self.auto_created = 0

    # -- lifecycle -------------------------------------------------------------

    def create(self, name: str, sql: str) -> MatViewDef:
        """Create and populate a materialized view over ``sql``."""
        database = self._db
        viewdef = MatViewDef.from_sql(name, sql)
        with database._ddl_lock:
            catalog = database.catalog
            if (catalog.has_table(name) or catalog.has_view(name)
                    or catalog.has_matview(name)):
                raise CatalogError(
                    f"{name!r} already names a table, view or "
                    "materialized view")
            base = catalog.get_table(viewdef.table)
            backing = viewdef.backing_def(base)
            lock = database.storage.writer_lock(viewdef.table)
            if not lock.acquire(timeout=MATVIEW_LOCK_TIMEOUT):
                raise TransactionConflict(
                    f"could not acquire the writer lock on table "
                    f"{viewdef.table!r} within "
                    f"{MATVIEW_LOCK_TIMEOUT:.0f}s (create materialized "
                    f"view)")
            try:
                rows = self._compute_rows(viewdef)
                if database._durability is not None:
                    database._durability.log_ddl(
                        {"kind": "create_matview", "name": viewdef.name,
                         "sql": viewdef.sql})
                stored = database.storage.create(backing)
                stored.insert_rows(rows)
                catalog.create_matview(viewdef, backing)
            finally:
                lock.release()
        database.plan_cache.invalidate()
        database._maybe_checkpoint()
        return viewdef

    def drop(self, name: str) -> None:
        """Drop a materialized view, its backing storage and every
        cached plan (some may have been rewritten to scan it)."""
        database = self._db
        with database._ddl_lock:
            if not database.catalog.has_matview(name):
                raise CatalogError(
                    f"unknown materialized view {name!r}")
            # Wait out any in-flight refresh or commit maintenance on
            # this view before removing it from under them.
            lock = database.storage.writer_lock(name)
            if not lock.acquire(timeout=MATVIEW_LOCK_TIMEOUT):
                raise TransactionConflict(
                    f"could not acquire the writer lock on materialized "
                    f"view {name!r} within {MATVIEW_LOCK_TIMEOUT:.0f}s "
                    f"(drop)")
            try:
                if database._durability is not None:
                    database._durability.log_ddl(
                        {"kind": "drop_matview", "name": name.lower()})
                database.catalog.drop_matview(name)
                database.storage.drop(name)
            finally:
                lock.release()
        database.plan_cache.invalidate()
        database._maybe_checkpoint()

    def refresh(self, name: str) -> None:
        """Recompute a view's contents from its base table."""
        database = self._db
        viewdef = database.catalog.get_matview(name)
        assert isinstance(viewdef, MatViewDef)
        lock = self._acquire_view_lock(viewdef.name, "refresh")
        if lock is None:
            raise CatalogError(
                f"materialized view {name!r} was dropped concurrently")
        try:
            rows = self._compute_rows(viewdef)
            backing = database.catalog.get_table(viewdef.name)
            version = StoredTable(backing, database.storage.chunk_rows)
            version.insert_rows(rows)
            database.storage.install(viewdef.name, version)
        finally:
            lock.release()
        with self._stats_lock:
            self.refreshes += 1

    def rebuild_all(self) -> None:
        """Recompute every view from its base — the recovery path.

        The WAL records only base-table deltas (view contents are
        derived state), so recovery replays the bases and then rebuilds
        every view here; a crash at any fault site can therefore never
        surface a view inconsistent with its base.
        """
        for viewdef in self._db.catalog.matviews():
            assert isinstance(viewdef, MatViewDef)
            self.refresh(viewdef.name)

    # -- commit maintenance ----------------------------------------------------

    def prepare_commit(self, keys: Mapping[str, StoredTable],
                       changes: Mapping[str, Sequence[tuple]]
                       ) -> Optional[_CommitMaintenance]:
        """Fold a commit's inserted rows into affected view backings.

        Called by ``Storage.install_many`` with the transaction's base
        writer locks held.  Returns new backing versions (plus the view
        writer locks, held until after the swap) or ``None`` when no
        registered view is touched.  Any failure — lock timeout,
        injected fault — releases everything and aborts the commit
        *before* the WAL append, so a failed commit changes nothing.
        """
        catalog = self._db.catalog
        if not catalog.has_matviews():
            return None
        storage = self._db.storage
        maintenance = _CommitMaintenance()
        try:
            for base_name in sorted(changes):
                rows = changes[base_name]
                if not rows:
                    continue
                base_def = catalog.get_table(base_name)
                for viewdef in catalog.matviews_on(base_name):
                    assert isinstance(viewdef, MatViewDef)
                    deltas = local_aggregate(viewdef, base_def, rows)
                    if not deltas:
                        continue  # every delta row fails the view filter
                    lock = self._acquire_view_lock(viewdef.name,
                                                   "commit maintenance")
                    if lock is None:
                        continue  # dropped since it was listed
                    maintenance.locks[viewdef.name] = lock
                    self._refresh_gate()
                    backing = catalog.get_table(viewdef.name)
                    current = storage.get(viewdef.name)
                    merged = merge(viewdef, backing, current.rows, deltas)
                    version = StoredTable(backing, storage.chunk_rows)
                    version.insert_rows(merged)
                    maintenance.versions[viewdef.name] = version
        except BaseException:
            maintenance.release()
            raise
        if not maintenance.versions:
            maintenance.release()
            return None
        with self._stats_lock:
            self.maintained_commits += 1
        return maintenance

    # -- observability ---------------------------------------------------------

    def note_rewrite(self) -> None:
        with self._stats_lock:
            self.rewrites += 1

    def note_auto_created(self) -> None:
        with self._stats_lock:
            self.auto_created += 1

    def status(self) -> dict:
        with self._stats_lock:
            counters = {"rewrites": self.rewrites,
                        "maintained_commits": self.maintained_commits,
                        "refreshes": self.refreshes,
                        "auto_created": self.auto_created}
        counters["views"] = [v.name for v in self._db.catalog.matviews()]
        return counters

    # -- internals -------------------------------------------------------------

    def _acquire_view_lock(self, name: str,
                           context: str) -> Optional[TrackedLock]:
        """Acquire view ``name``'s *current* writer lock.

        Returns ``None`` when the view turns out to be gone: either its
        storage no longer exists, or we won a lock that a concurrent
        ``drop`` has since retired (drop-and-recreate swaps in a fresh
        lock object, so identity is the authoritative test).  Timing out
        raises :class:`TransactionConflict` — the engine's conservative
        deadlock verdict.
        """
        storage = self._db.storage
        try:
            lock = storage.writer_lock(name)
        except ReproError:
            return None
        if not lock.acquire(timeout=MATVIEW_LOCK_TIMEOUT):
            raise TransactionConflict(
                f"could not acquire the writer lock on materialized "
                f"view {name!r} within {MATVIEW_LOCK_TIMEOUT:.0f}s "
                f"({context})")
        try:
            current: Optional[TrackedLock] = storage.writer_lock(name)
        except ReproError:
            current = None
        if current is not lock or not self._db.catalog.has_matview(name):
            lock.release()
            return None
        return lock

    def _refresh_gate(self) -> None:
        """The one ``matview.refresh`` injection point, crossed before
        any view content mutation (create build, refresh recompute,
        per-view commit maintenance, recovery rebuild)."""
        faultinject.hit("matview.refresh")

    def _compute_rows(self, viewdef: MatViewDef) -> list[tuple]:
        """Full backing contents from the base, views-off (a view must
        never be answered from itself while being built)."""
        self._refresh_gate()
        result = self._db.execute(viewdef.storage_sql(),
                                  use_matviews=False)
        return result.rows
