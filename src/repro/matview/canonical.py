"""Canonical form of single-table aggregate queries.

Materialized-view matching needs a *semantic* fingerprint of a query, not
its text: ``SELECT sum(x) FROM t AS a WHERE a.y = 1 GROUP BY a.g`` and
``select SUM(x) from t where y=1 group by g`` must compare equal.  This
module canonicalizes the supported shape —

    SELECT <group cols and aggregates>
    FROM <one table>
    [WHERE <conjuncts>]
    GROUP BY <plain columns>
    [ORDER BY <outputs>] [LIMIT n]

— into a :class:`CanonicalAggregate`: qualifiers stripped, identifiers
lowered, the WHERE split into an ordered conjunct tuple, aggregates
reduced to ``(func, column)`` pairs.  Anything outside the shape (joins,
subqueries, DISTINCT aggregates, HAVING, expressions under GROUP BY)
returns ``None`` and is simply ineligible for view matching — the paper's
§3.3 segmented form only needs the plain group-by case.

The same canonical expressions are re-emitted as SQL by
:func:`emit_expr` when the matcher builds the rewritten query, and
evaluated directly over base rows by :mod:`repro.matview.maintenance`
when applying per-commit deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..sql import ast

#: Aggregate functions a canonical query may use.  ``count_star`` is
#: ``count(*)``; the rest take a single plain column argument.
AGG_FUNCS = frozenset({"count", "sum", "avg", "min", "max"})

#: Comparison and arithmetic operators admitted inside conjuncts.  The
#: lexer already normalizes ``!=`` to ``<>``.
_COMPARISONS = frozenset({"=", "<>", "<", "<=", ">", ">="})
_ARITHMETIC = frozenset({"+", "-", "*", "/"})
_BOOLEAN = frozenset({"and", "or"})


@dataclass(frozen=True)
class AggSpec:
    """One aggregate call: ``func`` over ``column`` (``None`` = ``*``)."""

    func: str  # "count_star" | "count" | "sum" | "avg" | "min" | "max"
    column: Optional[str]


#: One output column: a group column or an aggregate.
Output = Union[str, AggSpec]


@dataclass(frozen=True)
class CanonicalAggregate:
    """Semantic fingerprint of a single-table aggregate query."""

    table: str                          # base table name, lowered
    group_cols: tuple[str, ...]         # GROUP BY columns, lowered
    conjuncts: tuple[ast.Expr, ...]     # canonicalized WHERE conjuncts
    outputs: tuple[Output, ...]         # select list, left to right
    names: tuple[str, ...]              # bound output names
    order_by: tuple[tuple[int, bool], ...]  # (output position, ascending)
    limit: Optional[int]

    @property
    def aggregates(self) -> tuple[AggSpec, ...]:
        return tuple(o for o in self.outputs if isinstance(o, AggSpec))

    def has_parameters(self) -> bool:
        return any(expr_has_parameter(c) for c in self.conjuncts)


def canonicalize(query: ast.Query) -> Optional[CanonicalAggregate]:
    """Canonicalize ``query``, or ``None`` if it is outside the shape."""
    if not isinstance(query, ast.SelectStatement):
        return None
    if query.distinct or query.having is not None or query.offset:
        return None
    if len(query.from_items) != 1:
        return None
    source = query.from_items[0]
    if not isinstance(source, ast.TableRef):
        return None

    group_cols = []
    for expr in query.group_by:
        col = _plain_column(expr)
        if col is None:
            return None
        group_cols.append(col)

    conjuncts: list[ast.Expr] = []
    if query.where is not None:
        for part in _split_and(query.where):
            canon = canonical_expr(part)
            if canon is None:
                return None
            conjuncts.append(canon)

    outputs: list[Output] = []
    names: list[str] = []
    for position, item in enumerate(query.select_items):
        output = _canonical_output(item.expr, group_cols)
        if output is None:
            return None
        outputs.append(output)
        names.append(_output_name(item, position))

    order_by: list[tuple[int, bool]] = []
    for order in query.order_by:
        position = _order_position(order.expr, outputs, names)
        if position is None:
            return None
        order_by.append((position, order.ascending))

    return CanonicalAggregate(
        table=source.name.lower(),
        group_cols=tuple(group_cols),
        conjuncts=tuple(conjuncts),
        outputs=tuple(outputs),
        names=tuple(names),
        order_by=tuple(order_by),
        limit=query.limit)


def _split_and(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _plain_column(expr: ast.Expr) -> Optional[str]:
    if isinstance(expr, ast.Identifier):
        return expr.parts[-1].lower()
    return None


def _canonical_output(expr: ast.Expr,
                      group_cols: list[str]) -> Optional[Output]:
    col = _plain_column(expr)
    if col is not None:
        return col if col in group_cols else None
    if not isinstance(expr, ast.FunctionCall):
        return None
    func = expr.name.lower()
    if func not in AGG_FUNCS or expr.distinct or len(expr.args) != 1:
        return None
    arg = expr.args[0]
    if func == "count" and isinstance(arg, ast.Star):
        return AggSpec("count_star", None)
    arg_col = _plain_column(arg)
    if arg_col is None:
        return None
    return AggSpec(func, arg_col)


def _output_name(item: ast.SelectItem, position: int) -> str:
    """Mirror the binder's output-name derivation exactly."""
    if item.alias:
        return item.alias.lower()
    if isinstance(item.expr, ast.Identifier):
        return item.expr.parts[-1].lower()
    if isinstance(item.expr, ast.FunctionCall):
        return item.expr.name.lower()
    return f"col{position + 1}"


def _order_position(expr: ast.Expr, outputs: list[Output],
                    names: list[str]) -> Optional[int]:
    name = _plain_column(expr)
    if name is None:
        return None
    if name in names:
        return names.index(name)
    # An unaliased group column ordered under its column name.
    for position, output in enumerate(outputs):
        if output == name:
            return position
    return None


# ---------------------------------------------------------------------------
# Canonical scalar expressions (WHERE conjuncts)
# ---------------------------------------------------------------------------

def canonical_expr(expr: ast.Expr) -> Optional[ast.Expr]:
    """Rebuild ``expr`` with qualifiers stripped and names lowered.

    Returns ``None`` when the expression falls outside the evaluable
    subset (subqueries, LIKE, EXTRACT, CASE, function calls): such
    predicates are never view-matched, so canonicalization of the whole
    query fails conservatively.
    """
    if isinstance(expr, ast.Identifier):
        return ast.Identifier((expr.parts[-1].lower(),))
    if isinstance(expr, (ast.NumberLiteral, ast.StringLiteral,
                         ast.BooleanLiteral, ast.NullLiteral,
                         ast.DateLiteral, ast.IntervalLiteral,
                         ast.Parameter)):
        return expr
    if isinstance(expr, ast.BinaryOp):
        if expr.op not in _COMPARISONS | _ARITHMETIC | _BOOLEAN:
            return None
        left = canonical_expr(expr.left)
        right = canonical_expr(expr.right)
        if left is None or right is None:
            return None
        return ast.BinaryOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = canonical_expr(expr.operand)
        if operand is None or expr.op not in ("-", "not"):
            return None
        return ast.UnaryOp(expr.op, operand)
    if isinstance(expr, ast.BetweenExpr):
        operand = canonical_expr(expr.operand)
        low = canonical_expr(expr.low)
        high = canonical_expr(expr.high)
        if operand is None or low is None or high is None:
            return None
        return ast.BetweenExpr(operand, low, high, expr.negated)
    if isinstance(expr, ast.IsNullExpr):
        operand = canonical_expr(expr.operand)
        if operand is None:
            return None
        return ast.IsNullExpr(operand, expr.negated)
    if isinstance(expr, ast.InExpr):
        if expr.subquery is not None or expr.values is None:
            return None
        operand = canonical_expr(expr.operand)
        values = tuple(canonical_expr(v) for v in expr.values)
        if operand is None or any(v is None for v in values):
            return None
        return ast.InExpr(operand, values=values, negated=expr.negated)
    return None


def expr_columns(expr: ast.Expr) -> frozenset[str]:
    """Column names a canonical expression references."""
    if isinstance(expr, ast.Identifier):
        return frozenset({expr.parts[-1].lower()})
    found: set[str] = set()
    if isinstance(expr, ast.BinaryOp):
        found |= expr_columns(expr.left) | expr_columns(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        found |= expr_columns(expr.operand)
    elif isinstance(expr, ast.BetweenExpr):
        found |= (expr_columns(expr.operand) | expr_columns(expr.low)
                  | expr_columns(expr.high))
    elif isinstance(expr, ast.IsNullExpr):
        found |= expr_columns(expr.operand)
    elif isinstance(expr, ast.InExpr) and expr.values is not None:
        found |= expr_columns(expr.operand)
        for value in expr.values:
            found |= expr_columns(value)
    return frozenset(found)


def expr_has_parameter(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Parameter):
        return True
    if isinstance(expr, ast.BinaryOp):
        return (expr_has_parameter(expr.left)
                or expr_has_parameter(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return expr_has_parameter(expr.operand)
    if isinstance(expr, ast.BetweenExpr):
        return (expr_has_parameter(expr.operand)
                or expr_has_parameter(expr.low)
                or expr_has_parameter(expr.high))
    if isinstance(expr, ast.IsNullExpr):
        return expr_has_parameter(expr.operand)
    if isinstance(expr, ast.InExpr) and expr.values is not None:
        return (expr_has_parameter(expr.operand)
                or any(expr_has_parameter(v) for v in expr.values))
    return False


def quote(name: str) -> str:
    """Quote an identifier for re-emitted SQL.

    Quoting unconditionally keeps generated queries immune to keyword
    collisions (a bound output named ``count`` is a legal alias).
    """
    return '"' + name.replace('"', '""') + '"'


def emit_expr(expr: ast.Expr) -> str:
    """Render a canonical expression back to parseable SQL.

    Parameters re-emit as ``:name`` or ``?``; because canonical queries
    only carry parameters inside WHERE conjuncts and the matcher
    preserves conjunct order, positional slots keep their original
    indices when the emitted text is re-parsed.
    """
    if isinstance(expr, ast.Identifier):
        return quote(expr.parts[-1])
    if isinstance(expr, ast.NumberLiteral):
        return expr.text
    if isinstance(expr, ast.StringLiteral):
        return "'" + expr.value.replace("'", "''") + "'"
    if isinstance(expr, ast.BooleanLiteral):
        return "TRUE" if expr.value else "FALSE"
    if isinstance(expr, ast.NullLiteral):
        return "NULL"
    if isinstance(expr, ast.DateLiteral):
        return f"DATE '{expr.text}'"
    if isinstance(expr, ast.IntervalLiteral):
        return f"INTERVAL '{expr.quantity}' {expr.unit.upper()}"
    if isinstance(expr, ast.Parameter):
        return f":{expr.name}" if expr.name is not None else "?"
    if isinstance(expr, ast.BinaryOp):
        return (f"({emit_expr(expr.left)} {expr.op.upper()} "
                f"{emit_expr(expr.right)})")
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "not":
            return f"(NOT {emit_expr(expr.operand)})"
        return f"(- {emit_expr(expr.operand)})"
    if isinstance(expr, ast.BetweenExpr):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (f"({emit_expr(expr.operand)} {keyword} "
                f"{emit_expr(expr.low)} AND {emit_expr(expr.high)})")
    if isinstance(expr, ast.IsNullExpr):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({emit_expr(expr.operand)} {keyword})"
    if isinstance(expr, ast.InExpr) and expr.values is not None:
        keyword = "NOT IN" if expr.negated else "IN"
        values = ", ".join(emit_expr(v) for v in expr.values)
        return f"({emit_expr(expr.operand)} {keyword} ({values}))"
    raise ValueError(f"cannot emit {type(expr).__name__}")
