"""Incremental maintenance: per-commit deltas in local-aggregate form.

When a transaction commits inserts into a view's base table, the view is
not recomputed; the inserted rows are folded in.  This is the paper's
§3.3 split applied to maintenance:

* ``local_aggregate`` computes the *local* form of just the delta — one
  partial row per affected group (``count(*)``, per-column
  ``sum``/``count``/``min``/``max`` with NULLs skipped);
* ``merge`` combines those partials into the current backing rows — the
  *global* step — which is correct precisely because every aggregate the
  view stores is decomposable (``sum``/``count`` add, ``min``/``max``
  take extrema, and ``avg`` is never stored, only re-derived).

Both steps run inside ``Storage.install_many`` under the view's writer
lock, so the new view version installs in the *same* snapshot swap as
the base-table version: readers never observe a base/view mismatch.

Caveat (documented in DESIGN.md): float ``SUM`` is merged as
``old_sum + delta_sum``, which can differ in the last ulp from a
left-to-right recomputation because float addition is not associative.
Integer and decimal sums are exact.
"""

from __future__ import annotations

import datetime
from typing import Any, Optional, Sequence

from ..algebra.datatypes import (Interval, sql_add, sql_and, sql_compare,
                                 sql_div, sql_mul, sql_not, sql_or, sql_sub)
from ..catalog import TableDef
from ..sql import ast
from .definition import MatViewDef, MatViewError

RowMap = dict[str, Any]


def eval_conjunct(expr: ast.Expr, row: RowMap) -> Optional[bool]:
    """Three-valued truth of a canonical predicate over one base row."""
    value = eval_scalar(expr, row)
    if value is None or isinstance(value, bool):
        return value
    raise MatViewError(f"predicate evaluated to non-boolean {value!r}")


def eval_scalar(expr: ast.Expr, row: RowMap) -> Any:
    """Evaluate a canonical scalar expression over one base row.

    Mirrors the executor's NULL-propagating semantics via the shared
    :mod:`repro.algebra.datatypes` helpers; the differential tests hold
    the two evaluators to identical results.
    """
    if isinstance(expr, ast.Identifier):
        return row[expr.parts[-1].lower()]
    if isinstance(expr, ast.NumberLiteral):
        return expr.value
    if isinstance(expr, ast.StringLiteral):
        return expr.value
    if isinstance(expr, ast.BooleanLiteral):
        return expr.value
    if isinstance(expr, ast.NullLiteral):
        return None
    if isinstance(expr, ast.DateLiteral):
        return datetime.date.fromisoformat(expr.text)
    if isinstance(expr, ast.IntervalLiteral):
        if expr.unit == "day":
            return Interval(days=expr.quantity)
        months = expr.quantity * (12 if expr.unit == "year" else 1)
        return Interval(months=months)
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "and":
            return sql_and(eval_conjunct(expr.left, row),
                           eval_conjunct(expr.right, row))
        if expr.op == "or":
            return sql_or(eval_conjunct(expr.left, row),
                          eval_conjunct(expr.right, row))
        left = eval_scalar(expr.left, row)
        right = eval_scalar(expr.right, row)
        if expr.op == "+":
            return sql_add(left, right)
        if expr.op == "-":
            return sql_sub(left, right)
        if expr.op == "*":
            return sql_mul(left, right)
        if expr.op == "/":
            return sql_div(left, right)
        return sql_compare(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "not":
            return sql_not(eval_conjunct(expr.operand, row))
        value = eval_scalar(expr.operand, row)
        return None if value is None else -value
    if isinstance(expr, ast.BetweenExpr):
        operand = eval_scalar(expr.operand, row)
        low = sql_compare(">=", operand, eval_scalar(expr.low, row))
        high = sql_compare("<=", operand, eval_scalar(expr.high, row))
        result = sql_and(low, high)
        return sql_not(result) if expr.negated else result
    if isinstance(expr, ast.IsNullExpr):
        result = eval_scalar(expr.operand, row) is None
        return not result if expr.negated else result
    if isinstance(expr, ast.InExpr) and expr.values is not None:
        operand = eval_scalar(expr.operand, row)
        result: Optional[bool] = False
        for value in expr.values:
            result = sql_or(
                result,
                sql_compare("=", operand, eval_scalar(value, row)))
        return sql_not(result) if expr.negated else result
    raise MatViewError(
        f"cannot evaluate {type(expr).__name__} during maintenance")


def local_aggregate(viewdef: MatViewDef, base: TableDef,
                    rows: Sequence[tuple]) -> dict[tuple, RowMap]:
    """Per-group partial aggregates of the delta rows.

    Returns ``group key -> partials`` in first-seen group order (dicts
    preserve insertion order); rows failing the view's WHERE conjuncts
    (3VL: anything but True) are dropped, matching the filter the
    defining query applies.
    """
    names = base.column_names
    deltas: dict[tuple, RowMap] = {}
    for values in rows:
        row = dict(zip(names, values))
        if any(eval_conjunct(c, row) is not True
               for c in viewdef.conjuncts):
            continue
        key = tuple(row[col] for col in viewdef.group_cols)
        partial = deltas.get(key)
        if partial is None:
            partial = {"cnt_star": 0}
            for spec in viewdef.tracked:
                if spec.needs_sum:
                    partial[f"sum_{spec.column}"] = None
                if spec.needs_cnt:
                    partial[f"cnt_{spec.column}"] = 0
                if spec.needs_min:
                    partial[f"min_{spec.column}"] = None
                if spec.needs_max:
                    partial[f"max_{spec.column}"] = None
            deltas[key] = partial
        partial["cnt_star"] += 1
        for spec in viewdef.tracked:
            value = row[spec.column]
            if value is None:
                continue
            if spec.needs_sum:
                partial[f"sum_{spec.column}"] = _add(
                    partial[f"sum_{spec.column}"], value)
            if spec.needs_cnt:
                partial[f"cnt_{spec.column}"] += 1
            if spec.needs_min:
                partial[f"min_{spec.column}"] = _extremum(
                    partial[f"min_{spec.column}"], value, min)
            if spec.needs_max:
                partial[f"max_{spec.column}"] = _extremum(
                    partial[f"max_{spec.column}"], value, max)
    return deltas


def merge(viewdef: MatViewDef, backing: TableDef,
          current_rows: Sequence[tuple],
          deltas: dict[tuple, RowMap]) -> list[tuple]:
    """Fold per-group deltas into the current backing rows.

    Existing groups keep their row position; new groups append in
    first-seen delta order.  The result is the complete new backing
    contents (inserts only — the engine has no DELETE/UPDATE, so counts
    never reach zero and groups never disappear).
    """
    names = backing.column_names
    key_width = len(viewdef.group_cols)
    pending = dict(deltas)
    merged: list[tuple] = []
    for values in current_rows:
        key = values[:key_width]
        partial = pending.pop(key, None)
        if partial is None:
            merged.append(values)
            continue
        row = dict(zip(names, values))
        row["cnt_star"] += partial["cnt_star"]
        for spec in viewdef.tracked:
            if spec.needs_sum:
                name = f"sum_{spec.column}"
                row[name] = _add(row[name], partial[name])
            if spec.needs_cnt:
                name = f"cnt_{spec.column}"
                row[name] += partial[name]
            if spec.needs_min:
                name = f"min_{spec.column}"
                row[name] = _extremum(row[name], partial[name], min)
            if spec.needs_max:
                name = f"max_{spec.column}"
                row[name] = _extremum(row[name], partial[name], max)
        merged.append(tuple(row[name] for name in names))
    for key, partial in pending.items():
        row = dict(zip(viewdef.group_cols, key))
        row.update(partial)
        merged.append(tuple(row[name] for name in names))
    return merged


def _add(current: Any, value: Any) -> Any:
    """NULL-skipping sum step: SUM ignores NULL inputs entirely."""
    if value is None:
        return current
    if current is None:
        return value
    return current + value


def _extremum(current: Any, value: Any, pick) -> Any:
    if value is None:
        return current
    if current is None:
        return value
    return pick(current, value)
