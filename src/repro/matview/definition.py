"""Materialized-view definitions and their backing-table schemas.

A materialized view stores the §3.3 *local-aggregate* form of its
defining query: one backing row per group, carrying ``count(*)`` plus
per-column partial aggregates (``sum``/``count``/``min``/``max``).
Carrying counts alongside sums is what makes the stored form
*composable*: a query's ``AVG`` re-derives as ``sum(sum_c)/sum(cnt_c)``
and its ``COUNT`` as ``sum(cnt_c)``, so a query grouping *coarser* than
the view can still be answered by re-aggregating view rows (the
global-aggregate step of the paper's segmented execution).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.datatypes import DataType
from ..catalog import ColumnDef, TableDef
from ..errors import ReproError, SqlSyntaxError
from ..sql import ast, parse
from .canonical import (CanonicalAggregate, canonicalize, emit_expr,
                        expr_columns, quote)

#: Data types ``sum``/``avg`` accept; ``min``/``max``/``count`` take any.
_SUMMABLE = frozenset({"integer", "float", "decimal"})


class MatViewError(ReproError):
    """Invalid materialized-view definition or operation."""


@dataclass(frozen=True)
class TrackedColumn:
    """Partial aggregates the backing table carries for one base column."""

    column: str
    needs_sum: bool   # sum_<c>: query used sum/avg
    needs_cnt: bool   # cnt_<c>: query used sum/avg/count
    needs_min: bool
    needs_max: bool

    @property
    def backing_columns(self) -> list[str]:
        names = []
        if self.needs_sum:
            names.append(f"sum_{self.column}")
        if self.needs_cnt:
            names.append(f"cnt_{self.column}")
        if self.needs_min:
            names.append(f"min_{self.column}")
        if self.needs_max:
            names.append(f"max_{self.column}")
        return names


@dataclass(frozen=True)
class MatViewDef:
    """A registered materialized view.

    ``conjuncts`` are canonical parameter-free predicate ASTs evaluated
    both by SQL re-emission (build/refresh) and directly over inserted
    rows (incremental maintenance) — one definition, two evaluators,
    checked equivalent by the differential tests.
    """

    name: str                        # lowered view name
    sql: str                         # defining SELECT text (verbatim)
    table: str                       # base table, lowered
    group_cols: tuple[str, ...]
    conjuncts: tuple[ast.Expr, ...]
    tracked: tuple[TrackedColumn, ...]

    @classmethod
    def from_sql(cls, name: str, sql: str,
                 base_lookup=None) -> "MatViewDef":
        """Validate and canonicalize a defining query.

        ``base_lookup`` maps a lowered table name to its
        :class:`TableDef` (or ``None`` when unknown) so column
        references can be checked eagerly.
        """
        try:
            parsed = parse(sql)
        except SqlSyntaxError as exc:
            raise MatViewError(
                f"materialized view {name!r}: {exc}") from exc
        fingerprint = canonicalize(parsed)
        if fingerprint is None:
            raise MatViewError(
                f"materialized view {name!r}: defining query must be a "
                "single-table GROUP BY over plain columns with "
                "count/sum/avg/min/max aggregates (no joins, DISTINCT, "
                "HAVING, or expression grouping)")
        if not fingerprint.group_cols:
            raise MatViewError(
                f"materialized view {name!r}: defining query needs a "
                "GROUP BY clause")
        if not fingerprint.aggregates:
            raise MatViewError(
                f"materialized view {name!r}: defining query needs at "
                "least one aggregate output")
        if fingerprint.order_by or fingerprint.limit is not None:
            raise MatViewError(
                f"materialized view {name!r}: ORDER BY / LIMIT have no "
                "meaning in a stored view definition")
        if fingerprint.has_parameters():
            raise MatViewError(
                f"materialized view {name!r}: defining query cannot "
                "take parameters")
        viewdef = cls(
            name=name.lower(),
            sql=sql.strip(),
            table=fingerprint.table,
            group_cols=fingerprint.group_cols,
            conjuncts=fingerprint.conjuncts,
            tracked=_tracked_columns(fingerprint))
        if base_lookup is not None:
            base = base_lookup(viewdef.table)
            if base is not None:
                viewdef.validate_against(base)
        return viewdef

    def validate_against(self, base: TableDef) -> None:
        """Check column references and dtypes against the base schema."""
        referenced = set(self.group_cols)
        for conjunct in self.conjuncts:
            referenced |= expr_columns(conjunct)
        for spec in self.tracked:
            referenced.add(spec.column)
        for column in sorted(referenced):
            if not base.has_column(column):
                raise MatViewError(
                    f"materialized view {self.name!r}: no column "
                    f"{column!r} in table {self.table!r}")
        for spec in self.tracked:
            dtype = base.column(spec.column).dtype
            if spec.needs_sum and dtype.value not in _SUMMABLE:
                raise MatViewError(
                    f"materialized view {self.name!r}: cannot sum "
                    f"{dtype.value} column {spec.column!r}")

    def backing_def(self, base: TableDef) -> TableDef:
        """The backing table schema: group columns + partial aggregates."""
        self.validate_against(base)
        columns = [ColumnDef(col, base.column(col).dtype,
                             base.column(col).nullable)
                   for col in self.group_cols]
        columns.append(ColumnDef("cnt_star", DataType.INTEGER,
                                 nullable=False))
        for spec in self.tracked:
            dtype = base.column(spec.column).dtype
            if spec.needs_sum:
                columns.append(ColumnDef(f"sum_{spec.column}", dtype))
            if spec.needs_cnt:
                columns.append(ColumnDef(f"cnt_{spec.column}",
                                         DataType.INTEGER, nullable=False))
            if spec.needs_min:
                columns.append(ColumnDef(f"min_{spec.column}", dtype))
            if spec.needs_max:
                columns.append(ColumnDef(f"max_{spec.column}", dtype))
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise MatViewError(
                f"materialized view {self.name!r}: generated backing "
                f"columns collide: {sorted(names)}")
        try:
            return TableDef(self.name, columns,
                            primary_key=self.group_cols)
        except ReproError as exc:
            raise MatViewError(
                f"materialized view {self.name!r}: {exc}") from exc

    def storage_sql(self) -> str:
        """SQL computing the full backing contents from the base table.

        Executed with view rewriting disabled (a view must never be
        built from itself) for the initial build, REFRESH, and the
        recovery rebuild.
        """
        items = [f"{quote(col)} AS {quote(col)}" for col in self.group_cols]
        items.append(f'count(*) AS {quote("cnt_star")}')
        for spec in self.tracked:
            col = quote(spec.column)
            if spec.needs_sum:
                items.append(f'sum({col}) AS {quote(f"sum_{spec.column}")}')
            if spec.needs_cnt:
                items.append(
                    f'count({col}) AS {quote(f"cnt_{spec.column}")}')
            if spec.needs_min:
                items.append(f'min({col}) AS {quote(f"min_{spec.column}")}')
            if spec.needs_max:
                items.append(f'max({col}) AS {quote(f"max_{spec.column}")}')
        sql = f'SELECT {", ".join(items)} FROM {quote(self.table)}'
        if self.conjuncts:
            sql += " WHERE " + " AND ".join(
                emit_expr(c) for c in self.conjuncts)
        sql += " GROUP BY " + ", ".join(quote(c) for c in self.group_cols)
        return sql

    def supports(self, func: str, column: str | None) -> bool:
        """Can the backing table answer aggregate ``func(column)``?"""
        if func == "count_star":
            return True
        spec = next((t for t in self.tracked if t.column == column), None)
        if spec is None:
            return False
        if func in ("sum", "avg"):
            return spec.needs_sum and spec.needs_cnt
        if func == "count":
            return spec.needs_cnt
        if func == "min":
            return spec.needs_min
        if func == "max":
            return spec.needs_max
        return False


def _tracked_columns(
        fingerprint: CanonicalAggregate) -> tuple[TrackedColumn, ...]:
    funcs: dict[str, set[str]] = {}
    for spec in fingerprint.aggregates:
        if spec.column is not None:
            funcs.setdefault(spec.column, set()).add(spec.func)
    tracked = []
    for column in sorted(funcs):
        used = funcs[column]
        needs_sum = bool(used & {"sum", "avg"})
        tracked.append(TrackedColumn(
            column=column,
            needs_sum=needs_sum,
            needs_cnt=needs_sum or "count" in used,
            needs_min="min" in used,
            needs_max="max" in used))
    return tuple(tracked)
