"""Workload-driven view selection: mine the plan cache for hot aggregates.

The plan cache already fingerprints every canonical aggregate query it
compiles (:attr:`~repro.plancache.CachedPlan.fingerprint`) and counts
hits per entry, so the advisor needs no separate workload log: it walks
the cached entries, keeps the hot aggregate ones that no existing view
answers, and generalizes each fingerprint into a view definition:

* parameter-free conjuncts become the view's WHERE (rows the view can
  pre-filter for good);
* parameterized conjuncts cannot be baked in — their columns join the
  view's GROUP BY instead, so the rewrite re-applies them as residual
  filters over backing rows;
* the aggregate set is carried as-is (counts ride along automatically,
  see :mod:`repro.matview.definition`).

``recommend`` returns suggestions; ``auto_materialize`` creates them
through the normal CREATE path (WAL-logged, checkpointed, maintained).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .canonical import (CanonicalAggregate, emit_expr, expr_columns,
                        expr_has_parameter, quote)
from .definition import MatViewDef, MatViewError
from .manager import Recommendation
from .matcher import match_rewrite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database

#: An entry must have served at least this many cache hits before the
#: advisor considers its shape worth materializing.
DEFAULT_MIN_HITS = 3


def recommend(database: "Database",
              min_hits: int = DEFAULT_MIN_HITS) -> list[Recommendation]:
    """Hot aggregate shapes from the plan cache, most-hit first."""
    views = [v for v in database.catalog.matviews()
             if isinstance(v, MatViewDef)]
    best: dict[tuple, Recommendation] = {}
    for entry in database.plan_cache.entries():
        fingerprint = entry.fingerprint
        if not isinstance(fingerprint, CanonicalAggregate):
            continue
        if entry.matview_name is not None or entry.hits < min_hits:
            continue
        if not fingerprint.aggregates:
            continue
        if any(match_rewrite(fingerprint, view) is not None
               for view in views):
            continue  # an existing view already answers it
        sql = _view_sql(fingerprint)
        if sql is None:
            continue
        key = (fingerprint.table, sql)
        seen = best.get(key)
        if seen is None:
            best[key] = Recommendation(name="", table=fingerprint.table,
                                       sql=sql, hits=entry.hits)
        else:
            seen.hits = max(seen.hits, entry.hits)
    ranked = sorted(best.values(), key=lambda r: -r.hits)
    taken: set[str] = set()
    for suggestion in ranked:
        suggestion.name = _unique_name(database, taken)
        taken.add(suggestion.name)
    return ranked


def auto_materialize(database: "Database",
                     min_hits: int = DEFAULT_MIN_HITS
                     ) -> list[Recommendation]:
    """Create every current recommendation; returns what was created."""
    created = []
    for suggestion in recommend(database, min_hits=min_hits):
        try:
            database.matviews.create(suggestion.name, suggestion.sql)
        except MatViewError:
            continue  # e.g. an unsummable dtype the fingerprint allowed
        database.matviews.note_auto_created()
        created.append(suggestion)
    return created


def _view_sql(fingerprint: CanonicalAggregate) -> str | None:
    """Generalize a query fingerprint into a defining SELECT."""
    group_cols = list(fingerprint.group_cols)
    stored_conjuncts = []
    for conjunct in fingerprint.conjuncts:
        if expr_has_parameter(conjunct):
            # Cannot bake a parameter into stored contents: group by the
            # predicate's columns so the rewrite can re-filter.
            for column in sorted(expr_columns(conjunct)):
                if column not in group_cols:
                    group_cols.append(column)
        else:
            stored_conjuncts.append(conjunct)
    if not group_cols:
        return None  # a global aggregate has no grouping to store
    items = [quote(col) for col in group_cols]
    seen = set()
    for spec in fingerprint.aggregates:
        if spec in seen:
            continue
        seen.add(spec)
        if spec.func == "count_star":
            items.append("count(*)")
        else:
            assert spec.column is not None
            items.append(f"{spec.func}({quote(spec.column)}) AS "
                         + quote(f"{spec.func}_{spec.column}"))
    sql = f'SELECT {", ".join(items)} FROM {quote(fingerprint.table)}'
    if stored_conjuncts:
        sql += " WHERE " + " AND ".join(
            emit_expr(c) for c in stored_conjuncts)
    sql += " GROUP BY " + ", ".join(quote(c) for c in group_cols)
    return sql


def _unique_name(database: "Database", taken: set[str]) -> str:
    catalog = database.catalog
    index = 1
    while True:
        name = f"mv_auto_{index}"
        if (name not in taken and not catalog.has_table(name)
                and not catalog.has_view(name)
                and not catalog.has_matview(name)):
            return name
        index += 1
