"""Table and column statistics for cardinality estimation.

The cost-based optimizer (paper Section 4: "the plan with cheapest estimated
cost is selected") needs row counts, distinct-value counts and value ranges.
Statistics are computed from stored data on demand and cached by the
database facade.

:class:`CorrectionStore` holds *runtime cardinality corrections*: actual
row counts observed by the feedback loop (:mod:`repro.feedback`) for
(table, predicate) pairs the static model mis-estimated.  The estimator
consults them before falling back to the selectivity math, closing the
optimize → execute → observe loop.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..concurrency import TrackedLock
from ..stats_version import (DEFAULT_DRIFT_THRESHOLD, StatsSnapshot,
                             drifted)


@dataclass(frozen=True)
class Histogram:
    """Equi-depth histogram over a column's non-NULL values.

    ``boundaries`` holds ``bucket_count + 1`` sorted values; bucket *i*
    covers ``[boundaries[i], boundaries[i+1])`` (the last bucket is
    closed).  Buckets hold (approximately) equal row counts, so the
    fraction of rows below a probe value can be read off directly —
    robust to skew where the uniform min/max interpolation is not.
    """

    boundaries: tuple
    rows_per_bucket: float

    @property
    def bucket_count(self) -> int:
        return len(self.boundaries) - 1

    @property
    def total_rows(self) -> float:
        return self.rows_per_bucket * self.bucket_count

    def fraction_below(self, value: Any, inclusive: bool = False) -> float:
        """Estimated fraction of (non-NULL) rows ``< value`` (or ``<=``)."""
        if self.bucket_count <= 0:
            return 0.5
        if inclusive:
            position = bisect.bisect_right(self.boundaries, value)
        else:
            position = bisect.bisect_left(self.boundaries, value)
        if position <= 0:
            return 0.0
        if position >= len(self.boundaries):
            return 1.0
        # Interpolate inside the bucket the value falls in.
        low = self.boundaries[position - 1]
        high = self.boundaries[position]
        complete = (position - 1) / self.bucket_count
        try:
            if high == low:
                within = 0.5
            else:
                within = (_numeric(value) - _numeric(low)) / \
                    (_numeric(high) - _numeric(low))
        except TypeError:
            within = 0.5
        within = min(max(within, 0.0), 1.0)
        return complete + within / self.bucket_count


def build_histogram(values: Sequence[Any],
                    bucket_count: int = 16) -> Optional[Histogram]:
    """An equi-depth histogram, or None for empty/incomparable input."""
    comparable = []
    for value in values:
        if value is None:
            continue
        try:
            _numeric(value)
        except TypeError:
            return None
        comparable.append(value)
    if not comparable:
        return None
    ordered = sorted(comparable)
    buckets = min(bucket_count, len(ordered))
    boundaries = [ordered[0]]
    for i in range(1, buckets):
        boundaries.append(ordered[(i * len(ordered)) // buckets])
    boundaries.append(ordered[-1])
    return Histogram(tuple(boundaries), len(ordered) / buckets)


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one stored column."""

    distinct_count: int
    null_count: int
    min_value: Any = None
    max_value: Any = None
    histogram: Optional[Histogram] = None

    def selectivity_equals(self, row_count: int) -> float:
        """Estimated fraction of rows matching ``col = constant``."""
        if self.distinct_count <= 0:
            return 0.0
        non_null = max(row_count - self.null_count, 0)
        if row_count == 0:
            return 0.0
        return (non_null / row_count) / self.distinct_count

    def selectivity_range(self, op: str, value: Any, row_count: int) -> float:
        """Estimated fraction of rows matching ``col <op> value``.

        Uses the equi-depth histogram when present (skew-robust) and
        falls back to uniform interpolation between min and max.
        """
        if row_count == 0 or self.min_value is None or self.max_value is None:
            return _DEFAULT_RANGE_SELECTIVITY
        non_null_fraction = max(row_count - self.null_count, 0) / row_count

        if self.histogram is not None:
            if op == "<":
                below = self.histogram.fraction_below(value)
            elif op == "<=":
                below = self.histogram.fraction_below(value, inclusive=True)
            elif op == ">":
                below = 1.0 - self.histogram.fraction_below(
                    value, inclusive=True)
            elif op == ">=":
                below = 1.0 - self.histogram.fraction_below(value)
            else:
                return _DEFAULT_RANGE_SELECTIVITY
            return below * non_null_fraction

        try:
            span = _numeric(self.max_value) - _numeric(self.min_value)
        except TypeError:
            return _DEFAULT_RANGE_SELECTIVITY
        if span <= 0:
            return _DEFAULT_RANGE_SELECTIVITY
        try:
            position = (_numeric(value) - _numeric(self.min_value)) / span
        except TypeError:
            return _DEFAULT_RANGE_SELECTIVITY
        position = min(max(position, 0.0), 1.0)
        if op in ("<", "<="):
            return position * non_null_fraction
        if op in (">", ">="):
            return (1.0 - position) * non_null_fraction
        return _DEFAULT_RANGE_SELECTIVITY


_DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


def _numeric(value: Any) -> float:
    """Map a value to a number for range interpolation."""
    import datetime

    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    raise TypeError(f"not numeric: {value!r}")


class TableStats:
    """Row count plus per-column statistics for one table."""

    def __init__(self, row_count: int,
                 columns: dict[str, ColumnStats] | None = None) -> None:
        self.row_count = row_count
        self.columns = columns or {}

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def __repr__(self) -> str:
        return f"TableStats(rows={self.row_count}, {len(self.columns)} columns)"


@dataclass(frozen=True)
class CardinalityCorrection:
    """One observed (table, predicate) cardinality, with provenance.

    ``estimated_rows`` is what the cost model predicted when the
    observation was made, ``actual_rows`` what execution produced, and
    ``q_error`` their max ratio.  ``snapshot`` pins the table sizes at
    observation time (:mod:`repro.stats_version`): a correction is only
    trusted while those sizes have not drifted — stale observations are
    no better than stale statistics.
    """

    table: str
    predicate_key: str
    estimated_rows: float
    actual_rows: int
    q_error: float
    snapshot: StatsSnapshot

    def as_dict(self) -> dict:
        return {"table": self.table, "predicate": self.predicate_key,
                "estimated_rows": self.estimated_rows,
                "actual_rows": self.actual_rows, "q_error": self.q_error}


class CorrectionStore:
    """Thread-safe map of ``(table, predicate_key)`` → latest correction.

    ``row_count_of`` supplies current table sizes; a lookup whose stored
    snapshot drifted beyond ``drift_threshold`` evicts the entry and
    reports a miss (versioned invalidation via
    :mod:`repro.stats_version`, same policy as the plan cache).
    ``version`` increments on every accepted record, so observers can
    cheaply detect that corrections changed.
    """

    def __init__(self,
                 row_count_of: Callable[[str], int] | None = None,
                 drift_threshold: float = DEFAULT_DRIFT_THRESHOLD) -> None:
        self._entries: dict[tuple[str, str], CardinalityCorrection] = {}
        self._lock = TrackedLock("stats.corrections")
        self._row_count_of = row_count_of
        self.drift_threshold = drift_threshold
        self.version = 0

    def record(self, correction: CardinalityCorrection) -> None:
        key = (correction.table.lower(), correction.predicate_key)
        with self._lock:
            self._entries[key] = correction
            self.version += 1

    def lookup(self, table: str,
               predicate_key: str) -> CardinalityCorrection | None:
        key = (table.lower(), predicate_key)
        with self._lock:
            found = self._entries.get(key)
        if found is None:
            return None
        if self._row_count_of is not None and drifted(
                found.snapshot, self._row_count_of, self.drift_threshold):
            with self._lock:
                # Only evict the exact observation we judged stale; a
                # concurrent recorder may have installed a fresher one.
                if self._entries.get(key) is found:
                    del self._entries[key]
            return None
        return found

    def invalidate(self, table: str | None = None) -> int:
        """Drop corrections — all, or those for one table (DDL hook)."""
        with self._lock:
            if table is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                wanted = table.lower()
                doomed = [k for k in self._entries if k[0] == wanted]
                for k in doomed:
                    del self._entries[k]
                removed = len(doomed)
            if removed:
                self.version += 1
        return removed

    def entries(self) -> list[CardinalityCorrection]:
        with self._lock:
            return list(self._entries.values())

    def dump_state(self) -> list[dict]:
        """JSON-safe form of every correction, for checkpoints.

        Unlike :meth:`CardinalityCorrection.as_dict` (a display shape)
        this keeps the staleness snapshot, so a correction restored
        after recovery still evicts itself once the table drifts.
        """
        with self._lock:
            return [{"table": c.table, "predicate_key": c.predicate_key,
                     "estimated_rows": c.estimated_rows,
                     "actual_rows": c.actual_rows, "q_error": c.q_error,
                     "row_counts": dict(c.snapshot.row_counts)}
                    for c in self._entries.values()]

    def load_state(self, state: Sequence[dict]) -> None:
        """Restore corrections dumped by :meth:`dump_state`."""
        for entry in state:
            self.record(CardinalityCorrection(
                table=entry["table"],
                predicate_key=entry["predicate_key"],
                estimated_rows=entry["estimated_rows"],
                actual_rows=entry["actual_rows"],
                q_error=entry["q_error"],
                snapshot=StatsSnapshot(dict(entry["row_counts"]))))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def compute_table_stats(column_names: Sequence[str],
                        rows: Sequence[tuple],
                        histogram_buckets: int = 16) -> TableStats:
    """Compute full statistics by scanning all rows."""
    row_count = len(rows)
    columns: dict[str, ColumnStats] = {}
    for position, name in enumerate(column_names):
        values = [row[position] for row in rows]
        non_null = [v for v in values if v is not None]
        distinct = len(set(non_null))
        min_value = min(non_null) if non_null else None
        max_value = max(non_null) if non_null else None
        columns[name] = ColumnStats(
            distinct_count=distinct,
            null_count=row_count - len(non_null),
            min_value=min_value,
            max_value=max_value,
            histogram=build_histogram(non_null, histogram_buckets))
    return TableStats(row_count, columns)
