"""Catalog substrate: table definitions, indexes and statistics."""

from .catalog import Catalog, ColumnDef, IndexDef, TableDef
from .statistics import (ColumnStats, Histogram, TableStats,
                         build_histogram, compute_table_stats)

__all__ = ["Catalog", "ColumnDef", "ColumnStats", "Histogram", "IndexDef",
           "TableDef", "TableStats", "build_histogram",
           "compute_table_stats"]
