"""Catalog: table, column, key and index definitions.

The catalog is the optimizer's source of schema facts: declared keys feed
the key-derivation used by identities (7)–(9) and Max1row elision, and the
statistics (see :mod:`repro.catalog.statistics`) feed cardinality estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..algebra.datatypes import DataType
from ..concurrency import TrackedRLock
from ..errors import CatalogError


@dataclass(frozen=True)
class ColumnDef:
    """A stored column: name, type, nullability."""

    name: str
    dtype: DataType
    nullable: bool = True


@dataclass(frozen=True)
class IndexDef:
    """A secondary index over one or more columns of a table.

    ``kind`` is ``"hash"`` (equality lookups) or ``"ordered"`` (equality and
    range scans).
    """

    name: str
    table_name: str
    column_names: tuple[str, ...]
    kind: str = "hash"
    unique: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("hash", "ordered"):
            raise CatalogError(f"unknown index kind {self.kind!r}")
        if not self.column_names:
            raise CatalogError("index requires at least one column")


class TableDef:
    """Schema of one stored table."""

    def __init__(self, name: str, columns: Iterable[ColumnDef],
                 primary_key: Iterable[str] = (),
                 unique_keys: Iterable[Iterable[str]] = ()) -> None:
        self.name = name
        self.columns = list(columns)
        if not self.columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {name!r}")
        self._by_name = {c.name: i for i, c in enumerate(self.columns)}
        self.primary_key = tuple(primary_key)
        self.unique_keys = [tuple(k) for k in unique_keys]
        for key in self.all_keys():
            for col in key:
                if col not in self._by_name:
                    raise CatalogError(
                        f"key column {col!r} not in table {name!r}")

    def all_keys(self) -> list[tuple[str, ...]]:
        keys = []
        if self.primary_key:
            keys.append(self.primary_key)
        keys.extend(self.unique_keys)
        return keys

    def column_index(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}") from None

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def to_dict(self) -> dict:
        """A JSON-safe description, round-tripped by
        :func:`table_def_from_dict` (WAL DDL records, checkpoints)."""
        return {
            "name": self.name,
            "columns": [[c.name, c.dtype.value, c.nullable]
                        for c in self.columns],
            "primary_key": list(self.primary_key),
            "unique_keys": [list(k) for k in self.unique_keys],
        }

    def __repr__(self) -> str:
        return f"TableDef({self.name}, {len(self.columns)} columns)"


def table_def_from_dict(payload: dict) -> TableDef:
    """Rebuild a :class:`TableDef` from :meth:`TableDef.to_dict` output."""
    return TableDef(
        payload["name"],
        [ColumnDef(name, DataType(dtype), nullable)
         for name, dtype, nullable in payload["columns"]],
        primary_key=payload.get("primary_key", ()),
        unique_keys=payload.get("unique_keys", ()))


def index_def_from_dict(payload: dict) -> IndexDef:
    """Rebuild an :class:`IndexDef` from :func:`index_def_to_dict` output."""
    return IndexDef(payload["name"], payload["table"],
                    tuple(payload["columns"]),
                    kind=payload.get("kind", "hash"),
                    unique=payload.get("unique", False))


def index_def_to_dict(index: IndexDef) -> dict:
    """A JSON-safe description of an index definition."""
    return {"name": index.name, "table": index.table_name,
            "columns": list(index.column_names), "kind": index.kind,
            "unique": index.unique}


class Catalog:
    """The collection of table, view and index definitions."""

    def __init__(self) -> None:
        self._tables: dict[str, TableDef] = {}
        self._indexes: dict[str, IndexDef] = {}
        self._views: dict[str, str] = {}  # name -> defining SQL text
        # Materialized views: name -> definition object (duck-typed —
        # the catalog stays independent of repro.matview; it only relies
        # on ``.name``, ``.table`` and ``.sql`` attributes).  The view's
        # *backing table* is a real TableDef registered in ``_tables``
        # under the same name, so binding and storage treat it as any
        # other table.
        self._matviews: dict[str, object] = {}
        #: Monotonic schema version, bumped by every DDL change.  Cached
        #: plans embed the version they were built against; a mismatch
        #: means the plan may reference stale schema and must be rebuilt.
        self.version = 0
        #: Serializes DDL: concurrent sessions may create/drop objects,
        #: and the existence check plus insert plus version bump must be
        #: one atomic step.  Point reads stay lock-free (dict reads are
        #: atomic and definitions are immutable once registered), but
        #: *enumerations* copy under the lock — handing out a live dict
        #: iterator would raise "dictionary changed size" under
        #: concurrent DDL.
        self._lock = TrackedRLock("catalog.schema")

    # -- tables ---------------------------------------------------------------

    def create_table(self, table: TableDef) -> TableDef:
        key = table.name.lower()
        with self._lock:
            if key in self._tables:
                raise CatalogError(f"table {table.name!r} already exists")
            if key in self._views:
                raise CatalogError(f"{table.name!r} already names a view")
            if key in self._matviews:
                raise CatalogError(
                    f"{table.name!r} already names a materialized view")
            self._tables[key] = table
            self.version += 1
            return table

    def get_table(self, name: str) -> TableDef:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def drop_table(self, name: str) -> None:
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                raise CatalogError(f"unknown table {name!r}")
            del self._tables[key]
            for index_name in [n for n, ix in self._indexes.items()
                               if ix.table_name.lower() == key]:
                del self._indexes[index_name]
            self.version += 1

    def tables(self) -> Iterator[TableDef]:
        with self._lock:
            return iter(list(self._tables.values()))

    # -- views ------------------------------------------------------------------

    def create_view(self, name: str, sql: str) -> None:
        """Register a view: a named query expanded at bind time."""
        key = name.lower()
        with self._lock:
            if key in self._views:
                raise CatalogError(f"view {name!r} already exists")
            if key in self._tables:
                raise CatalogError(f"{name!r} already names a table")
            if key in self._matviews:
                raise CatalogError(
                    f"{name!r} already names a materialized view")
            self._views[key] = sql
            self.version += 1

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def view_definition(self, name: str) -> str:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown view {name!r}") from None

    def drop_view(self, name: str) -> None:
        with self._lock:
            if name.lower() not in self._views:
                raise CatalogError(f"unknown view {name!r}")
            del self._views[name.lower()]
            self.version += 1

    # -- materialized views -----------------------------------------------------

    def create_matview(self, viewdef: object,
                       backing: TableDef | None = None) -> None:
        """Register a materialized view definition.

        ``backing`` is the view's backing table schema; when given it is
        registered into the table namespace under the view's name so the
        binder and storage treat the view as an ordinary table.  Recovery
        passes ``backing=None`` when the backing table already arrived via
        the checkpoint table image.
        """
        name = getattr(viewdef, "name")
        key = name.lower()
        with self._lock:
            if key in self._matviews:
                raise CatalogError(
                    f"materialized view {name!r} already exists")
            if key in self._views:
                raise CatalogError(f"{name!r} already names a view")
            if backing is not None:
                if key in self._tables:
                    raise CatalogError(f"{name!r} already names a table")
                self._tables[key] = backing
            elif key not in self._tables:
                raise CatalogError(
                    f"materialized view {name!r} has no backing table")
            self._matviews[key] = viewdef
            self.version += 1

    def drop_matview(self, name: str) -> None:
        """Remove a materialized view and its backing table."""
        key = name.lower()
        with self._lock:
            if key not in self._matviews:
                raise CatalogError(f"unknown materialized view {name!r}")
            del self._matviews[key]
            self._tables.pop(key, None)
            for index_name in [n for n, ix in self._indexes.items()
                               if ix.table_name.lower() == key]:
                del self._indexes[index_name]
            self.version += 1

    def has_matview(self, name: str) -> bool:
        return name.lower() in self._matviews

    def has_matviews(self) -> bool:
        """Cheap hot-path probe: any materialized view registered at all?"""
        return bool(self._matviews)

    def get_matview(self, name: str) -> object:
        try:
            return self._matviews[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown materialized view {name!r}") from None

    def matviews(self) -> list[object]:
        """All materialized-view definitions, in creation order."""
        with self._lock:
            return list(self._matviews.values())

    def matviews_on(self, table_name: str) -> list[object]:
        """Materialized views whose base table is ``table_name``."""
        key = table_name.lower()
        with self._lock:
            return [v for v in self._matviews.values()
                    if getattr(v, "table") == key]

    # -- indexes ---------------------------------------------------------------

    def create_index(self, index: IndexDef) -> IndexDef:
        key = index.name.lower()
        with self._lock:
            if key in self._indexes:
                raise CatalogError(f"index {index.name!r} already exists")
            table = self.get_table(index.table_name)
            for col in index.column_names:
                if not table.has_column(col):
                    raise CatalogError(
                        f"index column {col!r} not in table {table.name!r}")
            self._indexes[key] = index
            self.version += 1
            return index

    def has_index(self, name: str) -> bool:
        return name.lower() in self._indexes

    def indexes(self) -> list[IndexDef]:
        """All index definitions, in creation order."""
        with self._lock:
            return list(self._indexes.values())

    def views(self) -> list[tuple[str, str]]:
        """All ``(name, defining SQL)`` view pairs, in creation order.

        Creation order matters to consumers that re-register views (the
        checkpointer): a view may reference earlier views.
        """
        with self._lock:
            return list(self._views.items())

    def indexes_on(self, table_name: str) -> list[IndexDef]:
        with self._lock:
            return [ix for ix in self._indexes.values()
                    if ix.table_name.lower() == table_name.lower()]

    def get_index(self, name: str) -> IndexDef:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None
