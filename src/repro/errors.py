"""Exception hierarchy for the query processor.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The split mirrors the stages of
the pipeline: parsing, binding (name resolution), planning and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlSyntaxError(ReproError):
    """Raised by the lexer/parser for malformed SQL text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """Raised by the binder for name-resolution and typing problems."""


class CatalogError(ReproError):
    """Raised for unknown/duplicate tables, columns or indexes."""


class PlanError(ReproError):
    """Raised when the optimizer cannot produce a plan (internal invariant)."""


class ExecutionError(ReproError):
    """Raised for run-time execution failures."""


class ParameterError(ReproError):
    """Raised when query-parameter bindings do not match the statement.

    Covers arity mismatches, missing or unknown named parameters, and
    supplying a mapping to a positionally-parameterized statement (or
    vice versa).
    """


class SubqueryReturnedMultipleRows(ExecutionError):
    """SQL run-time error: a scalar subquery returned more than one row.

    This is the error the paper's ``Max1row`` operator exists to raise
    (Section 2.4, "exception subqueries").
    """

    def __init__(self) -> None:
        super().__init__("scalar subquery returned more than one row")
