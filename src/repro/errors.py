"""Exception hierarchy for the query processor.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The split mirrors the stages of
the pipeline: parsing, binding (name resolution), planning and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlSyntaxError(ReproError):
    """Raised by the lexer/parser for malformed SQL text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """Raised by the binder for name-resolution and typing problems."""


class CatalogError(ReproError):
    """Raised for unknown/duplicate tables, columns or indexes."""


class PlanError(ReproError):
    """Raised when the optimizer cannot produce a plan (internal invariant)."""


class PlanInvariantError(PlanError):
    """A static plan-analysis check failed (:mod:`repro.analysis`).

    Carries the individual :class:`~repro.analysis.AnalysisIssue` records
    and, for per-rule checks, a blame report naming the rewrite that
    turned a valid tree into an invalid one.  Subclassing
    :class:`PlanError` means ``Database.execute`` treats a strict-mode
    analyzer failure like any other optimizer failure: the query degrades
    to a fallback plan instead of failing.
    """

    def __init__(self, message: str, issues=(), blame: str | None = None
                 ) -> None:
        super().__init__(message)
        self.issues = list(issues)
        self.blame = blame


class ExecutionError(ReproError):
    """Raised for run-time execution failures."""


class ResourceError(ReproError):
    """Base class for resource-governor limit violations.

    Raised when a query exceeds a limit the caller set on purpose
    (wall-clock timeout, row budget, memory budget); these are *user*
    errors, never degraded away by the fallback machinery.
    """


class QueryTimeout(ResourceError):
    """The query exceeded its wall-clock timeout."""

    def __init__(self, timeout: float, elapsed: float) -> None:
        super().__init__(
            f"query exceeded its timeout of {timeout:.3f}s "
            f"(elapsed {elapsed:.3f}s)")
        self.timeout = timeout
        self.elapsed = elapsed


class ResourceExhausted(ResourceError):
    """The query exceeded its row budget or in-flight memory budget."""

    def __init__(self, resource: str, limit: int, used: int) -> None:
        super().__init__(
            f"query exceeded its {resource} budget of {limit} "
            f"(used {used})")
        self.resource = resource
        self.limit = limit
        self.used = used


class OptimizerBudgetExceeded(ResourceError):
    """Cost-based optimization exceeded its task budget.

    ``Database.execute`` treats this as a signal to fall back to a
    heuristic plan rather than fail the query; it only reaches callers
    that drive the :class:`~repro.core.optimizer.Optimizer` directly.
    """

    def __init__(self, budget: str, limit: int) -> None:
        super().__init__(
            f"optimizer exceeded its {budget} budget of {limit}")
        self.budget = budget
        self.limit = limit


class InjectedFault(ReproError):
    """A deterministic fault raised by :mod:`repro.faultinject`.

    Only ever raised while a test has explicitly armed an injection
    point; production code paths treat it like the infrastructure
    failure it simulates.  ``torn`` marks a torn-write fault: the
    instrumented writer (the WAL) persists a deliberately truncated
    prefix of the record before raising, simulating a crash mid-write.
    """

    def __init__(self, site: str, torn: bool = False) -> None:
        super().__init__(f"injected fault at {site!r}"
                         + (" (torn write)" if torn else ""))
        self.site = site
        self.torn = torn


class DurabilityError(ReproError):
    """Base class for write-ahead-log and checkpoint failures
    (:mod:`repro.durability`)."""


class RecoveryError(DurabilityError):
    """Crash recovery could not restore a consistent database.

    Raised for a corrupt checkpoint (the WAL's torn *tail* is expected
    and silently truncated — corruption in the checkpoint or in the
    middle of the log is not) and for replay of a record that no longer
    applies.  Opening the database fails loudly rather than serving a
    state that is not the committed prefix.
    """


class ServerError(ReproError):
    """Base class for errors raised by the concurrent query service
    (:mod:`repro.server`): admission control, sessions and the wire
    protocol."""


class ServerOverloaded(ServerError):
    """The service shed a request instead of queueing it.

    Raised by admission control when the pending-request queue is at its
    bound or the global resource pool cannot grant a lease in time.
    Shedding is deliberate back-pressure: the caller should retry later,
    and the error is never converted into a degraded result.
    """

    def __init__(self, reason: str, limit: int | float,
                 pending: int | float) -> None:
        super().__init__(
            f"server overloaded: {reason} (limit {limit}, pending "
            f"{pending})")
        self.reason = reason
        self.limit = limit
        self.pending = pending


class ProtocolError(ServerError):
    """A malformed wire-protocol request (bad JSON, unknown op, missing
    fields).  Fails the one request, never the connection or server."""


class TransactionError(ReproError):
    """Base class for session-transaction misuse and failures."""


class TransactionConflict(TransactionError):
    """Snapshot-isolation write conflict.

    Raised when a transaction tries to write a table whose installed
    version changed after the transaction's snapshot was pinned
    (first-committer-wins), or when the per-table writer lock cannot be
    acquired before the deadline (a conservative deadlock verdict).
    """


class SessionClosed(TransactionError):
    """An operation was attempted on a closed session."""


class ParameterError(ReproError):
    """Raised when query-parameter bindings do not match the statement.

    Covers arity mismatches, missing or unknown named parameters, and
    supplying a mapping to a positionally-parameterized statement (or
    vice versa).
    """


class SubqueryReturnedMultipleRows(ExecutionError):
    """SQL run-time error: a scalar subquery returned more than one row.

    This is the error the paper's ``Max1row`` operator exists to raise
    (Section 2.4, "exception subqueries").
    """

    def __init__(self) -> None:
        super().__init__("scalar subquery returned more than one row")
