"""Physical plan operators produced by the cost-based optimizer."""

from .plan import (PConstantScan, PDifference, PFilter, PHashAggregate,
                   PHashJoin, PIndexSeek, PMax1row, PNestedLoopsJoin,
                   PNLApply, PProject, PScalarAggregate, PSegmentApply,
                   PSegmentRef, PSort, PStreamAggregate, PTableScan, PTop,
                   PTopN, PUnionAll, PhysicalOp, explain_physical)

__all__ = ["PConstantScan", "PDifference", "PFilter", "PHashAggregate",
           "PHashJoin", "PIndexSeek", "PMax1row", "PNLApply",
           "PNestedLoopsJoin", "PProject", "PScalarAggregate",
           "PSegmentApply", "PSegmentRef", "PSort", "PStreamAggregate",
           "PTableScan", "PTop", "PTopN", "PUnionAll", "PhysicalOp",
           "explain_physical"]
